// Coalition resupply with the full AGENP loop (Sections III + IV.B): an
// AMS bootstraps a convoy-planning GPM from early mission experience,
// serves decisions, receives operator feedback, adapts when it is wrong,
// and shares its learned model with a coalition partner (CASWiki-style).
//
// Build & run:  ./build/examples/coalition_resupply

#include <cstdio>

#include "agenp/coalition.hpp"
#include "scenarios/resupply/resupply.hpp"

using namespace agenp;
namespace rs = scenarios::resupply;

int main() {
    util::Rng rng(303);

    // The mission context both members operate in.
    rs::MissionContext ctx{.threat = 2, .risk_appetite = 2, .weather = 2 /*storm*/,
                           .phase = rs::Phase::Execution};
    auto context_source = [ctx] { return rs::context_program(ctx); };

    framework::AutonomousManagedSystem alpha("alpha", rs::initial_asg(), rs::hypothesis_space());
    framework::AutonomousManagedSystem bravo("bravo", rs::initial_asg(), rs::hypothesis_space());
    alpha.pip().add_source("mission", context_source);
    bravo.pip().add_source("mission", context_source);

    // --- 1. alpha operates with no semantic policy and gets corrected ----
    std::printf("Phase 1: alpha decides with the unconstrained initial GPM\n");
    std::size_t wrong = 0;
    for (int i = 0; i < 25; ++i) {
        auto x = rs::sample_instance(rng);
        x.context = ctx;
        x.acceptable = rs::ground_truth(x.plan, x.context);
        auto [permitted, index] = alpha.handle_request(rs::plan_tokens(x.plan));
        (void)alpha.give_feedback(index, x.acceptable);
        if (permitted != x.acceptable) ++wrong;
    }
    auto accuracy = alpha.monitor().observed_accuracy();
    std::printf("  %zu of 25 decisions wrong (observed accuracy %.2f)\n\n", wrong,
                accuracy.value_or(0.0));

    // --- 2. the PAdaP relearns from the monitored feedback ---------------
    auto outcome = alpha.adapt();
    std::printf("Phase 2: adaptation %s (%s)\n", outcome.adapted ? "succeeded" : "failed",
                outcome.reason.c_str());
    if (outcome.adapted) {
        std::printf("  learned GPM v%llu:\n%s",
                    static_cast<unsigned long long>(outcome.new_version),
                    outcome.learn_result.hypothesis_to_string().c_str());
    }

    std::size_t wrong_after = 0;
    for (int i = 0; i < 50; ++i) {
        auto x = rs::sample_instance(rng);
        x.context = ctx;
        bool truth = rs::ground_truth(x.plan, ctx);
        auto [permitted, index] = alpha.handle_request(rs::plan_tokens(x.plan));
        (void)index;
        if (permitted != truth) ++wrong_after;
    }
    std::printf("  after adaptation: %zu of 50 decisions wrong\n\n", wrong_after);

    // --- 3. share the learned model with bravo ---------------------------
    framework::Coalition coalition;
    coalition.add_member(&alpha);
    coalition.add_member(&bravo);
    coalition.publish(alpha);
    std::size_t adopted = coalition.distribute_latest();
    std::printf("Phase 3: published alpha's model; %zu partner(s) adopted it\n", adopted);

    std::size_t bravo_wrong = 0;
    for (int i = 0; i < 50; ++i) {
        auto x = rs::sample_instance(rng);
        x.context = ctx;
        bool truth = rs::ground_truth(x.plan, ctx);
        auto [permitted, index] = bravo.handle_request(rs::plan_tokens(x.plan));
        (void)index;
        if (permitted != truth) ++bravo_wrong;
    }
    std::printf("  bravo (never trained): %zu of 50 decisions wrong using the shared model\n",
                bravo_wrong);
    return 0;
}
