// CAV autonomy policies (Section IV.A): a connected autonomous vehicle
// learns which driving-task requests to accept, from labelled examples, and
// is compared against a decision-tree baseline on the same data.
//
// Build & run:  ./build/examples/cav_policy_learning

#include <cstdio>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "scenarios/cav/cav.hpp"
#include "util/table.hpp"

using namespace agenp;
using scenarios::cav::Instance;

int main() {
    util::Rng rng(2026);

    // A pool of labelled experiences and a held-out evaluation set.
    auto pool = scenarios::cav::sample_instances(200, rng);
    auto test = scenarios::cav::sample_instances(400, rng);
    auto test_tabular = scenarios::cav::to_dataset(test);

    util::Table table({"train examples", "symbolic acc", "decision-tree acc", "learned rules"});

    for (std::size_t n : {10, 20, 40, 80, 160}) {
        std::vector<Instance> train(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n));

        // Symbolic learner.
        std::vector<ilp::LabelledExample> symbolic;
        for (const auto& x : train) symbolic.push_back(scenarios::cav::to_symbolic(x));
        ilp::SymbolicPolicyClassifier clf(scenarios::cav::initial_asg(),
                                          scenarios::cav::hypothesis_space());
        bool fitted = clf.fit(symbolic);
        std::size_t correct = 0;
        for (const auto& x : test) {
            correct += clf.predict(scenarios::cav::request_tokens(x),
                                   scenarios::cav::context_program(x.env)) == x.accepted;
        }
        double sym_acc = static_cast<double>(correct) / static_cast<double>(test.size());

        // Decision-tree baseline on the flattened features.
        ml::DecisionTree tree;
        tree.fit(scenarios::cav::to_dataset(train));
        double tree_acc = ml::evaluate(tree, test_tabular).accuracy();

        table.add(n, sym_acc, tree_acc,
                  fitted ? clf.last_result().hypothesis.size() : 0);
    }

    std::printf("CAV task-acceptance policy: accuracy vs number of training examples\n\n%s\n",
                table.render().c_str());

    // Show the final learned policy model.
    std::vector<ilp::LabelledExample> all;
    for (const auto& x : pool) all.push_back(scenarios::cav::to_symbolic(x));
    ilp::SymbolicPolicyClassifier clf(scenarios::cav::initial_asg(),
                                      scenarios::cav::hypothesis_space());
    if (clf.fit(all)) {
        std::printf("Learned generative policy model:\n%s\n",
                    clf.last_result().hypothesis_to_string().c_str());
    }
    return 0;
}
