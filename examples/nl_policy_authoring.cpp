// Controlled-natural-language policy authoring (Section III.B): an operator
// writes intents in plain English, the translator compiles them into ASG
// constraints, the PCP checks the result, and the PDP enforces it.
//
// Build & run:  ./build/examples/nl_policy_authoring

#include <cstdio>

#include "agenp/pcp.hpp"
#include "nl/translate.hpp"
#include "xacml/learning_bridge.hpp"

using namespace agenp;

int main() {
    auto schema = xacml::healthcare_schema();
    auto bridge = xacml::make_bridge(schema);
    auto vocabulary = nl::vocabulary_from_schema(schema);

    const char* policy_text = R"(
        # Hospital access policy, authored 2026-07
        deny when role is guest and resource is record
        deny when action is delete and hour below 2
        deny when role is not doctor and action is write
    )";
    std::printf("Operator intent:\n%s\n", policy_text);

    auto hypothesis = nl::translate_policy(vocabulary, policy_text);
    std::printf("Compiled ASG constraints:\n");
    for (const auto& [rule, production] : hypothesis) {
        std::printf("  %s   -> production %d\n", rule.to_string().c_str(), production);
    }

    // PCP: quality of the authored policy as an executable XACML policy.
    auto xacml_policy = xacml::to_xacml(bridge, hypothesis);
    auto universe = xacml::enumerate_requests(schema);
    auto quality = framework::PolicyCheckingPoint::assess(xacml_policy, universe);
    std::printf("\nPCP quality report:\n%s\n", quality.to_string().c_str());

    // Enforce a few requests.
    auto model = bridge.grammar.with_rules(hypothesis);
    std::printf("Sample decisions:\n");
    util::Rng rng(7);
    for (int i = 0; i < 6; ++i) {
        auto r = xacml::sample_request(schema, rng);
        bool permitted = asg::in_language(model, xacml::request_tokens(schema, r), {});
        std::printf("  %-55s -> %s\n", r.to_string(schema).c_str(),
                    permitted ? "Permit" : "Deny");
    }
    return 0;
}
