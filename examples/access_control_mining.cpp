// Access-control policy mining (Section IV.C): learn XACML policies from
// request/decision logs, render them Fig-3 style, and explain a denial with
// a counterfactual.
//
// Build & run:  ./build/examples/access_control_mining

#include <cstdio>

#include "explain/counterfactual.hpp"
#include "xacml/learning_bridge.hpp"
#include "xacml/quality_filter.hpp"

using namespace agenp;

int main() {
    auto schema = xacml::healthcare_schema();
    auto truth = xacml::default_permit_family(schema, {.deny_rules = 3, .seed = 14});
    std::printf("Ground-truth policy (hidden from the learner):\n%s\n",
                truth.to_string(schema).c_str());

    // Logs of past decisions are the training data.
    util::Rng rng(77);
    auto log = xacml::evaluate_batch(truth, xacml::sample_requests(schema, 400, rng));

    auto bridge = xacml::make_bridge(schema);
    std::printf("Hypothesis space: %zu candidates\n\n", bridge.space.candidates.size());

    auto result = xacml::learn_policy(bridge, log);
    if (!result.found) {
        std::printf("learning failed: %s\n", result.failure_reason.c_str());
        return 1;
    }
    std::printf("Learned policy (from %zu log entries):\n%s\n", log.size(),
                xacml::render_learned_policy(bridge, result.hypothesis).c_str());

    auto learned = bridge.grammar.with_rules(result.hypothesis);
    auto universe = xacml::enumerate_requests(schema);
    std::printf("Agreement with ground truth over all %zu requests: %.4f\n\n", universe.size(),
                xacml::agreement(bridge, learned, truth, universe));

    // Counterfactual explanation of one denial (Section V.B).
    for (const auto& request : universe) {
        bool permitted = evaluate(truth, request) == xacml::Decision::Permit;
        if (permitted) continue;
        auto decide = [&](const xacml::Request& r) {
            return asg::in_language(learned, xacml::request_tokens(schema, r), {});
        };
        if (decide(request)) continue;  // only explain requests the model also denies
        auto cfs = explain::find_counterfactuals(schema, request, decide);
        if (cfs.empty()) continue;
        std::printf("Explaining the denial of: %s\n  %s\n", request.to_string(schema).c_str(),
                    explain::render_counterfactual(schema, request, cfs[0], false).c_str());
        break;
    }
    return 0;
}
