// Quickstart: the Figure-1 workflow end to end.
//
// 1. Write a generative policy model as an answer set grammar (ASG):
//    a CFG for the policy syntax + ASP facts on productions.
// 2. Give context-dependent examples of which policies are valid where.
// 3. Learn the semantic conditions with the ILP learner.
// 4. Query the learned GPM: membership and policy generation per context.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "asg/generate.hpp"
#include "asp/parser.hpp"
#include "ilp/learner.hpp"

using namespace agenp;

int main() {
    // --- 1. initial GPM: syntax + per-task facts, no semantics yet -------
    auto initial = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task
        task -> "patrol"  { requires(2). }
        task -> "strike"  { requires(4). }
        task -> "observe" { requires(1). }
    )");
    std::printf("Initial ASG:\n%s\n", initial.to_string().c_str());

    // --- 2. context-dependent examples -----------------------------------
    auto ctx = [](int maxloa) {
        return asp::parse_program("maxloa(" + std::to_string(maxloa) + ").");
    };
    ilp::LearningTask task;
    task.initial = initial;
    task.positive.emplace_back(cfg::tokenize("do patrol"), ctx(3));
    task.positive.emplace_back(cfg::tokenize("do strike"), ctx(5));
    task.positive.emplace_back(cfg::tokenize("do observe"), ctx(1));
    task.negative.emplace_back(cfg::tokenize("do strike"), ctx(3));
    task.negative.emplace_back(cfg::tokenize("do patrol"), ctx(1));

    // --- 3. hypothesis space from a mode bias, then learn ----------------
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt}, /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    task.space = ilp::generate_space(bias, {0});
    std::printf("Hypothesis space: %zu candidate rules\n", task.space.candidates.size());

    auto result = ilp::learn(task);
    if (!result.found) {
        std::printf("learning failed: %s\n", result.failure_reason.c_str());
        return 1;
    }
    std::printf("Learned hypothesis (cost %d):\n%s\n", result.cost,
                result.hypothesis_to_string().c_str());

    // --- 4. use the learned GPM ------------------------------------------
    auto learned = initial.with_rules(result.hypothesis);
    for (int maxloa : {1, 3, 5}) {
        auto language = asg::language(learned, ctx(maxloa));
        std::printf("Policies generated under maxloa=%d:\n", maxloa);
        for (const auto& s : language.strings) {
            std::printf("  %s\n", cfg::detokenize(s).c_str());
        }
    }
    return 0;
}
