// Experiments E2 + E3 (Section IV.C, Figure 3): learning XACML policies
// from request/decision logs.
//
// E2 / Fig 3a — correctly learned policies: clean logs from three policy
//   families; the learned model is printed and checked for exact semantic
//   equivalence with the hidden ground truth over the full request space.
//
// E3 / Fig 3b — incorrectly learned policies and their mitigations:
//   Policy 1 (overfitting on sparse logs)  -> background knowledge;
//   Policy 2 (underspecified targets)      -> target-based restriction;
//   Policy 3 (NotApplicable noise)         -> filtering irrelevant examples.

#include <cstdio>

#include "asp/parser.hpp"
#include "util/table.hpp"
#include "xacml/learning_bridge.hpp"
#include "xacml/quality_filter.hpp"

using namespace agenp;
using namespace agenp::xacml;

namespace {

double learn_and_score(const Bridge& bridge, const XacmlPolicy& truth,
                       const std::vector<LogEntry>& log, NaHandling na, std::string* rendered,
                       bool* found) {
    auto result = learn_policy(bridge, log, na);
    if (found) *found = result.found;
    if (!result.found) {
        if (rendered) *rendered = "  (no consistent policy found: " + result.failure_reason + ")\n";
        return 0.0;
    }
    if (rendered) *rendered = render_learned_policy(bridge, result.hypothesis);
    auto learned = bridge.grammar.with_rules(result.hypothesis);
    return agreement(bridge, learned, truth, enumerate_requests(bridge.schema));
}

}  // namespace

int main() {
    auto schema = healthcare_schema();

    // --- E2 / Fig 3a: correctly learned policies -------------------------
    std::printf("E2 (Fig 3a) - correctly learned policies, clean logs\n\n");
    util::Table fig3a({"family", "seed", "log size", "learned rules", "agreement"});
    for (std::uint64_t seed : {14, 25, 36}) {
        auto truth = default_permit_family(schema, {.deny_rules = 3, .seed = seed});
        util::Rng rng(500 + seed);
        auto log = evaluate_batch(truth, sample_requests(schema, 400, rng));
        auto bridge = make_bridge(schema);
        auto result = learn_policy(bridge, log);
        double score = 0;
        std::size_t rules = 0;
        if (result.found) {
            rules = result.hypothesis.size();
            auto learned = bridge.grammar.with_rules(result.hypothesis);
            score = agreement(bridge, learned, truth, enumerate_requests(schema));
            if (seed == 14) {
                std::printf("sample learned policy (seed 14):\n%s\n",
                            render_learned_policy(bridge, result.hypothesis).c_str());
            }
        }
        fig3a.add("default-permit", seed, log.size(), rules, score);
    }
    std::printf("%s\n", fig3a.render().c_str());

    // --- E3 / Fig 3b Policy 1: overfitting vs background knowledge -------
    // Ground truth depends on role seniority: writes by junior staff are
    // denied. Without the seniority background relation the learner can
    // only overfit per-role rules from whichever roles the sparse log
    // happens to show; with it, one general rule transfers to unseen roles.
    std::printf("E3 (Fig 3b Policy 1) - overfitting vs background knowledge\n\n");
    {
        XacmlPolicy truth;
        truth.id = "seniority";
        truth.alg = CombiningAlg::DenyOverrides;
        // juniors: nurse (seniority 1), guest (0). seniors: doctor 3, admin 2.
        for (const auto& junior : {"nurse", "guest"}) {
            XacmlRule r;
            r.effect = Effect::Deny;
            r.target.all_of.push_back({0, Match::Op::Eq, AttributeValue::of(std::string(junior))});
            r.target.all_of.push_back(
                {2, Match::Op::Eq, AttributeValue::of(std::string("write"))});
            truth.rules.push_back(r);
        }
        XacmlRule permit;
        permit.effect = Effect::Permit;
        truth.rules.push_back(permit);

        // Sparse, skewed log: guests never appear in it, so per-role rules
        // cannot cover them; only the seniority background generalizes to
        // the unseen role (the paper's role-hierarchy mitigation).
        util::Rng rng(808);
        std::vector<Request> skewed;
        for (const auto& r : sample_requests(schema, 60, rng)) {
            if (r.values[0].text != "guest") skewed.push_back(r);
        }
        auto log = evaluate_batch(truth, skewed);

        BridgeOptions plain;
        auto bridge_plain = make_bridge(schema, plain);

        BridgeOptions with_bg;
        with_bg.var_attributes = {"role"};
        with_bg.background = asp::parse_program(
            "seniority(doctor, 3). seniority(admin, 2). seniority(nurse, 1). seniority(guest, 0).");
        with_bg.extra_body_atoms.push_back(
            ilp::ModeAtom("seniority", {ilp::ArgSpec::var("role"), ilp::ArgSpec::var("hour")}));
        with_bg.max_body_atoms = 3;
        with_bg.max_vars = 2;
        auto bridge_bg = make_bridge(schema, with_bg);

        util::Table t({"variant", "agreement (full space)", "found"});
        bool found_plain = false, found_bg = false;
        auto acc_plain =
            learn_and_score(bridge_plain, truth, log, NaHandling::Drop, nullptr, &found_plain);
        std::string rendered;
        auto acc_bg = learn_and_score(bridge_bg, truth, log, NaHandling::Drop, &rendered, &found_bg);
        t.add("no background (overfits sparse roles)", acc_plain, found_plain ? "yes" : "no");
        t.add("with seniority background", acc_bg, found_bg ? "yes" : "no");
        std::printf("%s\nlearned with background:\n%s\n", t.render().c_str(), rendered.c_str());
    }

    // --- E3 / Fig 3b Policy 2: underspecified target vs restriction ------
    std::printf("E3 (Fig 3b Policy 2) - target restriction forces well-specified rules\n\n");
    {
        // Ground truth: guests are denied on RECORDS only. The log happens
        // to contain no guest-on-report entries, so the cheaper,
        // under-specified rule "deny role=guest" also fits it — and
        // over-denies on the full space. Requiring rules to name the
        // resource (the paper's target-based restriction) recovers the
        // well-specified policy.
        XacmlPolicy truth;
        truth.id = "guest-records";
        truth.alg = CombiningAlg::DenyOverrides;
        XacmlRule deny;
        deny.id = "deny-guest-record";
        deny.effect = Effect::Deny;
        deny.target.all_of.push_back({0, Match::Op::Eq, AttributeValue::of(std::string("guest"))});
        deny.target.all_of.push_back(
            {3, Match::Op::Eq, AttributeValue::of(std::string("record"))});
        XacmlRule permit;
        permit.id = "permit-all";
        permit.effect = Effect::Permit;
        truth.rules = {deny, permit};

        util::Rng rng(909);
        std::vector<Request> biased;
        for (const auto& r : sample_requests(schema, 120, rng)) {
            if (r.values[0].text == "guest" && r.values[3].text == "report") continue;
            biased.push_back(r);
        }
        auto log = evaluate_batch(truth, biased);

        auto bridge_free = make_bridge(schema);
        BridgeOptions restricted;
        restricted.required_attributes = {"resource"};
        auto bridge_restricted = make_bridge(schema, restricted);

        std::string free_text, restricted_text;
        bool f1 = false, f2 = false;
        auto acc_free = learn_and_score(bridge_free, truth, log, NaHandling::Drop, &free_text, &f1);
        auto acc_restr = learn_and_score(bridge_restricted, truth, log, NaHandling::Drop,
                                         &restricted_text, &f2);
        util::Table t({"variant", "space size", "agreement", "found"});
        t.add("unrestricted", bridge_free.space.candidates.size(), acc_free, f1 ? "yes" : "no");
        t.add("resource-target required", bridge_restricted.space.candidates.size(), acc_restr,
              f2 ? "yes" : "no");
        std::printf("%s\nunrestricted:\n%s\nrestricted (every rule names the resource):\n%s\n",
                    t.render().c_str(), free_text.c_str(), restricted_text.c_str());
    }

    // --- E3 / Fig 3b Policy 3: NotApplicable noise vs filtering ----------
    std::printf("E3 (Fig 3b Policy 3) - NotApplicable responses vs filtering\n\n");
    {
        auto truth = default_permit_family(schema, {.deny_rules = 3, .seed = 14});
        util::Rng rng(711);
        auto log = evaluate_batch(truth, sample_requests(schema, 400, rng));
        inject_noise(log, {.not_applicable_prob = 0.25, .seed = 3});

        auto bridge = make_bridge(schema);
        util::Table t({"variant", "agreement", "found"});
        bool f1 = false, f2 = false;
        auto acc_bad = learn_and_score(bridge, truth, log, NaHandling::AsDeny, nullptr, &f1);
        FilterStats stats;
        auto filtered = filter_low_quality(log, schema, &stats);
        auto acc_good = learn_and_score(bridge, truth, filtered, NaHandling::Drop, nullptr, &f2);
        t.add("NA misread as Deny", acc_bad, f1 ? "yes" : "no");
        t.add("low-quality examples filtered", acc_good, f2 ? "yes" : "no");
        std::printf("%s\nfilter removed: %zu irrelevant, %zu inconsistent, %zu duplicates\n",
                    t.render().c_str(), stats.irrelevant_removed, stats.inconsistent_removed,
                    stats.duplicates_removed);
    }
    return 0;
}
