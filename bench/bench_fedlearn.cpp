// Experiment E9 (Section IV.E): federated-learning governance.
//
// Parties exchange model insights; the receiving party's GPM decides how to
// incorporate each insight (adopt / combine / retrain). Reported: learning
// curve for the governance policy and a simulated exchange round where the
// learned policy's action sets are compared with the ground truth.

#include <cstdio>

#include "scenarios/fedlearn/fedlearn.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace fl = scenarios::fedlearn;

int main() {
    std::printf("E9 - federated-learning governance policy\n\n");

    util::Table curve({"train examples", "accuracy", "rules"});
    ilp::LearnOptions options;
    options.max_cost = 30;
    ilp::SymbolicPolicyClassifier final_model(fl::initial_asg(), fl::hypothesis_space(), options);
    for (std::size_t n : {25, 50, 100, 200}) {
        util::Rng rng(9000 + n);
        auto train = fl::sample_instances(n, rng);
        auto test = fl::sample_instances(400, rng);
        std::vector<ilp::LabelledExample> examples;
        for (const auto& x : train) examples.push_back(fl::to_symbolic(x));
        ilp::SymbolicPolicyClassifier clf(fl::initial_asg(), fl::hypothesis_space(), options);
        bool fitted = clf.fit(examples);
        std::size_t correct = 0;
        for (const auto& x : test) {
            correct += clf.predict(fl::action_tokens(x.action), fl::context_program(x.insight)) ==
                       x.allowed;
        }
        curve.add(n, static_cast<double>(correct) / static_cast<double>(test.size()),
                  fitted ? clf.last_result().hypothesis.size() : 0);
        if (n == 200 && fitted) final_model = clf;
    }
    std::printf("%s\n", curve.render().c_str());
    std::printf("learned governance policy (n=200):\n%s\n",
                final_model.last_result().hypothesis_to_string().c_str());

    // Simulated coalition exchange round: per-insight allowed action sets.
    std::printf("simulated exchange round (learned vs ground-truth action sets):\n\n");
    util::Table round({"insight (trust,acc,stale)", "truth", "learned", "match"});
    util::Rng rng(424);
    auto joined = [](const std::vector<std::string>& v) {
        std::string out;
        for (std::size_t i = 0; i < v.size(); ++i) out += (i ? "+" : "") + v[i];
        return out.empty() ? "(none)" : out;
    };
    for (int i = 0; i < 8; ++i) {
        fl::Insight insight{.trust = static_cast<int>(rng.uniform(0, 4)),
                            .accuracy = static_cast<int>(rng.uniform(0, 10)),
                            .staleness = static_cast<int>(rng.uniform(0, 5))};
        std::vector<std::string> truth;
        for (std::size_t a = 0; a < fl::actions().size(); ++a) {
            if (fl::ground_truth(a, insight)) truth.push_back(fl::actions()[a]);
        }
        auto learned = fl::allowed_actions(final_model.model(), insight);
        std::string key = "(" + std::to_string(insight.trust) + "," +
                          std::to_string(insight.accuracy) + "," +
                          std::to_string(insight.staleness) + ")";
        round.add(key, joined(truth), joined(learned), truth == learned ? "yes" : "NO");
    }
    std::printf("%s\n", round.render().c_str());
    return 0;
}
