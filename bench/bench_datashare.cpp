// Experiment E8 (Section IV.D, [33]): coalition data sharing.
//
// Two learned policies are reproduced: the sharing decision ("is this item
// releasable to this partner?") and helper-microservice selection ("which
// microservice evaluates which data in which context"). Reported: accuracy
// vs training size, and the learned rules themselves.

#include <cstdio>

#include "scenarios/datashare/datashare.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace ds = scenarios::datashare;

int main() {
    // --- sharing policy ---------------------------------------------------
    std::printf("E8 - coalition data-sharing policy\n\n");
    util::Table sharing({"train examples", "accuracy", "rules"});
    for (std::size_t n : {10, 20, 40, 80}) {
        util::Rng rng(7000 + n);
        auto train = ds::sample_share_instances(n, rng);
        auto test = ds::sample_share_instances(300, rng);
        std::vector<ilp::LabelledExample> examples;
        for (const auto& x : train) examples.push_back(ds::to_symbolic(x));
        ilp::SymbolicPolicyClassifier clf(ds::share_asg(), ds::share_space());
        bool fitted = clf.fit(examples);
        std::size_t correct = 0;
        for (const auto& x : test) {
            correct += clf.predict(ds::share_tokens(x.item), ds::share_context(x.partner)) ==
                       x.share;
        }
        sharing.add(n, static_cast<double>(correct) / static_cast<double>(test.size()),
                    fitted ? clf.last_result().hypothesis.size() : 0);
        if (n == 80 && fitted) {
            std::printf("learned sharing policy (n=80):\n%s\n",
                        clf.last_result().hypothesis_to_string().c_str());
        }
    }
    std::printf("%s\n", sharing.render().c_str());

    // --- microservice selection ------------------------------------------
    std::printf("E8b - helper-microservice selection policy\n\n");
    util::Table selection({"train examples", "accuracy", "rules"});
    for (std::size_t n : {20, 40, 80, 160}) {
        util::Rng rng(8000 + n);
        auto train = ds::sample_service_instances(n, rng);
        auto test = ds::sample_service_instances(300, rng);
        std::vector<ilp::LabelledExample> examples;
        for (const auto& x : train) examples.push_back(ds::to_symbolic(x));
        ilp::LearnOptions options;
        options.max_cost = 30;
        ilp::SymbolicPolicyClassifier clf(ds::service_asg(), ds::service_space(), options);
        bool fitted = clf.fit(examples);
        std::size_t correct = 0;
        for (const auto& x : test) {
            correct += clf.predict(ds::service_tokens(x.service, x.kind),
                                   ds::share_context(x.partner)) == x.valid;
        }
        selection.add(n, static_cast<double>(correct) / static_cast<double>(test.size()),
                      fitted ? clf.last_result().hypothesis.size() : 0);
        if (n == 160 && fitted) {
            std::printf("learned selection policy (n=160):\n%s\n",
                        clf.last_result().hypothesis_to_string().c_str());
        }
    }
    std::printf("%s\n", selection.render().c_str());
    return 0;
}
