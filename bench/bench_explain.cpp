// Experiment E10 (Section V.B): explainability.
//
// Rule attribution (enforcement level) and counterfactual explanations are
// generated for decisions of a learned XACML model; reported: coverage
// (how many denials get a minimal counterfactual), explanation minimality
// distribution, and latency vs attribute-space size.

#include <chrono>
#include <cstdio>

#include "explain/attribution.hpp"
#include "explain/counterfactual.hpp"
#include "util/table.hpp"
#include "xacml/learning_bridge.hpp"

using namespace agenp;
using namespace agenp::xacml;

int main() {
    auto schema = healthcare_schema();
    auto truth = default_permit_family(schema, {.deny_rules = 3, .seed = 14});
    auto bridge = make_bridge(schema);
    util::Rng rng(555);
    auto log = evaluate_batch(truth, sample_requests(schema, 400, rng));
    auto result = learn_policy(bridge, log);
    if (!result.found) {
        std::printf("learning failed: %s\n", result.failure_reason.c_str());
        return 1;
    }
    auto learned = bridge.grammar.with_rules(result.hypothesis);
    auto decide = [&](const Request& r) {
        return asg::in_language(learned, request_tokens(schema, r), {});
    };

    // --- counterfactual coverage and minimality over all denials ---------
    auto universe = enumerate_requests(schema);
    std::size_t denials = 0, explained = 0;
    std::size_t by_distance[3] = {0, 0, 0};
    double total_ms = 0;
    for (const auto& r : universe) {
        if (decide(r)) continue;
        ++denials;
        auto t0 = std::chrono::steady_clock::now();
        auto cfs = explain::find_counterfactuals(schema, r, decide, {.max_distance = 2});
        total_ms +=
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
        if (!cfs.empty()) {
            ++explained;
            auto d = cfs[0].distance();
            if (d >= 1 && d <= 2) ++by_distance[d];
        }
    }
    std::printf("E10 - explainability of the learned access-control model\n\n");
    util::Table cf({"denials", "explained", "distance-1", "distance-2", "mean ms/denial"});
    cf.add(denials, explained, by_distance[1], by_distance[2],
           denials ? total_ms / static_cast<double>(denials) : 0.0);
    std::printf("counterfactual coverage over the full request space:\n%s\n", cf.render().c_str());

    // A worked example of each explanation type.
    for (const auto& r : universe) {
        if (decide(r)) continue;
        auto cfs = explain::find_counterfactuals(schema, r, decide);
        if (cfs.empty()) continue;
        std::printf("example request: %s\n", r.to_string(schema).c_str());
        std::printf("  counterfactual: %s\n",
                    explain::render_counterfactual(schema, r, cfs[0], false).c_str());
        auto attribution = explain::attribute_rejection(bridge.grammar, result.hypothesis,
                                                        request_tokens(schema, r), {});
        std::printf("  rule attribution:\n%s\n",
                    explain::render_attribution(attribution, result.hypothesis).c_str());
        break;
    }

    // --- latency vs attribute-space size ----------------------------------
    util::Table latency({"extra attributes", "space size", "mean ms/counterfactual"});
    for (int extra : {0, 1, 2, 3}) {
        Schema wide = schema;
        for (int i = 0; i < extra; ++i) {
            wide.attributes.push_back(AttributeDef::categorical(
                "tag" + std::to_string(i), Category::Environment, {"a", "b", "c", "d"}));
        }
        util::Rng wrng(600 + static_cast<std::uint64_t>(extra));
        // Denial surface: same truth policy evaluated on the original
        // attributes (extra tags are noise dimensions the search must cope
        // with).
        auto wide_decide = [&](const Request& r) {
            Request narrow;
            narrow.values.assign(r.values.begin(),
                                 r.values.begin() + static_cast<std::ptrdiff_t>(schema.size()));
            return evaluate(truth, narrow) == Decision::Permit;
        };
        double ms_sum = 0;
        int measured = 0;
        for (int i = 0; i < 30; ++i) {
            auto r = sample_request(wide, wrng);
            if (wide_decide(r)) continue;
            auto t0 = std::chrono::steady_clock::now();
            auto cfs = explain::find_counterfactuals(wide, r, wide_decide, {.max_distance = 2});
            ms_sum += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                          .count();
            ++measured;
        }
        latency.add(extra, wide.request_space_size(), measured ? ms_sum / measured : 0.0);
    }
    std::printf("counterfactual latency vs attribute-space size:\n%s\n", latency.render().c_str());
    return 0;
}
