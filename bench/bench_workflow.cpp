// Experiment E1 (Figure 1): the ASG learning workflow — initial GPM +
// context-dependent examples -> ILASP-style learner -> learned GPM — run
// end to end on three grammars of increasing difficulty, reporting the
// hypothesis found, its cost, and the learner's work counters.

#include <chrono>
#include <cstdio>

#include "asp/parser.hpp"
#include "ilp/learner.hpp"
#include "scenarios/cav/cav.hpp"
#include "scenarios/datashare/datashare.hpp"
#include "util/table.hpp"

using namespace agenp;

namespace {

struct Workflow {
    std::string name;
    ilp::LearningTask task;
};

Workflow loa_workflow() {
    Workflow w;
    w.name = "loa-ceiling";
    w.task.initial = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task
        task -> "patrol" { requires(2). }
        task -> "strike" { requires(4). }
        task -> "observe" { requires(1). }
    )");
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt}, false, true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    w.task.space = ilp::generate_space(bias, {0});
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    w.task.positive.emplace_back(cfg::tokenize("do patrol"), ctx(3));
    w.task.positive.emplace_back(cfg::tokenize("do strike"), ctx(5));
    w.task.positive.emplace_back(cfg::tokenize("do observe"), ctx(1));
    w.task.negative.emplace_back(cfg::tokenize("do strike"), ctx(3));
    w.task.negative.emplace_back(cfg::tokenize("do patrol"), ctx(1));
    return w;
}

Workflow cav_workflow() {
    Workflow w;
    w.name = "cav-policy";
    w.task.initial = scenarios::cav::initial_asg();
    w.task.space = scenarios::cav::hypothesis_space();
    util::Rng rng(61);
    for (const auto& x : scenarios::cav::sample_instances(60, rng)) {
        auto ex = scenarios::cav::to_symbolic(x);
        auto& bucket = ex.accepted ? w.task.positive : w.task.negative;
        bucket.emplace_back(ex.request, ex.context);
    }
    return w;
}

Workflow datashare_workflow() {
    Workflow w;
    w.name = "data-sharing";
    w.task.initial = scenarios::datashare::share_asg();
    w.task.space = scenarios::datashare::share_space();
    util::Rng rng(62);
    for (const auto& x : scenarios::datashare::sample_share_instances(60, rng)) {
        auto ex = scenarios::datashare::to_symbolic(x);
        auto& bucket = ex.accepted ? w.task.positive : w.task.negative;
        bucket.emplace_back(ex.request, ex.context);
    }
    return w;
}

}  // namespace

int main() {
    std::printf("E1 (Fig 1) - the learn-a-GPM workflow on three tasks\n\n");
    util::Table table({"task", "candidates", "pos", "neg", "found", "rules", "cost", "ms"});

    for (auto& w : {loa_workflow(), cav_workflow(), datashare_workflow()}) {
        auto t0 = std::chrono::steady_clock::now();
        auto result = ilp::learn(w.task);
        auto ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                      .count();
        table.add(w.name, w.task.space.candidates.size(), w.task.positive.size(),
                  w.task.negative.size(), result.found ? "yes" : "no", result.hypothesis.size(),
                  result.cost, ms);
        if (result.found) {
            std::printf("[%s] learned GPM:\n%s\n", w.name.c_str(),
                        result.hypothesis_to_string().c_str());
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
