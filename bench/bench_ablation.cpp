// Ablation benches for DESIGN.md's extension features.
//
// A. Similarity-based adaptation (Section I): a stream of context shifts is
//    served with and without the AdaptationCache; reported: inductive-search
//    calls avoided and wall-clock saved.
// B. Noise handling (Section IV.C): label-flip noise swept from 0 to 20%;
//    strict Definition-3 learning vs majority-vote filtering vs the
//    penalty-based noisy learner; reported: held-out agreement.

#include <chrono>
#include <cstdio>

#include "agenp/similarity.hpp"
#include "asp/parser.hpp"
#include "ilp/guidance.hpp"
#include "scenarios/datashare/datashare.hpp"
#include "scenarios/cav/cav.hpp"
#include "util/table.hpp"
#include "xacml/learning_bridge.hpp"
#include "xacml/quality_filter.hpp"

using namespace agenp;
namespace cav = scenarios::cav;

namespace {

// One CAV learning task whose examples all share a single environment.
ilp::LearningTask cav_task_for_env(const cav::Environment& env, std::size_t n, util::Rng& rng) {
    ilp::LearningTask task;
    task.initial = cav::initial_asg();
    task.space = cav::hypothesis_space();
    for (std::size_t i = 0; i < n; ++i) {
        cav::Instance x;
        x.task = static_cast<std::size_t>(rng.uniform(0, 4));
        x.env = env;
        x.accepted = cav::ground_truth(x);
        auto& bucket = x.accepted ? task.positive : task.negative;
        bucket.emplace_back(cav::request_tokens(x), cav::context_program(x.env));
    }
    return task;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
    // --- A. similarity-based adaptation -----------------------------------
    std::printf("Ablation A - similarity-based adaptation over a context stream\n\n");
    {
        const int kShifts = 12;
        util::Rng rng(2711);
        std::vector<cav::Environment> stream;
        for (int i = 0; i < kShifts; ++i) {
            // Environments drift: LOA ceilings wander, weather flips.
            stream.push_back({static_cast<int>(rng.uniform(2, 5)),
                              static_cast<int>(rng.uniform(2, 5)),
                              static_cast<int>(rng.uniform(0, 2))});
        }

        // Without cache: learn at every shift.
        util::Rng gen1(13);
        auto t0 = std::chrono::steady_clock::now();
        int learns_plain = 0;
        for (const auto& env : stream) {
            auto task = cav_task_for_env(env, 30, gen1);
            auto result = ilp::learn(task);
            learns_plain += result.found ? 1 : 0;
        }
        double plain_ms = ms_since(t0);

        // With cache: reuse across similar contexts.
        util::Rng gen2(13);
        framework::AdaptationCache cache(0.1);
        t0 = std::chrono::steady_clock::now();
        for (const auto& env : stream) {
            auto task = cav_task_for_env(env, 30, gen2);
            cache.adapt(task, cav::context_program(env));
        }
        double cached_ms = ms_since(t0);

        util::Table t({"variant", "context shifts", "inductive searches", "total ms"});
        t.add("learn every shift", kShifts, learns_plain, plain_ms);
        t.add("similarity cache", kShifts, cache.learn_calls(), cached_ms);
        std::printf("%s\nreuse hits: %zu of %d shifts\n\n", t.render().c_str(), cache.reuse_hits(),
                    kShifts);
    }

    // --- B. noise handling --------------------------------------------------
    std::printf("Ablation B - label-flip noise: strict vs filtering vs penalty learner\n\n");
    {
        auto schema = xacml::healthcare_schema();
        auto truth = xacml::default_permit_family(schema, {.deny_rules = 3, .seed = 14});
        auto bridge = xacml::make_bridge(schema);
        auto universe = xacml::enumerate_requests(schema);

        util::Table t({"flip rate", "strict", "filtered", "filtered+penalty", "residual bad"});
        for (double rate : {0.0, 0.05, 0.10, 0.20}) {
            util::Rng rng(3100 + static_cast<std::uint64_t>(rate * 100));
            // Quintuplicated requests so majority voting has signal; the
            // groups where >=3 of 5 copies flipped survive filtering as
            // wrong labels and only the penalty learner absorbs them.
            std::vector<xacml::Request> repeated;
            for (const auto& r : xacml::sample_requests(schema, 120, rng)) {
                for (int c = 0; c < 5; ++c) repeated.push_back(r);
            }
            auto log = xacml::evaluate_batch(truth, repeated);
            xacml::inject_noise(log, {.flip_prob = rate, .seed = 5});

            auto score = [&](const ilp::LearnResult& result) {
                if (!result.found) return 0.0;
                auto learned = bridge.grammar.with_rules(result.hypothesis);
                return xacml::agreement(bridge, learned, truth, universe);
            };

            auto strict = score(xacml::learn_policy(bridge, log));
            auto filtered_log = xacml::filter_low_quality(log, schema);
            std::size_t residual_bad = 0;
            for (const auto& e : filtered_log) {
                if (e.decision != evaluate(truth, e.request)) ++residual_bad;
            }
            auto filtered = score(xacml::learn_policy(bridge, filtered_log));
            ilp::LearnOptions noisy;
            noisy.noise_penalty = 4;
            noisy.max_cost = 24 + 4 * static_cast<int>(residual_bad + 2);
            auto both =
                score(xacml::learn_policy(bridge, filtered_log, xacml::NaHandling::Drop, noisy));
            t.add(rate, strict, filtered, both, residual_bad);
        }
        std::printf("%s\n(0.000 = no consistent hypothesis. Strict Definition 3 is brittle under\n"
                    "noise; majority-vote filtering repairs most of it, and the penalty learner\n"
                    "absorbs the residual wrong-majority groups.)\n\n",
                    t.render().c_str());
    }

    // --- C. statistical search guidance ------------------------------------
    std::printf("Ablation C - statistical guidance of the hypothesis search (Section V.C)\n\n");
    {
        // The microservice-selection policy needs a 9-rule cover, so the
        // branch-and-bound has real work to do. Train the scorer on 4
        // solved tasks, then compare node counts on 8 fresh ones.
        namespace ds = scenarios::datashare;
        auto make_task = [](std::uint64_t seed) {
            ilp::LearningTask task;
            task.initial = ds::service_asg();
            task.space = ds::service_space();
            util::Rng rng(seed);
            for (const auto& x : ds::sample_service_instances(70, rng)) {
                auto ex = ds::to_symbolic(x);
                auto& bucket = ex.accepted ? task.positive : task.negative;
                bucket.emplace_back(ex.request, ex.context);
            }
            return task;
        };
        ilp::LearnOptions base;
        base.max_cost = 30;

        ilp::SearchGuidance guidance;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            auto task = make_task(4000 + seed);
            auto result = ilp::learn(task, base);
            if (result.found) guidance.record(task, result);
        }
        guidance.train();

        std::size_t nodes_plain = 0, nodes_guided = 0;
        int solved_plain = 0, solved_guided = 0;
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            auto task = make_task(5000 + seed);
            auto plain = ilp::learn(task, base);
            ilp::LearnOptions guided_options = base;
            guided_options.guidance = &guidance;
            auto guided = ilp::learn(task, guided_options);
            nodes_plain += plain.stats.search_nodes;
            nodes_guided += guided.stats.search_nodes;
            solved_plain += plain.found;
            solved_guided += guided.found;
            if (plain.found && guided.found && plain.cost != guided.cost) {
                std::printf("  WARNING: guidance changed the optimum on seed %llu\n",
                            static_cast<unsigned long long>(seed));
            }
        }
        util::Table t({"variant", "tasks solved", "total search nodes"});
        t.add("cost order", solved_plain, nodes_plain);
        t.add("guided order", solved_guided, nodes_guided);
        std::printf("%s\n(ordering is a heuristic only: both runs return identical minimal-cost\n"
                    "hypotheses; guided branching tightens the bound sooner)\n",
                    t.render().c_str());
    }
    return 0;
}
