// Experiment E6 (Section V.A): the PCP's policy-quality metrics —
// consistency, relevance, minimality, completeness — on generated policy
// sets with seeded defects, plus assessment cost vs policy-set size.

#include <chrono>
#include <cstdio>

#include "agenp/pcp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xacml/generator.hpp"

using namespace agenp;
using namespace agenp::xacml;

namespace {

// Builds a policy with `rules` random deny rules and seeded defects.
XacmlPolicy seeded_policy(const Schema& schema, int rules, int conflicts, int duplicates,
                          int irrelevant, bool catch_all, std::uint64_t seed) {
    auto base = default_permit_family(
        schema, {.deny_rules = rules, .matches_per_rule = 2, .catch_all_permit = false, .seed = seed});
    XacmlPolicy p;
    p.id = "seeded";
    p.alg = CombiningAlg::DenyOverrides;
    p.rules = base.rules;
    util::Rng rng(seed * 31 + 7);
    // Conflicts: clone a deny rule with Permit effect.
    for (int i = 0; i < conflicts && !base.rules.empty(); ++i) {
        XacmlRule r = base.rules[static_cast<std::size_t>(i) % base.rules.size()];
        r.id += "-conflict";
        r.effect = Effect::Permit;
        p.rules.push_back(r);
    }
    // Duplicates: exact copies (redundant).
    for (int i = 0; i < duplicates && !base.rules.empty(); ++i) {
        XacmlRule r = base.rules[static_cast<std::size_t>(i) % base.rules.size()];
        r.id += "-dup";
        p.rules.push_back(r);
    }
    // Irrelevant: impossible numeric condition.
    for (int i = 0; i < irrelevant; ++i) {
        XacmlRule r;
        r.id = "never-" + std::to_string(i);
        r.effect = Effect::Deny;
        r.target.all_of.push_back({static_cast<std::size_t>(schema.index_of("hour")),
                                   Match::Op::Gt, AttributeValue::of(999)});
        p.rules.push_back(r);
    }
    if (catch_all) {
        XacmlRule permit;
        permit.id = "permit-all";
        permit.effect = Effect::Permit;
        p.rules.push_back(permit);
    }
    return p;
}

}  // namespace

int main() {
    auto schema = healthcare_schema();
    auto universe = enumerate_requests(schema);

    std::printf("E6 - PCP quality metrics (universe: %zu requests)\n\n", universe.size());

    // Detection: seeded defects must be found.
    util::Table detect({"seeded (conf/dup/irrel/gap)", "conflicts", "redundant", "irrelevant",
                        "uncovered", "all four flags"});
    struct Case {
        int conflicts, duplicates, irrelevant;
        bool catch_all;
    };
    for (const auto& c : {Case{0, 0, 0, true}, Case{2, 0, 0, true}, Case{0, 2, 0, true},
                          Case{0, 0, 2, true}, Case{1, 1, 1, false}}) {
        auto p = seeded_policy(schema, 3, c.conflicts, c.duplicates, c.irrelevant, c.catch_all, 5);
        auto report = framework::PolicyCheckingPoint::assess(p, universe);
        std::string label = std::to_string(c.conflicts) + "/" + std::to_string(c.duplicates) + "/" +
                            std::to_string(c.irrelevant) + "/" + (c.catch_all ? "no" : "yes");
        bool flags = !report.consistent() || !report.minimal() || !report.relevant() ||
                     !report.complete();
        detect.add(label, report.conflicts.size(), report.redundant_rules.size(),
                   report.irrelevant_rules.size(), report.uncovered_requests,
                   (c.conflicts + c.duplicates + c.irrelevant > 0 || !c.catch_all) == flags
                       ? "correct"
                       : "MISSED");
    }
    std::printf("%s\n", detect.render().c_str());

    // Cost scaling with policy-set size.
    util::Table scaling({"rules", "assess ms"});
    for (int rules : {5, 10, 20, 40, 80}) {
        auto p = seeded_policy(schema, rules, 2, 2, 2, true, 9);
        auto t0 = std::chrono::steady_clock::now();
        auto report = framework::PolicyCheckingPoint::assess(p, universe);
        (void)report;
        auto ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
        scaling.add(rules, ms);
    }
    std::printf("assessment cost vs policy-set size:\n%s\n", scaling.render().c_str());

    // Enforceability (coalition-specific requirement from Section V.A).
    auto p = seeded_policy(schema, 4, 0, 0, 0, true, 11);
    auto all_observable = framework::PolicyCheckingPoint::assess_enforceability(p, {0, 1, 2, 3, 4});
    auto no_clock = framework::PolicyCheckingPoint::assess_enforceability(p, {0, 1, 2, 3});
    std::printf("enforceability: full sensors -> %s; clock unobservable -> %zu rule(s) unenforceable\n\n",
                all_observable.enforceable() ? "all rules enforceable" : "violations",
                no_clock.unenforceable_rules.size());

    // Risk (the other Section V.A coalition-specific requirement): trade-off
    // between exposure from permitting and burden from denying, under a
    // model where deletes carry 10x exposure.
    framework::PolicyCheckingPoint::RiskModel risk_model;
    auto action_index = static_cast<std::size_t>(schema.index_of("action"));
    risk_model.exposure = [action_index](const Request& r) {
        return r.values[action_index].text == "delete" ? 10.0 : 1.0;
    };
    util::Table risk({"policy", "exposure ratio", "denial burden"});
    for (int deny_rules : {0, 2, 4, 8}) {
        auto policy = seeded_policy(schema, deny_rules, 0, 0, 0, true, 21);
        auto report = framework::PolicyCheckingPoint::assess_risk(policy, universe, risk_model);
        risk.add(std::to_string(deny_rules) + " deny rules", report.exposure_ratio(),
                 report.burden_ratio());
    }
    std::printf("risk profile vs restrictiveness (deletes weighted 10x):\n%s\n",
                risk.render().c_str());
    return 0;
}
