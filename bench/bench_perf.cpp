// Experiment E7 (Sections III.B, IV.A): performance of the symbolic
// machinery — the paper's "Performance Optimization" research direction
// asks whether GPM adaptation and learning are fast enough for real-time
// autonomous parties. google-benchmark microbenches over:
//   - grounding (facts sweep),
//   - answer-set solving (choice-space sweep),
//   - ASG membership (string-length sweep),
//   - hypothesis-space generation and end-to-end learning (example sweep).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "analysis/lint.hpp"
#include "asg/membership.hpp"
#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"
#include "scenarios/cav/cav.hpp"

using namespace agenp;

namespace {

// --- grounding ------------------------------------------------------------

void BM_GroundTransitiveClosure(benchmark::State& state) {
    auto n = state.range(0);
    std::string text;
    for (std::int64_t i = 0; i + 1 < n; ++i) {
        text += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "r(X,Y) :- e(X,Y).\nr(X,Z) :- r(X,Y), e(Y,Z).\n";
    auto program = asp::parse_program(text);
    for (auto _ : state) {
        auto gp = asp::ground(program);
        benchmark::DoNotOptimize(gp.rules().size());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_GroundTransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

// --- solving ---------------------------------------------------------------

void BM_SolveEvenLoops(benchmark::State& state) {
    auto k = state.range(0);
    std::string text;
    for (std::int64_t i = 0; i < k; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
        // Constraint forcing each loop to the p side: unique answer set.
        text += ":- q" + std::to_string(i) + ".\n";
    }
    auto gp = asp::ground(asp::parse_program(text));
    for (auto _ : state) {
        auto result = asp::solve(gp, {.max_models = 1});
        benchmark::DoNotOptimize(result.models.size());
    }
    state.SetComplexityN(k);
}
BENCHMARK(BM_SolveEvenLoops)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_SolveEnumerateAll(benchmark::State& state) {
    auto k = state.range(0);  // 2^k answer sets
    std::string text;
    for (std::int64_t i = 0; i < k; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
    }
    auto gp = asp::ground(asp::parse_program(text));
    for (auto _ : state) {
        auto result = asp::solve(gp, {.max_models = 0});
        benchmark::DoNotOptimize(result.models.size());
    }
}
BENCHMARK(BM_SolveEnumerateAll)->Arg(4)->Arg(6)->Arg(8);

// --- ASG membership ---------------------------------------------------------

void BM_AsgMembershipAnBn(benchmark::State& state) {
    auto n = state.range(0);
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> as bs { :- size(N)@1, size(M)@2, N != M. }
        as -> "a" as { size(N) :- size(M)@2, N = M + 1. }
        as -> epsilon { size(0). }
        bs -> "b" bs { size(N) :- size(M)@2, N = M + 1. }
        bs -> epsilon { size(0). }
    )");
    cfg::TokenString s;
    for (std::int64_t i = 0; i < n; ++i) s.emplace_back("a");
    for (std::int64_t i = 0; i < n; ++i) s.emplace_back("b");
    for (auto _ : state) {
        benchmark::DoNotOptimize(asg::in_language(g, s));
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_AsgMembershipAnBn)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_AsgMembershipCav(benchmark::State& state) {
    auto model = scenarios::cav::reference_model();
    util::Rng rng(5);
    auto x = scenarios::cav::sample_instance(rng);
    auto tokens = scenarios::cav::request_tokens(x);
    auto context = scenarios::cav::context_program(x.env);
    for (auto _ : state) {
        benchmark::DoNotOptimize(asg::in_language(model, tokens, context));
    }
}
BENCHMARK(BM_AsgMembershipCav);

// --- hypothesis space + learning --------------------------------------------

void BM_HypothesisSpaceCav(benchmark::State& state) {
    for (auto _ : state) {
        auto space = scenarios::cav::hypothesis_space();
        benchmark::DoNotOptimize(space.candidates.size());
    }
}
BENCHMARK(BM_HypothesisSpaceCav);

// Learning time vs hypothesis-space size: the space is scaled by widening
// the constant pools and the body budget.
void BM_LearnVsSpaceSize(benchmark::State& state) {
    int level = static_cast<int>(state.range(0));  // 1..3
    auto initial = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task
        task -> "patrol" { requires(2). }
        task -> "strike" { requires(4). }
        task -> "observe" { requires(1). }
    )");
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt, asp::Comparison::Op::Lt},
        /*var_vs_const=*/level >= 2, /*var_vs_var=*/true));
    for (int v = 0; v <= 3 * level; ++v) bias.add_constant("lvl", asp::Term::integer(v));
    bias.max_body_atoms = level >= 3 ? 3 : 2;
    bias.max_vars = 2;
    ilp::LearningTask task;
    task.initial = initial;
    task.space = ilp::generate_space(bias, {0});
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    task.positive.emplace_back(cfg::tokenize("do patrol"), ctx(3));
    task.positive.emplace_back(cfg::tokenize("do strike"), ctx(5));
    task.positive.emplace_back(cfg::tokenize("do observe"), ctx(1));
    task.negative.emplace_back(cfg::tokenize("do strike"), ctx(3));
    task.negative.emplace_back(cfg::tokenize("do patrol"), ctx(1));

    for (auto _ : state) {
        auto result = ilp::learn(task);
        benchmark::DoNotOptimize(result.found);
    }
    state.counters["space"] = static_cast<double>(task.space.candidates.size());
}
BENCHMARK(BM_LearnVsSpaceSize)->Arg(1)->Arg(2)->Arg(3);

void BM_LearnCavPolicy(benchmark::State& state) {
    auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(6);
    auto instances = scenarios::cav::sample_instances(n, rng);
    ilp::LearningTask task;
    task.initial = scenarios::cav::initial_asg();
    task.space = scenarios::cav::hypothesis_space();
    for (const auto& x : instances) {
        auto ex = scenarios::cav::to_symbolic(x);
        auto& bucket = ex.accepted ? task.positive : task.negative;
        bucket.emplace_back(ex.request, ex.context);
    }
    for (auto _ : state) {
        auto result = ilp::learn(task);
        benchmark::DoNotOptimize(result.found);
    }
    state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LearnCavPolicy)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Complexity();

// --- static analysis (agenp lint) -------------------------------------------

// Lint cost vs program size: the fact sweep scales the def/use table and
// the grounding estimator's universe.
void BM_LintProgram(benchmark::State& state) {
    auto n = state.range(0);
    std::string text;
    for (std::int64_t i = 0; i + 1 < n; ++i) {
        text += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "r(X,Y) :- e(X,Y).\nr(X,Z) :- r(X,Y), e(Y,Z).\nreach :- r(X,Y).\n:- not reach.\n";
    auto program = asp::parse_program(text);
    for (auto _ : state) {
        auto sink = analysis::lint_program(program);
        benchmark::DoNotOptimize(sink.size());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_LintProgram)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

// Whole-grammar lint of the CAV reference model: namespace resolution,
// per-production rule passes, and grammar-shape analysis. This is the
// per-hypothesis cost PAdaP pays when the static-lint gate is on.
void BM_LintAsg(benchmark::State& state) {
    auto model = scenarios::cav::reference_model();
    for (auto _ : state) {
        auto sink = analysis::lint_asg(model);
        benchmark::DoNotOptimize(sink.size());
    }
}
BENCHMARK(BM_LintAsg);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the benchmark run, emit a
// single machine-readable line with the wall time and the telemetry counters
// accumulated across every iteration (grep for BENCH_PERF_JSON).
int main(int argc, char** argv) {
    // AGENP_METRICS=off measures the telemetry overhead (compare against a
    // default run; the counters in the JSON line read zero when disabled).
    // Lock profiling is switched off together with metrics so the off run
    // is a true telemetry-free baseline.
    if (const char* env = std::getenv("AGENP_METRICS"); env && std::string_view(env) == "off") {
        obs::set_metrics_enabled(false);
        obs::set_lock_profiling_enabled(false);
    }
    auto start_ns = obs::monotonic_ns();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    double wall_s = static_cast<double>(obs::monotonic_ns() - start_ns) / 1e9;
    std::printf("BENCH_PERF_JSON: {\"wall_s\":%.3f,\"metrics\":%s}\n", wall_s,
                obs::metrics().render_json().c_str());
    // One-shot lint of the CAV reference model: the latency a single
    // PAdaP static-lint gate adds, plus the finding counts (grep for
    // BENCH_LINT_JSON).
    {
        auto model = agenp::scenarios::cav::reference_model();
        auto lint_start_ns = agenp::obs::monotonic_ns();
        auto sink = agenp::analysis::lint_asg(model);
        double lint_us = static_cast<double>(agenp::obs::monotonic_ns() - lint_start_ns) / 1e3;
        std::printf(
            "BENCH_LINT_JSON: {\"model\":\"cav_reference\",\"lint_us\":%.1f,"
            "\"diagnostics\":%zu,\"errors\":%zu,\"warnings\":%zu}\n",
            lint_us, sink.size(), sink.count(agenp::analysis::Severity::Error),
            sink.count(agenp::analysis::Severity::Warning));
    }
    return 0;
}
