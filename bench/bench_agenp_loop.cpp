// Experiment E11 (Figure 2): the full AGENP closed loop on a coalition of
// three AMSs.
//
//   PBMS spec -> PReP generates policies -> PDP/PEP serve requests ->
//   monitor gathers feedback -> PAdaP relearns -> PCP validates ->
//   repositories update -> learned model is shared coalition-wide.
//
// Reported: per-phase decision accuracy of each member, adaptation events,
// and the effect of sharing (members that never trained reach the trained
// member's accuracy).

#include <cstdio>

#include "agenp/coalition.hpp"
#include "obs/metrics.hpp"
#include "scenarios/cav/cav.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace cav = scenarios::cav;

namespace {

double measure_accuracy(framework::AutonomousManagedSystem& ams, util::Rng& rng, int n,
                        cav::Environment env) {
    std::size_t correct = 0;
    for (int i = 0; i < n; ++i) {
        cav::Instance x;
        x.task = static_cast<std::size_t>(rng.uniform(0, 4));
        x.env = env;
        bool truth = cav::ground_truth(x);
        auto [permitted, index] = ams.handle_request(cav::request_tokens(x));
        (void)index;
        if (permitted == truth) ++correct;
    }
    return static_cast<double>(correct) / n;
}

}  // namespace

int main() {
    util::Rng rng(777);
    cav::Environment env{.vehicle_loa = 3, .region_limit = 4, .weather = 2 /*fog*/};
    auto context_source = [env] { return cav::context_program(env); };

    framework::AutonomousManagedSystem alpha("alpha", cav::initial_asg(), cav::hypothesis_space());
    framework::AutonomousManagedSystem bravo("bravo", cav::initial_asg(), cav::hypothesis_space());
    framework::AutonomousManagedSystem charlie("charlie", cav::initial_asg(),
                                               cav::hypothesis_space());
    for (auto* ams : {&alpha, &bravo, &charlie}) ams->pip().add_source("env", context_source);

    framework::Coalition coalition;
    coalition.add_member(&alpha);
    coalition.add_member(&bravo);
    coalition.add_member(&charlie);

    std::printf("E11 - AGENP closed loop over a 3-member coalition (CAV domain)\n\n");
    util::Table table({"phase", "alpha", "bravo", "charlie", "event"});

    // Phase 0: initial (unconstrained) GPMs.
    table.add("0 initial", measure_accuracy(alpha, rng, 60, env),
              measure_accuracy(bravo, rng, 60, env), measure_accuracy(charlie, rng, 60, env),
              "no semantics yet");

    // Phase 1: alpha gathers supervised experience across varied contexts
    // (variety is what lets the learner generalize).
    util::Rng exp_rng(778);
    for (int i = 0; i < 70; ++i) {
        auto x = cav::sample_instance(exp_rng);
        alpha.pip().remove_source("env");
        auto env_i = x.env;
        alpha.pip().add_source("env", [env_i] { return cav::context_program(env_i); });
        auto [permitted, index] = alpha.handle_request(cav::request_tokens(x));
        (void)permitted;
        (void)alpha.give_feedback(index, x.accepted);
    }
    alpha.pip().remove_source("env");
    alpha.pip().add_source("env", context_source);
    auto outcome = alpha.adapt();
    table.add("1 alpha adapts", measure_accuracy(alpha, rng, 60, env),
              measure_accuracy(bravo, rng, 60, env), measure_accuracy(charlie, rng, 60, env),
              outcome.adapted ? "PAdaP adopted v" + std::to_string(outcome.new_version)
                              : "adaptation failed: " + outcome.reason);

    // Phase 2: share alpha's model through the wiki.
    coalition.publish(alpha);
    std::size_t adopted = coalition.distribute_latest();
    table.add("2 share", measure_accuracy(alpha, rng, 60, env),
              measure_accuracy(bravo, rng, 60, env), measure_accuracy(charlie, rng, 60, env),
              std::to_string(adopted) + " member(s) adopted the shared model");

    std::printf("%s\n", table.render().c_str());

    if (outcome.adapted) {
        std::printf("alpha's learned GPM:\n%s\n",
                    outcome.learn_result.hypothesis_to_string().c_str());
    }

    // PReP materialization under the operating context.
    auto report = alpha.refresh_policies();
    std::printf("PReP generated %zu concrete policies under the fog context:\n", report.generated);
    for (const auto& p : alpha.policies().all()) {
        std::printf("  %s\n", cfg::detokenize(p.policy).c_str());
    }

    // Machine-readable telemetry for the whole closed-loop run.
    std::printf("\nBENCH_AGENP_LOOP_JSON: %s\n", obs::metrics().render_json().c_str());
    return 0;
}
