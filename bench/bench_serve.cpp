// E14: serving-layer throughput and latency (DESIGN.md section 8).
//
// Closed-loop load generation against the decision service on the demo
// serving domain, sweeping worker thread counts with the decision cache on
// and off — in-process (`"transport":"inproc"`) and over a loopback TCP
// connection to an AmsRouter behind a TcpServer (`"transport":"tcp"`), so
// the wire + event-loop overhead of `agenp serve --listen` is measured
// against the same workload. The lock-contention profiler is reset before
// each configuration, so every row carries per-lock wait statistics for
// the three serving-path hot locks (symbol.intern, srv.cache_shard,
// srv.model). Emits one machine-readable line:
//
//   BENCH_SERVE_JSON {"rows":[{"transport":..,"threads":..,"cache":..,
//                              "memo":..,"throughput_rps":..,"p50_us":..,
//                              "p95_us":..,"p99_us":..,"hit_rate":..,
//                              "locks":{...}},...],
//                     "exporter":{"baseline_rps":..,"scraped_rps":..,
//                                 "overhead_pct":..,"scrapes":..},
//                     "profiler":{"hz":..,"baseline_rps":..,"profiled_rps":..,
//                                 "overhead_pct":..,"samples":..,"dropped":..,
//                                 "stacks_nonempty":..},
//                     "restart":{"cold":{...},"warm":{...},
//                                "entries_restored":..,"warm_ge_10x_cold":..},
//                     "memo":{"off_rps":..,"on_rps":..,"speedup":..,
//                             "hits":..,"misses":..,"sat_hits":..,
//                             "gate_fallbacks":..},
//                     "cache_speedup":..,"smoke":..}
//
// The full line is also written to bench/results/BENCH_SERVE.json (repo
// root relative; `--out PATH` overrides, `--no-out` suppresses) so runs
// leave a comparable artifact behind.
//
// `cache_speedup` compares cache on vs off at the same thread count on the
// repeated-request in-process workload; the CI smoke (`--smoke`) asserts
// the line parses, the sweep ran, both transports are present, and the
// per-lock wait stats are present. The `exporter` row replays the top
// cache-on TCP configuration with a /metrics listener being scraped
// concurrently; the exposition path budget is <3% throughput overhead
// at a 1 s scrape interval (CI checks the row exists and scrapes ran —
// the numeric bound is advisory, shared-runner noise exceeds it).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export/http.hpp"
#include "obs/lockprof.hpp"
#include "obs/prof.hpp"
#include "srv/export.hpp"
#include "srv/loadgen.hpp"
#include "srv/router.hpp"
#include "srv/transport.hpp"
#include "store/store.hpp"

using namespace agenp;

namespace {

struct Row {
    const char* transport = "inproc";
    std::size_t threads = 0;
    bool cache = false;
    bool memo = true;  // grounding memo (asg/memo.hpp) on the miss path
    srv::LoadgenReport report;
    std::vector<obs::LockStatsSnapshot> locks;
    asg::MemoStats memo_stats;
};

Row run_config(std::size_t threads, bool cache, bool memo, std::size_t requests_per_client,
               std::size_t distinct) {
    auto ams = srv::make_demo_ams(distinct);
    srv::ServiceOptions options;
    options.threads = threads;
    options.use_cache = cache;
    options.use_memo = memo;
    srv::DecisionService service(ams, options);

    srv::LoadgenOptions load;
    load.clients = threads;  // closed loop: one client per worker
    load.requests_per_client = requests_per_client;
    Row row;
    row.threads = threads;
    row.cache = cache;
    row.memo = memo;
    // Attribute contention to this configuration only: the run_loadgen call
    // is the only window where the profiled locks see multi-threaded load.
    obs::locks().reset();
    row.report = srv::run_loadgen(service, srv::demo_workload(distinct), load);
    row.locks = obs::locks().snapshot();
    row.memo_stats = service.snapshot_stats().memo;
    return row;
}

// Same workload through the full serving stack: loopback TCP into a
// TcpServer fronting a 1-replica AmsRouter. The latency rows include the
// wire round trip and the event loop's read/dispatch/write path.
Row run_config_tcp(std::size_t threads, bool cache, std::size_t requests_per_client,
                   std::size_t distinct) {
    srv::RouterOptions options;
    options.replicas = 1;
    options.service.threads = threads;
    options.service.use_cache = cache;
    srv::AmsRouter router(
        [distinct] {
            return std::make_unique<framework::AutonomousManagedSystem>(
                srv::make_demo_ams(distinct));
        },
        options);
    srv::TcpServer server(router, srv::TransportOptions{});

    srv::LoadgenOptions load;
    load.clients = threads;
    load.requests_per_client = requests_per_client;
    Row row;
    row.transport = "tcp";
    row.threads = threads;
    row.cache = cache;
    obs::locks().reset();
    row.report = srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct),
                                      load);
    row.locks = obs::locks().snapshot();
    server.shutdown();
    return row;
}

// Exporter overhead: the same loopback-TCP workload with a /metrics HTTP
// listener attached to the router and a scraper pulling the full
// Prometheus exposition every `scrape_interval`. Compared against an
// unscraped baseline at the same configuration.
struct ExporterRow {
    double baseline_rps = 0;
    double scraped_rps = 0;
    double overhead_pct = 0;
    std::size_t scrapes = 0;
};

ExporterRow run_exporter_overhead(std::size_t threads, std::size_t requests_per_client,
                                  std::size_t distinct,
                                  std::chrono::milliseconds scrape_interval) {
    srv::RouterOptions options;
    options.replicas = 1;
    options.service.threads = threads;
    options.service.use_cache = true;
    srv::AmsRouter router(
        [distinct] {
            return std::make_unique<framework::AutonomousManagedSystem>(
                srv::make_demo_ams(distinct));
        },
        options);
    srv::TcpServer server(router, srv::TransportOptions{});

    obs::HttpServerOptions http_options;
    http_options.port = 0;
    obs::HttpServer metrics_http(http_options, [&router](const obs::HttpRequest&) {
        obs::HttpResponse response;
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = srv::serve_exposition_prometheus(router, false);
        return response;
    });

    srv::LoadgenOptions load;
    load.clients = threads;
    load.requests_per_client = requests_per_client;

    ExporterRow row;
    // Warm the decision cache first so the baseline and scraped runs see
    // the same hit rate — otherwise the comparison measures cache warm-up,
    // not exporter cost.
    srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load);
    // Baseline: listener bound but never scraped.
    row.baseline_rps =
        srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load)
            .throughput_rps;

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> scrapes{0};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_acquire)) {
            if (obs::http_get("127.0.0.1", metrics_http.port(), "/metrics").has_value()) {
                scrapes.fetch_add(1, std::memory_order_relaxed);
            }
            std::this_thread::sleep_for(scrape_interval);
        }
    });
    row.scraped_rps =
        srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load)
            .throughput_rps;
    stop.store(true, std::memory_order_release);
    scraper.join();
    row.scrapes = scrapes.load();
    row.overhead_pct = row.baseline_rps > 0
                           ? (row.baseline_rps - row.scraped_rps) / row.baseline_rps * 100.0
                           : 0;
    metrics_http.shutdown();
    server.shutdown();
    return row;
}

// Sampling-profiler overhead: the same warm-cache loopback-TCP workload
// with the SIGPROF profiler armed at `hz`, against an unprofiled baseline.
// The budget is <5% throughput cost at 99 Hz; like the exporter budget it
// is advisory in CI (shared-runner noise exceeds it), but the row proves
// the profiler samples real serving work without stalling it.
struct ProfilerRow {
    std::size_t hz = 0;
    double baseline_rps = 0;
    double profiled_rps = 0;
    double overhead_pct = 0;
    std::size_t samples = 0;
    std::size_t dropped = 0;
    bool stacks_nonempty = false;
};

ProfilerRow run_profiler_overhead(std::size_t threads, std::size_t requests_per_client,
                                  std::size_t distinct, std::size_t hz) {
    srv::RouterOptions options;
    options.replicas = 1;
    options.service.threads = threads;
    options.service.use_cache = true;
    srv::AmsRouter router(
        [distinct] {
            return std::make_unique<framework::AutonomousManagedSystem>(
                srv::make_demo_ams(distinct));
        },
        options);
    srv::TcpServer server(router, srv::TransportOptions{});

    srv::LoadgenOptions load;
    load.clients = threads;
    load.requests_per_client = requests_per_client;

    ProfilerRow row;
    row.hz = hz;
    // Warm the cache so both runs measure steady-state serving, not solves.
    srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load);
    row.baseline_rps =
        srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load)
            .throughput_rps;

    obs::ProfilerOptions prof_options;
    prof_options.hz = hz;
    auto& profiler = obs::CpuProfiler::instance();
    if (profiler.start(prof_options)) {
        row.profiled_rps =
            srv::run_loadgen_tcp("127.0.0.1", server.port(), srv::demo_workload(distinct), load)
                .throughput_rps;
        obs::ProfileReport report = profiler.stop();
        row.samples = report.samples;
        row.dropped = report.dropped;
        row.stacks_nonempty = !report.stacks.empty();
    }
    row.overhead_pct = row.baseline_rps > 0
                           ? (row.baseline_rps - row.profiled_rps) / row.baseline_rps * 100.0
                           : 0;
    server.shutdown();
    return row;
}

// Cold vs warm restart: how much of the first post-restart traffic window
// is served from a decision cache restored via `--state-dir` (src/store).
// The "first-minute window" is made deterministic — one sequential pass
// over every distinct demo request, the worst case for a cold cache (all
// misses, each paying a full membership solve) and the best case for a
// restored one — so the hit-rate comparison is exact rather than a race
// against the wall clock. A steady-state run follows; its p95 is the
// latency floor both sides converge to, and time_to_steady_ms measures
// how long each side took to get there from its first request.
struct RestartSide {
    double window_ms = 0;          // duration of the first-pass window
    double window_hit_rate = 0;    // cache hit rate inside that window
    double steady_p95_us = 0;      // p95 once the cache is warm
    double time_to_steady_ms = 0;  // first request -> end of steady run
};

struct RestartRow {
    RestartSide cold;
    RestartSide warm;
    std::size_t entries_restored = 0;
    bool warm_ge_10x_cold = false;
};

RestartSide measure_restart_side(srv::AmsRouter& router,
                                 const std::vector<cfg::TokenString>& workload,
                                 std::size_t steady_passes) {
    RestartSide side;
    auto ms_between = [](auto from, auto to) {
        return std::chrono::duration<double, std::milli>(to - from).count();
    };
    auto start = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (const auto& request : workload) {
        if (router.submit(request, {}).get().cache_hit) ++hits;
    }
    side.window_ms = ms_between(start, std::chrono::steady_clock::now());
    side.window_hit_rate =
        workload.empty() ? 0 : static_cast<double>(hits) / static_cast<double>(workload.size());

    std::vector<double> latencies;
    latencies.reserve(steady_passes * workload.size());
    for (std::size_t pass = 0; pass < steady_passes; ++pass) {
        for (const auto& request : workload) {
            latencies.push_back(
                static_cast<double>(router.submit(request, {}).get().latency_us));
        }
    }
    side.time_to_steady_ms = ms_between(start, std::chrono::steady_clock::now());
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        side.steady_p95_us =
            latencies[std::min(latencies.size() - 1, latencies.size() * 95 / 100)];
    }
    return side;
}

RestartRow run_restart(std::size_t distinct, std::size_t steady_passes) {
    RestartRow row;
    char dir_template[] = "/tmp/agenp_bench_store.XXXXXX";
    char* dir = ::mkdtemp(dir_template);
    if (dir == nullptr) {
        std::fprintf(stderr, "restart bench: mkdtemp failed, skipping\n");
        return row;
    }
    const std::string state_dir = dir;

    auto factory = [distinct] {
        return std::make_unique<framework::AutonomousManagedSystem>(
            srv::make_demo_ams(distinct));
    };
    srv::RouterOptions options;
    options.replicas = 1;
    options.service.threads = 2;
    options.service.use_cache = true;
    const auto workload = srv::demo_workload(distinct);

    {
        // First life of the process: take traffic until the cache holds
        // every distinct request, snapshot, and tear everything down —
        // the bench stand-in for `agenp serve --state-dir` draining.
        srv::AmsRouter router(factory, options);
        for (const auto& request : workload) router.submit(request, {}).get();
        store::StateStore store({state_dir});
        std::string error;
        if (!store.save_snapshot(router.export_state(), &error)) {
            std::fprintf(stderr, "restart bench: snapshot failed: %s\n", error.c_str());
        }
    }
    {
        // Cold restart: same binary, no persisted state.
        srv::AmsRouter router(factory, options);
        row.cold = measure_restart_side(router, workload, steady_passes);
    }
    {
        // Warm restart: restore the snapshot before the first request.
        srv::AmsRouter router(factory, options);
        store::StateStore store({state_dir});
        store::RestoreResult restored = store.restore();
        if (restored.snapshot_loaded) {
            row.entries_restored = router.restore_state(restored.data).entries_restored;
        }
        row.warm = measure_restart_side(router, workload, steady_passes);
    }

    row.warm_ge_10x_cold = row.warm.window_hit_rate > 0 &&
                           row.warm.window_hit_rate >= 10.0 * row.cold.window_hit_rate;
    std::remove((state_dir + "/snapshot.agenp").c_str());
    std::remove((state_dir + "/wal.agenp").c_str());
    ::rmdir(state_dir.c_str());
    return row;
}

// The serving-path hot locks the ISSUE asks bench_serve to report on.
constexpr const char* kHotLocks[] = {"symbol.intern", "srv.cache_shard", "srv.model"};

const obs::LockStatsSnapshot* find_lock(const Row& row, std::string_view name) {
    for (const auto& snap : row.locks) {
        if (snap.name == name) return &snap;
    }
    return nullptr;
}

std::string locks_json(const Row& row) {
    std::string out = "{";
    bool first = true;
    for (const char* name : kHotLocks) {
        const obs::LockStatsSnapshot* snap = find_lock(row, name);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s\"%s\":{\"acquisitions\":%llu,\"contentions\":%llu,"
                      "\"wait_us_total\":%llu,\"wait_us_p99\":%.1f}",
                      first ? "" : ",", name,
                      static_cast<unsigned long long>(snap ? snap->acquisitions : 0),
                      static_cast<unsigned long long>(snap ? snap->contentions : 0),
                      static_cast<unsigned long long>(snap ? snap->wait_us.sum : 0),
                      snap ? snap->wait_us.quantile(0.99) : 0.0);
        out += buf;
        first = false;
    }
    out += "}";
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    // Benchmarks measure the production lock fast path; the debug-build
    // lock-order checker adds a thread-local scan per ranked acquisition
    // (it is already off under NDEBUG, i.e. in RelWithDebInfo builds).
    obs::set_lock_order_checking(false);
    bool smoke = false;
#ifdef AGENP_SOURCE_DIR
    std::string out_path = AGENP_SOURCE_DIR "/bench/results/BENCH_SERVE.json";
#else
    std::string out_path;
#endif
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") smoke = true;
        if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
        if (arg == "--no-out") out_path.clear();
    }

    const std::size_t distinct = 8;
    const std::size_t requests_per_client = smoke ? 50 : 200;
    std::vector<std::size_t> thread_counts = smoke ? std::vector<std::size_t>{2}
                                                   : std::vector<std::size_t>{1, 2, 4, 8};

    std::printf("serving benchmark: %zu distinct requests, %zu per client, closed loop\n",
                distinct, requests_per_client);
    std::printf("%8s %8s %6s %5s %14s %10s %10s %9s\n", "transp", "threads", "cache", "memo",
                "throughput", "p50_us", "p99_us", "hit_rate");

    auto print_row = [](const Row& row) {
        std::printf("%8s %8zu %6s %5s %12.1f/s %10.1f %10.1f %9.3f\n", row.transport, row.threads,
                    row.cache ? "on" : "off", row.memo ? "on" : "off", row.report.throughput_rps,
                    row.report.p50_us, row.report.p99_us, row.report.hit_rate);
    };

    std::vector<Row> rows;
    for (bool cache : {false, true}) {
        for (std::size_t threads : thread_counts) {
            Row row = run_config(threads, cache, /*memo=*/true, requests_per_client, distinct);
            print_row(row);
            rows.push_back(std::move(row));
        }
    }
    // Loopback-TCP rows: same sweep through the wire + event loop. One
    // cache-on and one cache-off row per thread count is enough to place
    // the transport overhead against the in-process rows above.
    for (bool cache : {false, true}) {
        for (std::size_t threads : thread_counts) {
            Row row = run_config_tcp(threads, cache, requests_per_client, distinct);
            print_row(row);
            rows.push_back(std::move(row));
        }
    }

    // Where do threads stall? Contention on the serving-path hot locks,
    // per configuration (the cache-off rows are the interesting ones: with
    // no decision cache every request interns symbols and hits the model
    // lock, so these rows show which lock limits scaling).
    std::printf("\nlock contention (per config):\n");
    std::printf("%8s %8s %6s  %-16s %12s %12s %12s %10s\n", "transp", "threads", "cache", "lock",
                "acquires", "contended", "wait_us", "p99_us");
    for (const auto& row : rows) {
        for (const char* name : kHotLocks) {
            const obs::LockStatsSnapshot* snap = find_lock(row, name);
            if (!snap || snap->acquisitions == 0) continue;
            std::printf("%8s %8zu %6s  %-16s %12llu %12llu %12llu %10.1f\n", row.transport,
                        row.threads, row.cache ? "on" : "off", name,
                        static_cast<unsigned long long>(snap->acquisitions),
                        static_cast<unsigned long long>(snap->contentions),
                        static_cast<unsigned long long>(snap->wait_us.sum),
                        snap->wait_us.quantile(0.99));
        }
    }

    // Cache speedup at the highest common thread count (in-process rows,
    // so the figure isolates the cache rather than the wire).
    double on_rps = 0, off_rps = 0;
    std::size_t top = thread_counts.back();
    for (const auto& row : rows) {
        if (row.threads != top || std::string_view(row.transport) != "inproc") continue;
        (row.cache ? on_rps : off_rps) = row.report.throughput_rps;
    }
    double speedup = off_rps > 0 ? on_rps / off_rps : 0;
    std::printf("cache speedup at %zu threads: %.1fx\n", top, speedup);

    // Grounding-memo speedup on the pure miss path: cache OFF so every
    // request grounds and solves, memo off vs on, back to back at the top
    // thread count so run-to-run noise hits both sides equally. This is
    // the headline figure for the memoized G[PT] grounding + arena work
    // (docs/PERFORMANCE.md): memo-off pays the full instantiate + ground +
    // solve per request; memo-on recalls grounded fragments and decisive
    // verdicts per (parse tree, context, model version).
    Row memo_off = run_config(top, /*cache=*/false, /*memo=*/false, requests_per_client, distinct);
    print_row(memo_off);
    Row memo_on = run_config(top, /*cache=*/false, /*memo=*/true, requests_per_client, distinct);
    print_row(memo_on);
    double memo_off_rps = memo_off.report.throughput_rps;
    double memo_on_rps = memo_on.report.throughput_rps;
    double memo_speedup = memo_off_rps > 0 ? memo_on_rps / memo_off_rps : 0;
    std::printf("memo speedup at %zu threads (cache off): %.1fx (%.1f/s -> %.1f/s,"
                " %llu frag hits, %llu verdict hits)\n",
                top, memo_speedup, memo_off_rps, memo_on_rps,
                static_cast<unsigned long long>(memo_on.memo_stats.hits),
                static_cast<unsigned long long>(memo_on.memo_stats.sat_hits));
    const asg::MemoStats ms = memo_on.memo_stats;
    rows.push_back(std::move(memo_off));
    rows.push_back(std::move(memo_on));

    // Exporter overhead at the top thread count, cache on. Smoke runs are
    // far shorter than the production 1 s scrape interval, so scrape more
    // often there to make sure the path is actually exercised.
    ExporterRow exporter = run_exporter_overhead(
        top, requests_per_client, distinct,
        smoke ? std::chrono::milliseconds(10) : std::chrono::milliseconds(1000));
    std::printf("exporter overhead at %zu threads: %.1f/s -> %.1f/s (%.1f%%, %zu scrapes,"
                " budget <3%% at 1s interval)\n",
                top, exporter.baseline_rps, exporter.scraped_rps, exporter.overhead_pct,
                exporter.scrapes);

    // Sampling-profiler overhead at the top thread count, cache on, 99 Hz
    // (the conventional always-on rate; advisory budget <5%).
    ProfilerRow profiler = run_profiler_overhead(top, requests_per_client, distinct, 99);
    std::printf("profiler overhead at %zu threads, %zu Hz: %.1f/s -> %.1f/s (%.1f%%,"
                " %zu samples, %zu dropped, budget <5%%)\n",
                top, profiler.hz, profiler.baseline_rps, profiler.profiled_rps,
                profiler.overhead_pct, profiler.samples, profiler.dropped);

    // Warm-restart value: first-window hit rate cold vs restored from a
    // `--state-dir` snapshot (src/store). The acceptance bound is warm >=
    // 10x cold — trivially met on the deterministic window, where cold is
    // exactly 0 and warm should be 1.0 when every entry restored.
    RestartRow restart = run_restart(distinct, smoke ? 3 : 10);
    std::printf("restart: cold first-window hit_rate %.3f (%.1f ms), warm %.3f (%.1f ms),"
                " %zu entries restored\n",
                restart.cold.window_hit_rate, restart.cold.window_ms,
                restart.warm.window_hit_rate, restart.warm.window_ms,
                restart.entries_restored);
    std::printf("restart: time-to-steady %.1f ms cold vs %.1f ms warm, steady p95 %.1f/%.1f us,"
                " warm>=10x cold: %s\n",
                restart.cold.time_to_steady_ms, restart.warm.time_to_steady_ms,
                restart.cold.steady_p95_us, restart.warm.steady_p95_us,
                restart.warm_ge_10x_cold ? "yes" : "NO");

    std::string json = "{\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"transport\":\"%s\",\"threads\":%zu,\"cache\":%s,\"memo\":%s,"
                      "\"throughput_rps\":%.1f,\"p50_us\":%.1f,"
                      "\"p95_us\":%.1f,\"p99_us\":%.1f,\"hit_rate\":%.3f,\"locks\":",
                      i == 0 ? "" : ",", row.transport, row.threads, row.cache ? "true" : "false",
                      row.memo ? "true" : "false", row.report.throughput_rps, row.report.p50_us,
                      row.report.p95_us, row.report.p99_us, row.report.hit_rate);
        json += buf;
        json += locks_json(row);
        json += "}";
    }
    auto restart_side_json = [](const RestartSide& side) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "{\"window_ms\":%.1f,\"hit_rate\":%.3f,\"steady_p95_us\":%.1f,"
                      "\"time_to_steady_ms\":%.1f}",
                      side.window_ms, side.window_hit_rate, side.steady_p95_us,
                      side.time_to_steady_ms);
        return std::string(buf);
    };
    char tail[1024];
    std::snprintf(tail, sizeof(tail),
                  "],\"exporter\":{\"baseline_rps\":%.1f,\"scraped_rps\":%.1f,"
                  "\"overhead_pct\":%.1f,\"scrapes\":%zu},"
                  "\"profiler\":{\"hz\":%zu,\"baseline_rps\":%.1f,\"profiled_rps\":%.1f,"
                  "\"overhead_pct\":%.1f,\"samples\":%zu,\"dropped\":%zu,"
                  "\"stacks_nonempty\":%s},"
                  "\"restart\":{\"cold\":%s,\"warm\":%s,\"entries_restored\":%zu,"
                  "\"warm_ge_10x_cold\":%s},"
                  "\"memo\":{\"off_rps\":%.1f,\"on_rps\":%.1f,\"speedup\":%.1f,"
                  "\"hits\":%llu,\"misses\":%llu,\"sat_hits\":%llu,\"gate_fallbacks\":%llu},"
                  "\"cache_speedup\":%.1f,\"smoke\":%s}",
                  exporter.baseline_rps, exporter.scraped_rps, exporter.overhead_pct,
                  exporter.scrapes, profiler.hz, profiler.baseline_rps, profiler.profiled_rps,
                  profiler.overhead_pct, profiler.samples, profiler.dropped,
                  profiler.stacks_nonempty ? "true" : "false",
                  restart_side_json(restart.cold).c_str(),
                  restart_side_json(restart.warm).c_str(), restart.entries_restored,
                  restart.warm_ge_10x_cold ? "true" : "false", memo_off_rps, memo_on_rps,
                  memo_speedup, static_cast<unsigned long long>(ms.hits),
                  static_cast<unsigned long long>(ms.misses),
                  static_cast<unsigned long long>(ms.sat_hits),
                  static_cast<unsigned long long>(ms.gate_fallbacks), speedup,
                  smoke ? "true" : "false");
    json += tail;
    std::printf("BENCH_SERVE_JSON %s\n", json.c_str());

    // Persist the full result line for trend tracking (bench/results/ in
    // the repo, uploaded as a CI artifact). `--out PATH` overrides,
    // `--no-out` suppresses.
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (out) {
            out << json << "\n";
            std::printf("results written to %s\n", out_path.c_str());
        } else {
            std::fprintf(stderr, "could not write %s (skipping)\n", out_path.c_str());
        }
    }
    return 0;
}
