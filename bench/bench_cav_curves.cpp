// Experiment E4 (Section IV.A claim, [25]): "the ASG based GPM outperforms
// shallow Machine Learning techniques when learning complex policy models,
// as fewer examples are required to achieve a greater accuracy."
//
// Learning curves on the CAV task-acceptance policy: accuracy vs number of
// training examples, symbolic ASG learner vs four statistical baselines,
// averaged over seeds. The expected *shape*: the symbolic curve saturates
// at ~1.0 with tens of examples; the statistical baselines approach it only
// with hundreds.

#include <cstdio>
#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "scenarios/cav/cav.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace cav = scenarios::cav;

int main() {
    const std::vector<std::size_t> kTrainSizes = {5, 10, 20, 40, 80, 160, 320};
    const int kTrials = 5;
    const std::size_t kTestSize = 400;

    util::Table table({"n", "symbolic", "tree", "logreg", "nbayes", "knn"});

    for (std::size_t n : kTrainSizes) {
        double sum_sym = 0, sum_tree = 0, sum_lr = 0, sum_nb = 0, sum_knn = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            util::Rng rng(1000 + static_cast<std::uint64_t>(trial));
            auto train = cav::sample_instances(n, rng);
            auto test = cav::sample_instances(kTestSize, rng);
            auto train_tab = cav::to_dataset(train);
            auto test_tab = cav::to_dataset(test);

            // Symbolic.
            std::vector<ilp::LabelledExample> symbolic;
            for (const auto& x : train) symbolic.push_back(cav::to_symbolic(x));
            ilp::SymbolicPolicyClassifier clf(cav::initial_asg(), cav::hypothesis_space());
            clf.fit(symbolic);
            std::size_t correct = 0;
            for (const auto& x : test) {
                correct +=
                    clf.predict(cav::request_tokens(x), cav::context_program(x.env)) == x.accepted;
            }
            sum_sym += static_cast<double>(correct) / static_cast<double>(test.size());

            // Baselines.
            auto score = [&](ml::BinaryClassifier& model) {
                model.fit(train_tab);
                return ml::evaluate(model, test_tab).accuracy();
            };
            ml::DecisionTree tree;
            ml::LogisticRegression lr;
            ml::NaiveBayes nb;
            ml::Knn knn;
            sum_tree += score(tree);
            sum_lr += score(lr);
            sum_nb += score(nb);
            sum_knn += score(knn);
        }
        table.add(n, sum_sym / kTrials, sum_tree / kTrials, sum_lr / kTrials, sum_nb / kTrials,
                  sum_knn / kTrials);
    }

    std::printf(
        "E4 - CAV policy learning curves (accuracy on %zu held-out requests, mean of %d seeds)\n"
        "Paper claim: symbolic GPM reaches higher accuracy with fewer examples than shallow ML.\n\n"
        "%s\n",
        static_cast<std::size_t>(400), kTrials, table.render().c_str());

    // Capability sharing (Section IV.A, second half): lower-LOA CAVs borrow
    // capabilities from nearby higher-LOA peers subject to temporal/spatial
    // constraints.
    util::Table sharing({"n", "symbolic accuracy", "rules"});
    for (std::size_t n : {10, 20, 40, 80}) {
        double sum = 0;
        std::size_t rules = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            util::Rng rng(2000 + static_cast<std::uint64_t>(trial));
            auto train = cav::sample_sharing_instances(n, rng);
            auto test = cav::sample_sharing_instances(200, rng);
            std::vector<ilp::LabelledExample> examples;
            for (const auto& x : train) examples.push_back(cav::to_symbolic(x));
            ilp::SymbolicPolicyClassifier clf(cav::sharing_asg(), cav::sharing_space());
            if (clf.fit(examples)) rules = clf.last_result().hypothesis.size();
            std::size_t correct = 0;
            for (const auto& x : test) {
                correct += clf.predict(cav::sharing_tokens(x),
                                       cav::sharing_context_program(x.context)) == x.allowed;
            }
            sum += static_cast<double>(correct) / static_cast<double>(test.size());
        }
        sharing.add(n, sum / kTrials, rules);
    }
    std::printf("E4b - capability-sharing policy (borrow from higher-LOA peers):\n\n%s\n",
                sharing.render().c_str());
    return 0;
}
