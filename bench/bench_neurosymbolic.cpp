// Experiment E13 (Section V.C closing vision): statistical perception
// feeding symbolic policies.
//
// The weather fact in the CAV context is produced by a statistical
// classifier over raw sensor vectors instead of an oracle; the symbolic
// GPM is unchanged. Reported: perception accuracy and end-to-end policy
// decision accuracy as sensor noise grows — the symbolic layer degrades
// gracefully (only decisions that actually depend on the misread weather
// flip).

#include <cstdio>

#include "scenarios/cav/perception.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace cav = scenarios::cav;

int main() {
    auto policy = cav::reference_model();

    util::Table table(
        {"sensor noise", "perception acc", "policy acc (perceived)", "policy acc (oracle)"});
    for (double noise : {0.5, 1.0, 2.0, 3.0}) {
        util::Rng rng(6000 + static_cast<std::uint64_t>(noise * 10));
        cav::WeatherPerception perception;
        perception.fit(120, rng, noise);
        double perception_acc = perception.holdout_accuracy(120, rng, noise);

        std::size_t correct_perceived = 0, correct_oracle = 0;
        const int kTrials = 400;
        for (int i = 0; i < kTrials; ++i) {
            auto x = cav::sample_instance(rng);
            auto reading = cav::sample_reading(x.env.weather, rng, noise);
            bool with_perception = asg::in_language(policy, cav::request_tokens(x),
                                                    perception.perceived_context(x.env, reading));
            bool with_oracle =
                asg::in_language(policy, cav::request_tokens(x), cav::context_program(x.env));
            correct_perceived += with_perception == x.accepted;
            correct_oracle += with_oracle == x.accepted;
        }
        table.add(noise, perception_acc,
                  static_cast<double>(correct_perceived) / kTrials,
                  static_cast<double>(correct_oracle) / kTrials);
    }

    std::printf(
        "E13 - neurosymbolic pipeline: statistical weather perception -> symbolic policy\n"
        "(the rule layer is unchanged; decision errors only appear where the misread\n"
        "weather is actually load-bearing for the decision)\n\n%s\n",
        table.render().c_str());
    return 0;
}
