// Experiment E5 (Section IV.B): logistical resupply over a campaign.
//
// Paper claims reproduced in shape:
//  - "at the start of any engagement ... training samples will be in short
//    supply. As time progresses ... the learning tasks should become easier
//    and more accurate as more training samples become available";
//  - risk appetite may shift mid-campaign ("options previously discounted
//    on grounds of risk may later become acceptable") — the context change
//    is absorbed without forgetting.

#include <cstdio>

#include "scenarios/resupply/resupply.hpp"
#include "util/table.hpp"

using namespace agenp;
namespace rs = scenarios::resupply;

int main() {
    rs::CampaignOptions options;
    options.missions = 10;
    options.plans_per_mission = 8;
    options.eval_per_mission = 80;
    options.risk_shift_at = 5;
    options.seed = 1234;

    auto outcomes = rs::run_campaign(options);

    util::Table table({"mission", "examples so far", "model found", "accuracy", "risk appetite"});
    for (const auto& o : outcomes) {
        table.add(o.mission, o.training_examples, o.model_found ? "yes" : "no", o.accuracy,
                  o.mission < options.risk_shift_at ? 1 : 3);
    }
    std::printf(
        "E5 - resupply campaign: decision accuracy per mission as experience accumulates\n"
        "(risk appetite shifts from 1 to 3 at mission %zu; contexts are per-mission)\n\n%s\n",
        options.risk_shift_at, table.render().c_str());

    // Reference: the hand-written model's accuracy (upper bound).
    util::Rng rng(4321);
    auto reference = rs::reference_model();
    std::size_t correct = 0;
    const std::size_t n = 300;
    for (std::size_t i = 0; i < n; ++i) {
        auto x = rs::sample_instance(rng);
        correct += asg::in_language(reference, rs::plan_tokens(x.plan),
                                    rs::context_program(x.context)) == x.acceptable;
    }
    std::printf("reference hand-written GPM accuracy on %zu random plans: %.3f\n",
                n, static_cast<double>(correct) / static_cast<double>(n));
    return 0;
}
