// Build identity for the /buildz endpoint: enough to tell *which* binary
// is serving traffic from nothing but the metrics port.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace agenp::obs {

// Single-line JSON object with git describe output (configure-time),
// compiler version, build type, C++ standard, and compiled-in feature
// flags (sanitizers, assertions). `extra` entries are appended as
// key -> raw JSON value pairs (the caller quotes string values), letting
// higher layers add fields obs cannot know (protocol version, replicas).
std::string build_info_json(
    const std::vector<std::pair<std::string, std::string>>& extra = {});

}  // namespace agenp::obs
