// Rolling time-window aggregation over the cumulative metrics registry
// (DESIGN.md section 7.5).
//
// Every instrument in MetricsRegistry is cumulative-since-process-start,
// which is the right exposition shape for Prometheus but useless for "what
// is the p95 over the last minute" on a server that has been up for a
// week. RollingWindow fixes that without touching the instruments: a
// ticker captures a full registry snapshot once per bucket interval into a
// fixed ring, and window(span) subtracts the bucket nearest `now - span`
// from a fresh snapshot. Counter deltas become windowed rates; histogram
// bucket-count deltas are themselves valid Histogram::Snapshots, so the
// existing quantile() math yields windowed p50/p95/p99 for free.
//
// The cumulative MetricsSnapshot shape is unchanged — windows are a read
// layer on top, not a new instrument kind.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::obs {

struct WindowOptions {
    std::chrono::milliseconds bucket{1000};
    // 301 one-second buckets cover the 5m window plus the partial bucket.
    std::size_t buckets = 301;
};

// The difference between a fresh registry snapshot and a historical
// bucket. Missing-in-base keys (instruments registered mid-window) count
// from zero; an instrument reset mid-window clamps to the live value
// instead of going negative.
struct WindowDelta {
    double seconds = 0.0;   // wall time actually covered by the delta
    bool complete = false;  // false while the ring lacks `span` of history
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    [[nodiscard]] std::uint64_t counter(std::string_view key) const;
    // Null when the histogram saw no observations in the window.
    [[nodiscard]] const Histogram::Snapshot* histogram(std::string_view key) const;
    // counter delta / covered seconds; 0 when the window is empty.
    [[nodiscard]] double rate(std::string_view key) const;
};

class RollingWindow {
public:
    explicit RollingWindow(const MetricsRegistry& registry, WindowOptions options = {});

    // Captures one bucket stamped with the monotonic clock. Call at the
    // bucket interval (WindowTicker does); extra calls just reduce bucket
    // granularity error.
    void tick();
    // Test hook: capture a bucket at an explicit fake timestamp.
    void tick_at(std::uint64_t now_ms);

    // Delta between a fresh snapshot taken now and the newest bucket at
    // least `span` old (or the oldest available, with complete=false).
    [[nodiscard]] WindowDelta window(std::chrono::seconds span) const;
    // Test hook: same, against a fake "now" timestamp.
    [[nodiscard]] WindowDelta window_at(std::chrono::seconds span, std::uint64_t now_ms) const;

    [[nodiscard]] std::size_t bucket_count() const;  // valid buckets currently held

private:
    struct Bucket {
        std::uint64_t at_ms = 0;
        MetricsSnapshot snapshot;
        bool valid = false;
    };

    [[nodiscard]] WindowDelta window_locked(std::chrono::seconds span,
                                            std::uint64_t now_ms) const REQUIRES(mu_);

    const MetricsRegistry& registry_;
    WindowOptions options_;
    mutable util::Mutex mu_;
    std::vector<Bucket> ring_ GUARDED_BY(mu_);
    std::size_t head_ GUARDED_BY(mu_) = 0;  // next slot to write
};

// Background thread that ticks a RollingWindow once per bucket interval
// and runs an optional extra callback (serve uses it to advance the cost
// table's frequency EWMA). Joined on destruction.
class WindowTicker {
public:
    explicit WindowTicker(RollingWindow& window, std::function<void()> on_tick = {});
    ~WindowTicker();
    WindowTicker(const WindowTicker&) = delete;
    WindowTicker& operator=(const WindowTicker&) = delete;

private:
    RollingWindow& window_;
    std::function<void()> on_tick_;
    std::chrono::milliseconds interval_;
    // stop_ is atomic so the ticker loop can poll it without the lock;
    // the store still happens under mu_ so a concurrent check-then-wait
    // in the loop cannot miss the wakeup.
    std::atomic<bool> stop_{false};
    util::Mutex mu_;
    util::CondVar cv_;
    std::thread thread_;
};

}  // namespace agenp::obs
