#include "obs/window.hpp"

#include <algorithm>

namespace agenp::obs {
namespace {

std::uint64_t monotonic_ms() { return monotonic_ns() / 1000000; }

// Element-wise histogram delta: live - base, clamped at zero so a reset
// instrument yields the live snapshot rather than wrapping.
Histogram::Snapshot delta_histogram(const Histogram::Snapshot& live,
                                    const Histogram::Snapshot& base) {
    if (live.count < base.count) return live;  // reset mid-window
    Histogram::Snapshot out;
    out.count = live.count - base.count;
    out.sum = live.sum >= base.sum ? live.sum - base.sum : 0;
    out.buckets.resize(live.buckets.size(), 0);
    for (std::size_t i = 0; i < live.buckets.size(); ++i) {
        std::uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
        out.buckets[i] = live.buckets[i] >= b ? live.buckets[i] - b : 0;
    }
    // min/max of just the window are unknowable from cumulative extremes;
    // derive bounds from the occupied delta buckets (bucket i covers
    // values with bit_width == i, i.e. [2^(i-1), 2^i)).
    bool seen = false;
    for (std::size_t i = 0; i < out.buckets.size(); ++i) {
        if (out.buckets[i] == 0) continue;
        if (!seen) out.min = i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
        out.max = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        seen = true;
    }
    return out;
}

}  // namespace

std::uint64_t WindowDelta::counter(std::string_view key) const {
    for (const auto& [name, value] : counters) {
        if (name == key) return value;
    }
    return 0;
}

const Histogram::Snapshot* WindowDelta::histogram(std::string_view key) const {
    for (const auto& [name, snap] : histograms) {
        if (name == key && snap.count > 0) return &snap;
    }
    return nullptr;
}

double WindowDelta::rate(std::string_view key) const {
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(counter(key)) / seconds;
}

RollingWindow::RollingWindow(const MetricsRegistry& registry, WindowOptions options)
    : registry_(registry), options_(options) {
    options_.buckets = std::max<std::size_t>(options_.buckets, 2);
    ring_.resize(options_.buckets);
}

void RollingWindow::tick() { tick_at(monotonic_ms()); }

void RollingWindow::tick_at(std::uint64_t now_ms) {
    MetricsSnapshot snapshot = registry_.snapshot();
    util::MutexLock lock(mu_);
    Bucket& bucket = ring_[head_];
    bucket.at_ms = now_ms;
    bucket.snapshot = std::move(snapshot);
    bucket.valid = true;
    head_ = (head_ + 1) % ring_.size();
}

WindowDelta RollingWindow::window(std::chrono::seconds span) const {
    return window_at(span, monotonic_ms());
}

WindowDelta RollingWindow::window_at(std::chrono::seconds span, std::uint64_t now_ms) const {
    util::MutexLock lock(mu_);
    return window_locked(span, now_ms);
}

WindowDelta RollingWindow::window_locked(std::chrono::seconds span,
                                         std::uint64_t now_ms) const {
    WindowDelta delta;
    // Base bucket: the newest capture at least `span` old — i.e. the
    // best available approximation of the state at (now - span). Fall
    // back to the oldest bucket (complete=false) during warm-up.
    const std::uint64_t span_ms = static_cast<std::uint64_t>(span.count()) * 1000;
    const Bucket* base = nullptr;
    const Bucket* oldest = nullptr;
    for (const Bucket& bucket : ring_) {
        if (!bucket.valid || bucket.at_ms > now_ms) continue;
        if (oldest == nullptr || bucket.at_ms < oldest->at_ms) oldest = &bucket;
        if (now_ms - bucket.at_ms < span_ms) continue;
        if (base == nullptr || bucket.at_ms > base->at_ms) base = &bucket;
    }
    if (base != nullptr) {
        delta.complete = true;
    } else {
        base = oldest;  // may still be null: no ticks yet -> empty window
    }
    if (base == nullptr) return delta;

    delta.seconds = static_cast<double>(now_ms - base->at_ms) / 1000.0;
    MetricsSnapshot live = registry_.snapshot();

    auto base_counter = [&](const std::string& key) -> std::uint64_t {
        for (const auto& [name, value] : base->snapshot.counters) {
            if (name == key) return value;
        }
        return 0;
    };
    delta.counters.reserve(live.counters.size());
    for (const auto& [key, value] : live.counters) {
        std::uint64_t b = base_counter(key);
        delta.counters.emplace_back(key, value >= b ? value - b : value);
    }

    auto base_histogram = [&](const std::string& key) -> const Histogram::Snapshot* {
        for (const auto& [name, snap] : base->snapshot.histograms) {
            if (name == key) return &snap;
        }
        return nullptr;
    };
    delta.histograms.reserve(live.histograms.size());
    for (auto& [key, snap] : live.histograms) {
        if (const Histogram::Snapshot* b = base_histogram(key); b != nullptr) {
            delta.histograms.emplace_back(key, delta_histogram(snap, *b));
        } else {
            delta.histograms.emplace_back(key, std::move(snap));
        }
    }
    return delta;
}

std::size_t RollingWindow::bucket_count() const {
    util::MutexLock lock(mu_);
    return static_cast<std::size_t>(
        std::count_if(ring_.begin(), ring_.end(), [](const Bucket& b) { return b.valid; }));
}

WindowTicker::WindowTicker(RollingWindow& window, std::function<void()> on_tick)
    : window_(window), on_tick_(std::move(on_tick)), interval_(std::chrono::seconds(1)) {
    window_.tick();  // bucket 0: the baseline every warm-up window starts from
    thread_ = std::thread([this] {
        while (!stop_.load(std::memory_order_acquire)) {
            {
                util::MutexLock lock(mu_);
                // Re-check under the lock: the destructor stores stop_
                // while holding mu_, so this check-then-wait cannot lose
                // the notify. A spurious wakeup just ticks early, which
                // only reduces bucket granularity error.
                if (!stop_.load(std::memory_order_acquire)) {
                    (void)cv_.wait_for(mu_, interval_);
                }
            }
            if (stop_.load(std::memory_order_acquire)) break;
            window_.tick();
            if (on_tick_) on_tick_();
        }
    });
}

WindowTicker::~WindowTicker() {
    {
        util::MutexLock lock(mu_);
        stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

}  // namespace agenp::obs
