// In-process sampling CPU profiler (DESIGN.md section 7.5).
//
// A dependency-free SIGPROF sampler in the gperftools tradition:
// setitimer(ITIMER_PROF) fires every 1/hz of process CPU time, the kernel
// delivers SIGPROF to a currently-running thread, and the handler captures
// a backtrace() into a preallocated lock-free ring. Everything expensive —
// symbolization (dladdr + demangling), aggregation, rendering — happens
// off-signal in drain()/stop(), so the steady-state cost is one backtrace
// per sample and the profiler is strictly zero-cost while stopped (no
// handler installed, no timer armed).
//
// Output is flamegraph.pl-compatible collapsed stacks ("a;b;c 42" lines,
// root first) plus a top-N flat profile by leaf self-time. `/profz` and the
// `!prof` control line on `agenp serve` are thin wrappers over collect()
// and start()/stop().
//
// Signal-safety notes (the load-bearing part):
//  - backtrace() lazily dlopen()s libgcc on first use, which is not
//    async-signal-safe; start() makes a priming call before arming the
//    timer so handler-context calls never take that path.
//  - The sample ring is a Vyukov-style bounded MPMC queue: concurrent
//    SIGPROF deliveries on different threads claim slots by CAS, publish
//    with a release store on the slot sequence, and a full ring drops the
//    sample (counted) instead of blocking. The handler touches nothing
//    else — no locks, no allocation, no stdio.
//  - Return addresses point one instruction past each call site; dladdr
//    still attributes them to the right function in practice, so we skip
//    the usual addr-1 adjustment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace agenp::obs {

struct ProfilerOptions {
    int hz = 99;                      // samples per second of process CPU time, clamped to [1, 1000]
    std::size_t max_frames = 48;      // frames captured per sample (hard cap kProfMaxFrames)
    std::size_t ring_capacity = 8192; // sample slots, rounded up to a power of two
};

// One aggregated call stack: frames joined root-first with ';' (the
// flamegraph.pl collapsed format), plus how many samples landed in it.
struct ProfileStack {
    std::string frames;
    std::uint64_t count = 0;
};

struct ProfileReport {
    int hz = 0;
    double seconds = 0.0;      // wall time the report covers
    std::uint64_t samples = 0; // samples aggregated into `stacks`
    std::uint64_t dropped = 0; // samples lost to a full ring
    std::vector<ProfileStack> stacks;  // sorted by count, descending

    // flamegraph.pl input: one "frame;frame;leaf count" line per stack.
    [[nodiscard]] std::string folded() const;
    // Flat profile: top `n` leaf frames by self-sample count.
    [[nodiscard]] std::string top(std::size_t n = 20) const;
    // {"hz":..,"seconds":..,"samples":..,"dropped":..,"stacks":[...]}
    [[nodiscard]] std::string to_json() const;
};

class CpuProfiler {
public:
    // The process-wide profiler. SIGPROF and ITIMER_PROF are per-process
    // resources, so there is exactly one.
    static CpuProfiler& instance();

    // Arms the timer and installs the SIGPROF handler. Returns false if
    // already running (the running session keeps its rate).
    bool start(const ProfilerOptions& options = {});

    // Aggregates and clears everything sampled since start()/the previous
    // drain(); profiling continues. Safe to call while stopped (empty
    // report).
    ProfileReport drain();

    // Disarms the timer, restores the previous SIGPROF disposition, waits
    // for in-flight handlers, and returns the final drain.
    ProfileReport stop();

    [[nodiscard]] bool running() const;
    [[nodiscard]] int hz() const;  // 0 when stopped

    // Blocking one-shot: profile for `seconds`, return the report. If a
    // continuous session is already running it is windowed (drain, sleep,
    // drain) at its existing rate; otherwise start/sleep/stop at `hz`.
    ProfileReport collect(double seconds, int hz = 99);

    CpuProfiler(const CpuProfiler&) = delete;
    CpuProfiler& operator=(const CpuProfiler&) = delete;

private:
    CpuProfiler();
    ~CpuProfiler();

    struct Impl;
    Impl* impl_;
};

}  // namespace agenp::obs
