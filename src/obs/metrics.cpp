#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "util/mutex.hpp"

namespace agenp::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Lower edge of histogram bucket i (values with bit_width == i).
std::uint64_t bucket_lower(std::size_t i) {
    return i == 0 ? 0 : (i == 1 ? 1 : std::uint64_t{1} << (i - 1));
}

std::uint64_t bucket_upper(std::size_t i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool enabled) {
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() {
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             epoch)
            .count());
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

// --- Histogram --------------------------------------------------------------

void Histogram::observe(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
        1, std::memory_order_relaxed);
    // Lock-free monotonic max/min.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = min_.load(std::memory_order_relaxed);
    while (value < seen && !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    std::uint64_t min = min_.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0 : min;
    s.buckets.resize(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
}

void Histogram::reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count - 1);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        if (rank < static_cast<double>(below + buckets[i])) {
            // Interpolate inside bucket i, clipped to the observed extremes.
            double frac = (rank - static_cast<double>(below)) / static_cast<double>(buckets[i]);
            double lo = static_cast<double>(std::max(bucket_lower(i), min));
            double hi = static_cast<double>(std::min(bucket_upper(i), max));
            return lo + frac * (hi - lo);
        }
        below += buckets[i];
    }
    return static_cast<double>(max);
}

// --- metric naming ----------------------------------------------------------

namespace {

bool is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_name_char(char c) { return is_name_start(c) || (c >= '0' && c <= '9'); }

}  // namespace

bool valid_metric_name(std::string_view name) {
    if (name.empty()) return false;
    bool segment_start = true;
    for (char c : name) {
        if (c == '.') {
            if (segment_start) return false;  // empty segment ("..", leading dot)
            segment_start = true;
            continue;
        }
        if (segment_start ? !is_name_start(c) : !is_name_char(c)) return false;
        segment_start = false;
    }
    return !segment_start;  // no trailing dot
}

bool valid_label_key(std::string_view key) {
    if (key.empty() || !is_name_start(key.front())) return false;
    for (char c : key.substr(1)) {
        if (!is_name_char(c)) return false;
    }
    return true;
}

std::string metric_key(std::string_view name, const MetricLabels& labels) {
    assert(valid_metric_name(name));
    std::string out(name);
    if (labels.empty()) return out;
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        assert(valid_label_key(key));
        if (!first) out += ',';
        out += key;
        out += "=\"";
        out += json_escape(value);
        out += '"';
        first = false;
    }
    out += '}';
    return out;
}

bool parse_metric_key(std::string_view key, std::string* name, MetricLabels* labels) {
    if (name != nullptr) name->clear();
    if (labels != nullptr) labels->clear();
    std::size_t brace = key.find('{');
    std::string_view base = key.substr(0, brace);
    if (!valid_metric_name(base)) return false;
    if (name != nullptr) name->assign(base);
    if (brace == std::string_view::npos) return true;
    if (key.back() != '}') return false;
    std::string_view body = key.substr(brace + 1, key.size() - brace - 2);
    while (!body.empty()) {
        std::size_t eq = body.find("=\"");
        if (eq == std::string_view::npos) return false;
        std::string_view label_key = body.substr(0, eq);
        if (!valid_label_key(label_key)) return false;
        body.remove_prefix(eq + 2);
        std::string value;
        bool closed = false;
        while (!body.empty()) {
            char c = body.front();
            body.remove_prefix(1);
            if (c == '"') {
                closed = true;
                break;
            }
            if (c == '\\' && !body.empty()) {
                char esc = body.front();
                body.remove_prefix(1);
                switch (esc) {
                    case 'n': value += '\n'; break;
                    case 'r': value += '\r'; break;
                    case 't': value += '\t'; break;
                    default: value += esc; break;  // \" and \\ (and passthrough)
                }
                continue;
            }
            value += c;
        }
        if (!closed) return false;
        if (labels != nullptr) labels->emplace_back(std::string(label_key), std::move(value));
        if (!body.empty()) {
            if (body.front() != ',') return false;
            body.remove_prefix(1);
            if (body.empty()) return false;  // trailing comma
        }
    }
    return true;
}

// --- MetricsRegistry --------------------------------------------------------

struct MetricsRegistry::Impl {
    mutable util::Mutex mutex;
    // std::map keeps node (and thus reference) stability on insert.
    std::map<std::string, Counter, std::less<>> counters GUARDED_BY(mutex);
    std::map<std::string, Gauge, std::less<>> gauges GUARDED_BY(mutex);
    std::map<std::string, Histogram, std::less<>> histograms GUARDED_BY(mutex);
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::counter(std::string_view name) {
    assert(valid_metric_name(name));
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->counters.find(name);
    if (it == impl_->counters.end()) {
        it = impl_->counters.try_emplace(std::string(name)).first;
    }
    return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    assert(valid_metric_name(name));
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->gauges.find(name);
    if (it == impl_->gauges.end()) {
        it = impl_->gauges.try_emplace(std::string(name)).first;
    }
    return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    assert(valid_metric_name(name));
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->histograms.find(name);
    if (it == impl_->histograms.end()) {
        it = impl_->histograms.try_emplace(std::string(name)).first;
    }
    return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const MetricLabels& labels) {
    std::string key = metric_key(name, labels);
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->counters.find(key);
    if (it == impl_->counters.end()) it = impl_->counters.try_emplace(std::move(key)).first;
    return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const MetricLabels& labels) {
    std::string key = metric_key(name, labels);
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->gauges.find(key);
    if (it == impl_->gauges.end()) it = impl_->gauges.try_emplace(std::move(key)).first;
    return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const MetricLabels& labels) {
    std::string key = metric_key(name, labels);
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->histograms.find(key);
    if (it == impl_->histograms.end()) it = impl_->histograms.try_emplace(std::move(key)).first;
    return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    util::MutexLock lock(impl_->mutex);
    MetricsSnapshot s;
    for (const auto& [name, c] : impl_->counters) s.counters.emplace_back(name, c.value());
    for (const auto& [name, g] : impl_->gauges) s.gauges.emplace_back(name, g.value());
    for (const auto& [name, h] : impl_->histograms) s.histograms.emplace_back(name, h.snapshot());
    return s;
}

std::string MetricsRegistry::render_text() const {
    auto s = snapshot();
    std::string out;
    std::size_t width = 0;
    for (const auto& [name, _] : s.counters) width = std::max(width, name.size());
    for (const auto& [name, _] : s.gauges) width = std::max(width, name.size());
    for (const auto& [name, _] : s.histograms) width = std::max(width, name.size());
    auto pad = [&](const std::string& name) {
        return name + std::string(width - name.size() + 2, ' ');
    };
    for (const auto& [name, value] : s.counters) {
        out += pad(name) + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : s.gauges) {
        out += pad(name) + std::to_string(value) + "\n";
    }
    for (const auto& [name, h] : s.histograms) {
        out += pad(name) + "count=" + std::to_string(h.count) + " mean=" + format_double(h.mean()) +
               " p50=" + format_double(h.quantile(0.5)) + " p90=" + format_double(h.quantile(0.9)) +
               " p99=" + format_double(h.quantile(0.99)) + " max=" + std::to_string(h.max) + "\n";
    }
    return out;
}

std::string MetricsRegistry::render_json() const {
    auto s = snapshot();
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : s.counters) {
        if (!first) out += ",";
        out += "\"" + json_escape(name) + "\":" + std::to_string(value);
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : s.gauges) {
        if (!first) out += ",";
        out += "\"" + json_escape(name) + "\":" + std::to_string(value);
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : s.histograms) {
        if (!first) out += ",";
        out += "\"" + json_escape(name) + "\":{\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + std::to_string(h.sum) + ",\"mean\":" + format_double(h.mean()) +
               ",\"p50\":" + format_double(h.quantile(0.5)) +
               ",\"p90\":" + format_double(h.quantile(0.9)) +
               ",\"p99\":" + format_double(h.quantile(0.99)) +
               ",\"max\":" + std::to_string(h.max) + "}";
        first = false;
    }
    out += "}}";
    return out;
}

void MetricsRegistry::reset() {
    util::MutexLock lock(impl_->mutex);
    for (auto& [_, c] : impl_->counters) c.reset();
    for (auto& [_, g] : impl_->gauges) g.reset();
    for (auto& [_, h] : impl_->histograms) h.reset();
}

MetricsRegistry& metrics() {
    static MetricsRegistry registry;
    return registry;
}

// --- ScopedTimer ------------------------------------------------------------

ScopedTimer::ScopedTimer(Histogram& h) : histogram_(metrics_enabled() ? &h : nullptr) {
    if (histogram_ != nullptr) start_ns_ = monotonic_ns();
}

ScopedTimer::~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->observe((monotonic_ns() - start_ns_) / 1000);
}

}  // namespace agenp::obs
