// Per-check cost attribution: EWMA cost x observed frequency per named
// check/phase (DESIGN.md section 7.5).
//
// The rspamd symbols_cache idiom: every named check keeps an exponentially
// weighted moving average of its per-call cost (updated on each
// observation) and of its call frequency (updated by a 1 Hz tick). Their
// product — expected microseconds of wall time consumed per second — is a
// live "where does the CPU budget go" ranking, and exactly the signal the
// profile-guided adaptive-scheduling ROADMAP item needs to reorder checks
// and pick strategies.
//
// Hot path: observe() is two relaxed atomic adds plus one CAS loop on a
// bit-cast double — no locks. ScopedCost call sites cache the CostCell&
// once (same pattern as the `static obs::Counter&` idiom) and compile to
// nothing when metrics are disabled. tick() and snapshot() take the
// registration mutex; both run at human rates.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace agenp::obs {

class CostCell {
public:
    // Records one call that took `elapsed_us`. Lock-free, callable from
    // any thread.
    void observe(std::uint64_t elapsed_us);

    [[nodiscard]] std::uint64_t calls() const {
        return calls_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_us() const {
        return total_us_.load(std::memory_order_relaxed);
    }
    // EWMA per-call cost in microseconds (0 before the first observation).
    [[nodiscard]] double ewma_us() const;
    // EWMA call frequency in Hz (0 before the first two ticks).
    [[nodiscard]] double frequency_hz() const;

private:
    friend class CostTable;
    void tick(std::uint64_t now_ns);  // single writer: the table's ticker

    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> total_us_{0};
    std::atomic<std::uint64_t> ewma_us_bits_{0};   // bit-cast double
    std::atomic<std::uint64_t> freq_hz_bits_{0};   // bit-cast double
    // Ticker-private state, guarded by the table mutex.
    std::uint64_t last_calls_ = 0;
    std::uint64_t last_tick_ns_ = 0;
};

struct CostEntry {
    std::string check;
    std::uint64_t calls = 0;
    std::uint64_t total_us = 0;
    double ewma_us = 0.0;
    double frequency_hz = 0.0;
    double us_per_s = 0.0;  // ewma_us * frequency_hz: expected wall-time share
};

class CostTable {
public:
    // Smoothing factors: cost reacts per observation, frequency per tick.
    static constexpr double kCostAlpha = 0.2;
    static constexpr double kFreqAlpha = 0.3;

    // Stable reference for the life of the table; same name -> same cell.
    CostCell& cell(std::string_view check);

    // Folds call-count deltas into each cell's frequency EWMA. Call about
    // once per second (serve's WindowTicker does).
    void tick();

    // All cells, sorted by us_per_s descending (the scheduling order).
    [[nodiscard]] std::vector<CostEntry> snapshot() const;

    // [{"check":"asp.solve","calls":..,"ewma_us":..,"hz":..,"us_per_s":..},...]
    [[nodiscard]] std::string render_json() const;
    // Aligned human-readable table, same order.
    [[nodiscard]] std::string render_text() const;

    // Zeroes every cell (names stay registered). Benchmarks use this to
    // isolate rows.
    void reset();

    CostTable();
    ~CostTable();
    CostTable(const CostTable&) = delete;
    CostTable& operator=(const CostTable&) = delete;

private:
    struct Impl;
    Impl* impl_;
};

// The process-wide cost table used by instrumentation call sites.
CostTable& costs();

// RAII cost observation; no-op when metrics are disabled at construction.
class ScopedCost {
public:
    explicit ScopedCost(CostCell& cell)
        : cell_(metrics_enabled() ? &cell : nullptr),
          start_ns_(cell_ != nullptr ? monotonic_ns() : 0) {}
    ~ScopedCost() {
        if (cell_ != nullptr) cell_->observe((monotonic_ns() - start_ns_) / 1000);
    }
    ScopedCost(const ScopedCost&) = delete;
    ScopedCost& operator=(const ScopedCost&) = delete;

private:
    CostCell* cell_;
    std::uint64_t start_ns_;
};

}  // namespace agenp::obs
