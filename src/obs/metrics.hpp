// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms (DESIGN.md section "Observability").
//
// Design goals, in order:
//  1. Hot-path cost: incrementing a held Counter& is one relaxed atomic
//     add; instrumented loops accumulate into plain locals and flush once
//     per operation. When metrics are globally disabled the flush helpers
//     return immediately.
//  2. Thread safety: all mutation is lock-free (std::atomic); only
//     registration (first lookup of a name) takes a mutex, and returned
//     references stay valid for the life of the process.
//  3. Exportability: the registry renders a snapshot as aligned text or a
//     single-line JSON object, suitable for `agenp --stats` and for the
//     BENCH_*_JSON lines the benchmarks emit.
//
// Conventions: metric names are dot-separated (`asp.solver.decisions`);
// histograms that record durations carry a `_us` suffix and observe
// microseconds. Per-instance dimensions (replica, shard, lock) are labels,
// not name segments, so exporters can aggregate across them — see
// metric_key() and the labeled registry overloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace agenp::obs {

// Global kill switch. Defaults to enabled; disabling makes the flush
// helpers and ScopedTimer no-ops (call sites that cache Counter& still pay
// one relaxed add — near-zero either way).
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

class Gauge {
public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram over non-negative integers. Bucket i collects
// values v with bit_width(v) == i, i.e. exponentially sized buckets
// [2^(i-1), 2^i); quantiles interpolate linearly inside a bucket. 64
// buckets cover the full uint64 range, so observe() never clips.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  // bit_width in [0, 64]

    void observe(std::uint64_t value);

    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::vector<std::uint64_t> buckets;

        [[nodiscard]] double mean() const {
            return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
        }
        // Approximate quantile, q in [0, 1].
        [[nodiscard]] double quantile(double q) const;
    };

    [[nodiscard]] Snapshot snapshot() const;
    void reset();

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

// --- metric naming ----------------------------------------------------------
//
// A registry base name is dot-separated lowercase segments:
//   name     = segment *("." segment)
//   segment  = [a-zA-Z_][a-zA-Z0-9_]*
// Mapping dots to underscores therefore always yields a name valid under
// Prometheus rules ([a-zA-Z_:][a-zA-Z0-9_:]*). Registration asserts this
// in debug builds; exporters rely on it.
bool valid_metric_name(std::string_view name);

// Label keys follow the Prometheus label grammar [a-zA-Z_][a-zA-Z0-9_]*.
bool valid_label_key(std::string_view key);

// One metric dimension, e.g. {"replica", "0"} or {"lock", "srv.model"}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Canonical registry key for a (name, labels) pair:
//   srv.router.queue_depth{replica="0"}
// Unlabeled metrics use the bare name. Label values are escaped like JSON
// strings (\" \\ \n), so the encoding round-trips.
std::string metric_key(std::string_view name, const MetricLabels& labels);

// Splits a registry key back into base name and labels (the exporter's
// enumeration path). Returns false when `key` is not a valid encoding.
bool parse_metric_key(std::string_view key, std::string* name, MetricLabels* labels);

struct MetricsSnapshot {
    // Keys are metric_key() encodings: base name plus optional {labels}.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

class MetricsRegistry {
public:
    // References are stable for the life of the registry; looking up the
    // same name always returns the same instrument. Debug builds assert
    // valid_metric_name(name) / valid_label_key(key) on first registration.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    // Labeled variants: one instrument per distinct (name, labels) pair,
    // enumerable by exporters as a single family with per-label samples.
    Counter& counter(std::string_view name, const MetricLabels& labels);
    Gauge& gauge(std::string_view name, const MetricLabels& labels);
    Histogram& histogram(std::string_view name, const MetricLabels& labels);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    // Human-readable dump, sorted by name, histograms with count/mean/p50/
    // p90/p99/max.
    [[nodiscard]] std::string render_text() const;
    // Single-line JSON object:
    //   {"counters":{...},"gauges":{...},"histograms":{"x":{"count":..}}}
    [[nodiscard]] std::string render_json() const;

    // Zeroes every registered instrument (names stay registered).
    void reset();

    ~MetricsRegistry();
    MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

private:
    struct Impl;
    Impl* impl_;
};

// The process-wide registry used by all instrumentation call sites.
MetricsRegistry& metrics();

// Times a scope and observes the elapsed microseconds into `h` (skipped
// entirely when metrics are disabled at construction time).
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& h);
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Histogram* histogram_;  // null when disabled
    std::uint64_t start_ns_ = 0;
};

// Monotonic nanoseconds since an arbitrary process-local epoch (shared
// with the tracer so span and timer clocks agree).
std::uint64_t monotonic_ns();

// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace agenp::obs
