#include "obs/reqtrace.hpp"

#include "obs/metrics.hpp"

namespace agenp::obs {

namespace {

thread_local TraceContext* t_current_trace = nullptr;

}  // namespace

std::size_t TraceContext::begin_span(std::string_view name) {
    RequestSpan span;
    span.name = std::string(name);
    span.start_us = monotonic_ns() / 1000;
    span.parent = open_.empty() ? -1 : static_cast<std::int32_t>(open_.back());
    spans_.push_back(std::move(span));
    std::size_t index = spans_.size() - 1;
    open_.push_back(index);
    return index;
}

void TraceContext::end_span(std::size_t index) {
    if (index >= spans_.size()) return;
    RequestSpan& span = spans_[index];
    std::uint64_t now_us = monotonic_ns() / 1000;
    span.duration_us = now_us >= span.start_us ? now_us - span.start_us : 0;
    // Pop the open stack down to (and including) this span; spans are
    // expected to close innermost-first, but a missed end_span must not
    // leave the stack pointing at a closed span.
    while (!open_.empty()) {
        std::size_t top = open_.back();
        open_.pop_back();
        if (top == index) break;
    }
}

std::size_t TraceContext::find(std::string_view name) const {
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        if (spans_[i].name == name) return i;
    }
    return npos;
}

void TraceContext::append_chrome_events(std::string& out, bool& first) const {
    for (const auto& span : spans_) {
        if (!first) out += ",";
        out += "{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"request\",\"ph\":\"X\"";
        out += ",\"ts\":" + std::to_string(span.start_us);
        out += ",\"dur\":" + std::to_string(span.duration_us);
        out += ",\"pid\":1,\"tid\":" + std::to_string(id_);
        out += ",\"args\":{\"trace_id\":" + std::to_string(id_) +
               ",\"parent\":" + std::to_string(span.parent);
        if (client_ != 0) out += ",\"client\":" + std::to_string(client_);
        out += "}}";
        first = false;
    }
}

std::string TraceContext::chrome_trace_json() const {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    append_chrome_events(out, first);
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

TraceContext* current_trace() { return t_current_trace; }

TraceContextScope::TraceContextScope(TraceContext* ctx) : prev_(t_current_trace) {
    t_current_trace = ctx;
}

TraceContextScope::~TraceContextScope() { t_current_trace = prev_; }

std::string chrome_trace_json(const std::vector<const TraceContext*>& traces) {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceContext* trace : traces) {
        if (trace != nullptr) trace->append_chrome_events(out, first);
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

}  // namespace agenp::obs
