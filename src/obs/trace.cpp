#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace agenp::obs {

namespace {

std::uint32_t this_thread_index() {
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
    return index;
}

// Per-thread stack tracking nesting depth and the nanoseconds consumed by
// completed child spans at each level (for self-time).
thread_local std::vector<std::uint64_t> t_child_ns;

}  // namespace

struct TraceRecorder::Impl {
    mutable util::Mutex mutex;
    std::vector<SpanEvent> events GUARDED_BY(mutex);
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}
TraceRecorder::~TraceRecorder() { delete impl_; }

void TraceRecorder::set_enabled(bool enabled) { enabled_ = enabled; }

void TraceRecorder::clear() {
    util::MutexLock lock(impl_->mutex);
    impl_->events.clear();
}

void TraceRecorder::record(SpanEvent event) {
    util::MutexLock lock(impl_->mutex);
    impl_->events.push_back(std::move(event));
}

std::vector<SpanEvent> TraceRecorder::events() const {
    util::MutexLock lock(impl_->mutex);
    return impl_->events;
}

std::string TraceRecorder::chrome_trace_json() const {
    auto evs = events();
    // Stable visual ordering: by thread, then start time.
    std::stable_sort(evs.begin(), evs.end(), [](const SpanEvent& a, const SpanEvent& b) {
        return std::tie(a.thread, a.start_us) < std::tie(b.thread, b.start_us);
    });
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const auto& e : evs) {
        if (!first) out += ",";
        out += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" + json_escape(e.category) +
               "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.start_us) +
               ",\"dur\":" + std::to_string(e.duration_us) +
               ",\"pid\":1,\"tid\":" + std::to_string(e.thread) + "}";
        first = false;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

std::string TraceRecorder::flat_profile() const {
    struct Agg {
        std::uint64_t count = 0;
        std::uint64_t total_us = 0;
        std::uint64_t self_us = 0;
    };
    std::map<std::string, Agg> by_name;
    for (const auto& e : events()) {
        auto& a = by_name[e.name];
        ++a.count;
        a.total_us += e.duration_us;
        a.self_us += e.self_us;
    }
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second.total_us > b.second.total_us; });
    std::size_t width = 4;
    for (const auto& [name, _] : rows) width = std::max(width, name.size());
    std::string out = "span" + std::string(width - 4 + 2, ' ') + "calls     total_us      self_us\n";
    for (const auto& [name, a] : rows) {
        std::string calls = std::to_string(a.count);
        std::string total = std::to_string(a.total_us);
        std::string self = std::to_string(a.self_us);
        out += name + std::string(width - name.size() + 2, ' ') +
               std::string(calls.size() < 5 ? 5 - calls.size() : 0, ' ') + calls +
               std::string(total.size() < 13 ? 13 - total.size() : 0, ' ') + total +
               std::string(self.size() < 13 ? 13 - self.size() : 0, ' ') + self + "\n";
    }
    return out;
}

TraceRecorder& tracer() {
    static TraceRecorder recorder;
    return recorder;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category)
    : active_(tracer().enabled()) {
    if (!active_) return;
    start_ns_ = monotonic_ns();
    name_ = name;
    category_ = category;
    t_child_ns.push_back(0);
}

ScopedSpan::~ScopedSpan() {
    if (!active_) return;
    std::uint64_t end_ns = monotonic_ns();
    std::uint64_t dur_ns = end_ns - start_ns_;
    std::uint64_t child_ns = t_child_ns.empty() ? 0 : t_child_ns.back();
    if (!t_child_ns.empty()) t_child_ns.pop_back();
    if (!t_child_ns.empty()) t_child_ns.back() += dur_ns;
    SpanEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.start_us = start_ns_ / 1000;
    event.duration_us = dur_ns / 1000;
    event.self_us = (dur_ns - std::min(child_ns, dur_ns)) / 1000;
    event.thread = this_thread_index();
    event.depth = static_cast<std::uint32_t>(t_child_ns.size());
    tracer().record(std::move(event));
}

}  // namespace agenp::obs
