#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include <cerrno>
#include <csignal>
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace agenp::obs {
namespace {

constexpr std::size_t kProfMaxFrames = 48;

// One ring slot. `seq` is the Vyukov sequence: slot i starts at seq == i
// (free); a producer that claims position p writes frames and publishes
// seq = p + 1; the consumer reads when seq == p + 1 and releases with
// seq = p + capacity.
struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::uint32_t depth = 0;
    void* frames[kProfMaxFrames];
};

struct Ring {
    explicit Ring(std::size_t capacity_pow2, std::size_t max_frames)
        : slots(new Slot[capacity_pow2]),
          capacity(capacity_pow2),
          max_frames(std::min(max_frames, kProfMaxFrames)) {
        for (std::size_t i = 0; i < capacity; ++i) {
            slots[i].seq.store(i, std::memory_order_relaxed);
        }
    }

    std::unique_ptr<Slot[]> slots;
    std::size_t capacity;
    std::size_t max_frames;
    std::atomic<std::uint64_t> enqueue_pos{0};
    std::atomic<std::uint64_t> dequeue_pos{0};
    std::atomic<std::uint64_t> captured{0};
    std::atomic<std::uint64_t> dropped{0};
};

// Handler-visible state. `g_ring` is null whenever the profiler is not
// running; `g_handlers_active` lets stop() wait out handlers that loaded
// the ring pointer just before it was cleared.
std::atomic<Ring*> g_ring{nullptr};
std::atomic<int> g_handlers_active{0};

extern "C" void agenp_prof_signal_handler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
    int saved_errno = errno;  // backtrace() may clobber errno
    g_handlers_active.fetch_add(1, std::memory_order_acq_rel);
    if (Ring* ring = g_ring.load(std::memory_order_acquire); ring != nullptr) {
        std::uint64_t pos = ring->enqueue_pos.load(std::memory_order_relaxed);
        Slot* claimed = nullptr;
        for (;;) {
            Slot& slot = ring->slots[pos & (ring->capacity - 1)];
            std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
            auto diff = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
            if (diff == 0) {
                if (ring->enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                                            std::memory_order_relaxed)) {
                    claimed = &slot;
                    break;
                }
                // CAS lost: `pos` was reloaded, retry.
            } else if (diff < 0) {
                ring->dropped.fetch_add(1, std::memory_order_relaxed);
                break;  // ring full — drop rather than block in a handler
            } else {
                pos = ring->enqueue_pos.load(std::memory_order_relaxed);
            }
        }
        if (claimed != nullptr) {
            int depth = ::backtrace(claimed->frames, static_cast<int>(ring->max_frames));
            claimed->depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
            ring->captured.fetch_add(1, std::memory_order_relaxed);
            // Publish even on backtrace failure so the slot is not leaked.
            claimed->seq.store(pos + 1, std::memory_order_release);
        }
    }
    g_handlers_active.fetch_sub(1, std::memory_order_acq_rel);
    errno = saved_errno;
}

// Single-consumer dequeue; caller holds the profiler mutex.
bool dequeue(Ring& ring, std::vector<void*>* out) {
    std::uint64_t pos = ring.dequeue_pos.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[pos & (ring.capacity - 1)];
    std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0) {
        return false;  // producer has not published this slot yet
    }
    out->assign(slot.frames, slot.frames + slot.depth);
    slot.seq.store(pos + ring.capacity, std::memory_order_release);
    ring.dequeue_pos.store(pos + 1, std::memory_order_relaxed);
    return true;
}

std::string hex_frame(const void* addr) {
    char buf[2 + 2 * sizeof(void*) + 1];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, reinterpret_cast<std::uintptr_t>(addr));
    return buf;
}

// Resolves one return address to a human-readable frame name: demangled
// symbol with the parameter list stripped, shared-object basename when the
// symbol is unknown, raw hex as the last resort.
std::string symbolize_frame(void* addr) {
    Dl_info info{};
    if (::dladdr(addr, &info) == 0) return hex_frame(addr);
    if (info.dli_sname == nullptr) {
        if (info.dli_fname != nullptr) {
            std::string_view file = info.dli_fname;
            if (std::size_t slash = file.rfind('/'); slash != std::string_view::npos) {
                file.remove_prefix(slash + 1);
            }
            return "[" + std::string(file) + "]";
        }
        return hex_frame(addr);
    }
    std::string name = info.dli_sname;
    int status = 0;
    if (char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
        demangled != nullptr) {
        if (status == 0) name = demangled;
        std::free(demangled);  // NOLINT(cppcoreguidelines-no-malloc)
    }
    // Drop the parameter list — flamegraph frames want `ns::func`, not the
    // full signature. Guard the leading '(' of "(anonymous namespace)".
    if (std::size_t paren = name.find('('); paren != std::string::npos && paren > 0) {
        name.resize(paren);
    }
    // ';' is the folded-stack separator and ' ' the count separator.
    for (char& c : name) {
        if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    return name;
}

double wall_seconds_since(std::uint64_t start_ns) {
    return static_cast<double>(monotonic_ns() - start_ns) / 1e9;
}

}  // namespace

struct CpuProfiler::Impl {
    util::Mutex mu;
    // The pointer changes only under mu; the handler reaches the Ring
    // through the g_ring atomic, never through this field, and the Ring's
    // own slots are lock-free atomics.
    std::unique_ptr<Ring> ring GUARDED_BY(mu) PT_GUARDED_BY(mu);
    struct sigaction old_action GUARDED_BY(mu) {};
    std::atomic<bool> running{false};
    std::atomic<int> hz{0};
    std::uint64_t window_start_ns GUARDED_BY(mu) = 0;
    // Address -> frame name cache; symbols never move, so entries live for
    // the process.
    std::unordered_map<void*, std::string> symbols GUARDED_BY(mu);

    const std::string& frame_name(void* addr) REQUIRES(mu) {
        auto it = symbols.find(addr);
        if (it == symbols.end()) it = symbols.emplace(addr, symbolize_frame(addr)).first;
        return it->second;
    }

    // Drains the ring into an aggregated report; caller holds `mu`.
    ProfileReport drain_locked() REQUIRES(mu) {
        ProfileReport report;
        report.hz = hz.load(std::memory_order_relaxed);
        report.seconds = window_start_ns != 0 ? wall_seconds_since(window_start_ns) : 0.0;
        window_start_ns = monotonic_ns();
        if (!ring) return report;
        report.dropped = ring->dropped.exchange(0, std::memory_order_relaxed);

        // Aggregate identical address stacks first (cheap pointer compare),
        // then symbolize each distinct stack once.
        std::map<std::vector<void*>, std::uint64_t> by_addr;
        std::vector<void*> frames;
        while (dequeue(*ring, &frames)) {
            ++report.samples;
            if (frames.size() > 2) {
                // frames[0] is this handler, frames[1] the signal
                // trampoline (__restore_rt); the interrupted PC starts at 2.
                frames.erase(frames.begin(), frames.begin() + 2);
            }
            if (frames.empty()) continue;
            by_addr[frames] += 1;
        }

        std::map<std::string, std::uint64_t> by_name;
        std::string folded;
        for (const auto& [stack, count] : by_addr) {
            folded.clear();
            // backtrace() is leaf-first; folded output is root-first.
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (!folded.empty()) folded += ';';
                folded += frame_name(*it);
            }
            by_name[folded] += count;
        }
        report.stacks.reserve(by_name.size());
        for (auto& [key, count] : by_name) report.stacks.push_back({key, count});
        std::sort(report.stacks.begin(), report.stacks.end(),
                  [](const ProfileStack& a, const ProfileStack& b) {
                      return a.count != b.count ? a.count > b.count : a.frames < b.frames;
                  });
        return report;
    }
};

CpuProfiler::CpuProfiler() : impl_(new Impl) {}
CpuProfiler::~CpuProfiler() { delete impl_; }

CpuProfiler& CpuProfiler::instance() {
    static CpuProfiler profiler;
    return profiler;
}

bool CpuProfiler::start(const ProfilerOptions& options) {
    util::MutexLock lock(impl_->mu);
    if (impl_->running.load(std::memory_order_relaxed)) return false;

    int hz = std::clamp(options.hz, 1, 1000);
    std::size_t capacity = 1;
    while (capacity < std::max<std::size_t>(options.ring_capacity, 64)) capacity <<= 1;
    std::size_t max_frames = std::clamp<std::size_t>(options.max_frames, 4, kProfMaxFrames);
    if (!impl_->ring || impl_->ring->capacity < capacity ||
        impl_->ring->max_frames != max_frames) {
        impl_->ring = std::make_unique<Ring>(capacity, max_frames);
    }

    // Prime backtrace()'s lazy libgcc initialization outside signal context.
    void* prime[4];
    (void)::backtrace(prime, 4);

    struct sigaction action {};
    action.sa_sigaction = agenp_prof_signal_handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (::sigaction(SIGPROF, &action, &impl_->old_action) != 0) return false;

    impl_->window_start_ns = monotonic_ns();
    impl_->hz.store(hz, std::memory_order_relaxed);
    g_ring.store(impl_->ring.get(), std::memory_order_release);

    itimerval timer{};
    timer.it_interval.tv_sec = hz == 1 ? 1 : 0;
    timer.it_interval.tv_usec = hz == 1 ? 0 : static_cast<suseconds_t>(1000000 / hz);
    timer.it_value = timer.it_interval;
    if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        g_ring.store(nullptr, std::memory_order_release);
        ::sigaction(SIGPROF, &impl_->old_action, nullptr);
        return false;
    }
    impl_->running.store(true, std::memory_order_release);
    return true;
}

ProfileReport CpuProfiler::drain() {
    util::MutexLock lock(impl_->mu);
    return impl_->drain_locked();
}

ProfileReport CpuProfiler::stop() {
    util::MutexLock lock(impl_->mu);
    if (!impl_->running.load(std::memory_order_relaxed)) return {};

    itimerval off{};
    ::setitimer(ITIMER_PROF, &off, nullptr);
    g_ring.store(nullptr, std::memory_order_release);
    // A handler may have loaded the ring pointer just before we cleared it;
    // wait until every in-flight handler has returned before draining.
    while (g_handlers_active.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
    }
    ::sigaction(SIGPROF, &impl_->old_action, nullptr);

    ProfileReport report = impl_->drain_locked();
    impl_->running.store(false, std::memory_order_release);
    impl_->hz.store(0, std::memory_order_relaxed);
    return report;
}

bool CpuProfiler::running() const { return impl_->running.load(std::memory_order_acquire); }

int CpuProfiler::hz() const { return impl_->hz.load(std::memory_order_relaxed); }

ProfileReport CpuProfiler::collect(double seconds, int hz) {
    seconds = std::clamp(seconds, 0.0, 60.0);
    auto sleep_for = std::chrono::duration<double>(seconds);
    if (running()) {
        (void)drain();  // reset the window to "now"
        std::this_thread::sleep_for(sleep_for);
        return drain();
    }
    if (!start(ProfilerOptions{.hz = hz})) return {};
    std::this_thread::sleep_for(sleep_for);
    return stop();
}

std::string ProfileReport::folded() const {
    std::string out;
    for (const auto& stack : stacks) {
        out += stack.frames;
        out += ' ';
        out += std::to_string(stack.count);
        out += '\n';
    }
    return out;
}

std::string ProfileReport::top(std::size_t n) const {
    // Self time: samples whose *leaf* landed in the frame.
    std::map<std::string, std::uint64_t> self;
    for (const auto& stack : stacks) {
        std::string_view frames = stack.frames;
        std::size_t semi = frames.rfind(';');
        std::string_view leaf =
            semi == std::string_view::npos ? frames : frames.substr(semi + 1);
        self[std::string(leaf)] += stack.count;
    }
    std::vector<std::pair<std::string, std::uint64_t>> sorted(self.begin(), self.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (sorted.size() > n) sorted.resize(n);

    std::string out;
    char line[160];
    for (const auto& [name, count] : sorted) {
        double pct = samples == 0 ? 0.0
                                  : 100.0 * static_cast<double>(count) /
                                        static_cast<double>(samples);
        std::snprintf(line, sizeof(line), "%8" PRIu64 "  %5.1f%%  ", count, pct);
        out += line;
        out += name;
        out += '\n';
    }
    return out;
}

std::string ProfileReport::to_json() const {
    char buf[96];
    std::string out = "{\"hz\":" + std::to_string(hz);
    std::snprintf(buf, sizeof(buf), ",\"seconds\":%.3f", seconds);
    out += buf;
    out += ",\"samples\":" + std::to_string(samples);
    out += ",\"dropped\":" + std::to_string(dropped);
    out += ",\"stacks\":[";
    bool first = true;
    for (const auto& stack : stacks) {
        if (!first) out += ',';
        first = false;
        out += "{\"stack\":\"" + json_escape(stack.frames) +
               "\",\"count\":" + std::to_string(stack.count) + "}";
    }
    out += "]}";
    return out;
}

}  // namespace agenp::obs
