#include "obs/build.hpp"

#include "obs/metrics.hpp"

// Injected per-source by CMake (git describe at configure time); default
// so the file still compiles standalone.
#ifndef AGENP_GIT_SHA
#define AGENP_GIT_SHA "unknown"
#endif
#ifndef AGENP_BUILD_TYPE
#define AGENP_BUILD_TYPE "unknown"
#endif

namespace agenp::obs {

std::string build_info_json(
    const std::vector<std::pair<std::string, std::string>>& extra) {
    std::string out = "{\"git_sha\":\"" + json_escape(AGENP_GIT_SHA) + "\"";
    out += ",\"compiler\":\"" + json_escape(__VERSION__) + "\"";
    out += ",\"build_type\":\"" + json_escape(AGENP_BUILD_TYPE) + "\"";
    out += ",\"cxx_standard\":" + std::to_string(__cplusplus);

    out += ",\"features\":[";
    bool first = true;
    auto feature = [&](const char* name) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += '"';
    };
#if defined(__SANITIZE_ADDRESS__)
    feature("asan");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    feature("asan");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    feature("tsan");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    feature("tsan");
#endif
#endif
#if !defined(NDEBUG)
    feature("assertions");
#endif
    out += ']';

    for (const auto& [key, value] : extra) {
        out += ",\"" + json_escape(key) + "\":" + value;
    }
    out += '}';
    return out;
}

}  // namespace agenp::obs
