// Lock-contention profiling: drop-in mutex wrappers that attribute wait
// time to named locks (DESIGN.md section "Observability"), annotated as
// thread-safety capabilities (DESIGN.md section 12).
//
// The serving layer's scaling questions ("where do the cache-off threads
// stall?") cannot be answered by latency histograms alone — they need to
// know which lock was waited on and for how long. ProfiledMutex and
// ProfiledSharedMutex satisfy the standard Lockable / SharedLockable
// requirements and record per-lock:
//   - acquisitions: every successful lock (shared or exclusive),
//   - contentions: acquisitions that lost the try_lock fast path,
//   - wait_us:     histogram of slow-path wait time.
//
// Both are CAPABILITY("mutex") types, so fields can be GUARDED_BY them
// and clang's -Wthread-safety checks the discipline at compile time.
// Lock through the scoped types below (ProfiledMutexLock,
// ProfiledWriteLock, ProfiledReadLock) — std::lock_guard and friends
// carry no thread-safety annotations, so the analysis cannot see
// through them.
//
// Cost model: the uncontended path is one try_lock plus one relaxed
// atomic add — near-zero. Only the contended path reads the clock. With
// set_lock_profiling_enabled(false) even the counter bump is skipped and
// the wrappers degenerate to a plain try_lock/lock pair.
//
// Stats objects are owned by a process-wide LockRegistry keyed by name;
// several mutexes may share one name (the 16 decision-cache shard locks
// all report as "srv.cache_shard"), aggregating naturally.
//
// Lock hierarchy: named locks carry a rank (lock_rank_of), and a
// debug-build checker aborts the process when a thread acquires a ranked
// lock while holding one of equal or higher rank — a lock-order
// inversion that could deadlock under another interleaving. The global
// order (DESIGN.md section 12):
//
//   rank  lock name         held while taking ->
//     10  srv.model         srv.cache_shard, srv.monitor, symbol.intern
//     20  srv.cache_shard   (leaf)
//     30  srv.monitor       (leaf)
//     40  srv.audit         (leaf)
//     50  srv.conn.outbox   (leaf)
//     60  symbol.intern     (leaf)
//
// Unranked names are exempt (util::Mutex internals are invisible here —
// they are plain capabilities, not profiled locks). The checker defaults
// to on in debug builds (!NDEBUG) and off otherwise; bench_serve turns
// it off explicitly so release numbers measure the production config.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::obs {

// Global kill switch, independent of metrics_enabled(): lock profiling
// defaults to on because its fast path is one relaxed add.
bool lock_profiling_enabled();
void set_lock_profiling_enabled(bool enabled);

// Runtime lock-order checking (inversion -> stderr report + abort).
// Defaults to on in debug builds, off under NDEBUG. Toggle only while no
// ranked locks are held.
bool lock_order_checking_enabled();
void set_lock_order_checking(bool enabled);

// A named lock's place in the global hierarchy. rank 0 = unranked
// (exempt from order checking); name points at the static rank table.
struct LockRank {
    int rank = 0;
    const char* name = "";
};

[[nodiscard]] LockRank lock_rank_of(std::string_view name);

namespace detail {
// Per-thread held-lock bookkeeping for the order checker. acquire checks
// for inversion (reporting to stderr and aborting when `enforce`), then
// records the lock; release forgets it. Called only for ranked locks.
void lock_order_acquire(const void* mu, const LockRank& rank, bool enforce = true);
void lock_order_release(const void* mu);
}  // namespace detail

// Per-named-lock instrument. All mutation is lock-free.
class LockStats {
public:
    void record_uncontended() { acquisitions_.add(1); }
    void record_contended(std::uint64_t wait_ns) {
        acquisitions_.add(1);
        contentions_.add(1);
        wait_us_.observe(wait_ns / 1000);
    }

    [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_.value(); }
    [[nodiscard]] std::uint64_t contentions() const { return contentions_.value(); }
    [[nodiscard]] Histogram::Snapshot wait_us() const { return wait_us_.snapshot(); }

    void reset() {
        acquisitions_.reset();
        contentions_.reset();
        wait_us_.reset();
    }

private:
    Counter acquisitions_;
    Counter contentions_;
    Histogram wait_us_;
};

struct LockStatsSnapshot {
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    Histogram::Snapshot wait_us;

    [[nodiscard]] double contention_rate() const {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(contentions) / static_cast<double>(acquisitions);
    }
};

class LockRegistry {
public:
    // Stable for the life of the process; same name -> same instrument.
    LockStats& get(std::string_view name);

    [[nodiscard]] std::vector<LockStatsSnapshot> snapshot() const;

    // {"name":{"acquisitions":..,"contentions":..,"wait_us_total":..,
    //          "wait_us_p50":..,"wait_us_p99":..,"wait_us_max":..},...}
    [[nodiscard]] std::string render_json() const;
    // Aligned table sorted by total wait descending.
    [[nodiscard]] std::string render_text() const;

    // Zeroes every instrument (names stay registered).
    void reset();

    LockRegistry();
    ~LockRegistry();
    LockRegistry(const LockRegistry&) = delete;
    LockRegistry& operator=(const LockRegistry&) = delete;

private:
    struct Impl;
    Impl* impl_;
};

// The process-wide registry. Never destroyed (the symbol intern table's
// locks may be used during static teardown).
LockRegistry& locks();

// std::mutex with contention accounting. Satisfies Lockable and is a
// thread-safety capability.
class CAPABILITY("mutex") ProfiledMutex {
public:
    explicit ProfiledMutex(std::string_view name)
        : stats_(&locks().get(name)), rank_(lock_rank_of(name)) {}
    ProfiledMutex(const ProfiledMutex&) = delete;
    ProfiledMutex& operator=(const ProfiledMutex&) = delete;

    void lock() ACQUIRE() {
        // Record (and order-check) before blocking: the thread does
        // nothing else while it waits, so the early push is equivalent,
        // and an inversion reports before it can deadlock.
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_);
        }
        if (mu_.try_lock()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock() TRY_ACQUIRE(true) {
        if (!mu_.try_lock()) return false;
        // Recorded but not enforced: a failed try_lock cannot deadlock,
        // and try-then-back-off is the legitimate escape from the
        // hierarchy. Locks taken *under* this hold are still checked.
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_, /*enforce=*/false);
        }
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock() RELEASE() {
        if (rank_.rank != 0) detail::lock_order_release(this);
        mu_.unlock();
    }

    [[nodiscard]] const LockStats& stats() const { return *stats_; }
    [[nodiscard]] const LockRank& rank() const { return rank_; }

private:
    std::mutex mu_;
    LockStats* stats_;
    LockRank rank_;
};

// std::shared_mutex with contention accounting on both the exclusive and
// the shared path. Satisfies SharedLockable and is a thread-safety
// capability.
class CAPABILITY("mutex") ProfiledSharedMutex {
public:
    explicit ProfiledSharedMutex(std::string_view name)
        : stats_(&locks().get(name)), rank_(lock_rank_of(name)) {}
    ProfiledSharedMutex(const ProfiledSharedMutex&) = delete;
    ProfiledSharedMutex& operator=(const ProfiledSharedMutex&) = delete;

    void lock() ACQUIRE() {
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_);
        }
        if (mu_.try_lock()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock() TRY_ACQUIRE(true) {
        if (!mu_.try_lock()) return false;
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_, /*enforce=*/false);
        }
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock() RELEASE() {
        if (rank_.rank != 0) detail::lock_order_release(this);
        mu_.unlock();
    }

    void lock_shared() ACQUIRE_SHARED() {
        // Shared holders participate in the hierarchy too: holding
        // srv.model shared while taking srv.cache_shard must still rank.
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_);
        }
        if (mu_.try_lock_shared()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock_shared();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock_shared();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
        if (!mu_.try_lock_shared()) return false;
        if (rank_.rank != 0 && lock_order_checking_enabled()) {
            detail::lock_order_acquire(this, rank_, /*enforce=*/false);
        }
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock_shared() RELEASE_SHARED() {
        if (rank_.rank != 0) detail::lock_order_release(this);
        mu_.unlock_shared();
    }

    [[nodiscard]] const LockStats& stats() const { return *stats_; }
    [[nodiscard]] const LockRank& rank() const { return rank_; }

private:
    std::shared_mutex mu_;
    LockStats* stats_;
    LockRank rank_;
};

// Scoped locks the thread-safety analysis can see through. Use these
// instead of std::lock_guard / std::unique_lock / std::shared_lock.

class SCOPED_CAPABILITY ProfiledMutexLock {
public:
    explicit ProfiledMutexLock(ProfiledMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~ProfiledMutexLock() RELEASE() { mu_.unlock(); }

    ProfiledMutexLock(const ProfiledMutexLock&) = delete;
    ProfiledMutexLock& operator=(const ProfiledMutexLock&) = delete;

private:
    ProfiledMutex& mu_;
};

// Exclusive (writer) hold of a ProfiledSharedMutex.
class SCOPED_CAPABILITY ProfiledWriteLock {
public:
    explicit ProfiledWriteLock(ProfiledSharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~ProfiledWriteLock() RELEASE() { mu_.unlock(); }

    ProfiledWriteLock(const ProfiledWriteLock&) = delete;
    ProfiledWriteLock& operator=(const ProfiledWriteLock&) = delete;

private:
    ProfiledSharedMutex& mu_;
};

// Shared (reader) hold of a ProfiledSharedMutex.
class SCOPED_CAPABILITY ProfiledReadLock {
public:
    explicit ProfiledReadLock(ProfiledSharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
        mu_.lock_shared();
    }
    ~ProfiledReadLock() RELEASE() { mu_.unlock_shared(); }

    ProfiledReadLock(const ProfiledReadLock&) = delete;
    ProfiledReadLock& operator=(const ProfiledReadLock&) = delete;

private:
    ProfiledSharedMutex& mu_;
};

}  // namespace agenp::obs
