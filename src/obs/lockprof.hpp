// Lock-contention profiling: drop-in mutex wrappers that attribute wait
// time to named locks (DESIGN.md section "Observability").
//
// The serving layer's scaling questions ("where do the cache-off threads
// stall?") cannot be answered by latency histograms alone — they need to
// know which lock was waited on and for how long. ProfiledMutex and
// ProfiledSharedMutex satisfy the standard Lockable / SharedLockable
// requirements, so std::lock_guard / std::unique_lock / std::shared_lock
// work unchanged, and record per-lock:
//   - acquisitions: every successful lock (shared or exclusive),
//   - contentions: acquisitions that lost the try_lock fast path,
//   - wait_us:     histogram of slow-path wait time.
//
// Cost model: the uncontended path is one try_lock plus one relaxed
// atomic add — near-zero. Only the contended path reads the clock. With
// set_lock_profiling_enabled(false) even the counter bump is skipped and
// the wrappers degenerate to a plain try_lock/lock pair.
//
// Stats objects are owned by a process-wide LockRegistry keyed by name;
// several mutexes may share one name (the 16 decision-cache shard locks
// all report as "srv.cache_shard"), aggregating naturally.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace agenp::obs {

// Global kill switch, independent of metrics_enabled(): lock profiling
// defaults to on because its fast path is one relaxed add.
bool lock_profiling_enabled();
void set_lock_profiling_enabled(bool enabled);

// Per-named-lock instrument. All mutation is lock-free.
class LockStats {
public:
    void record_uncontended() { acquisitions_.add(1); }
    void record_contended(std::uint64_t wait_ns) {
        acquisitions_.add(1);
        contentions_.add(1);
        wait_us_.observe(wait_ns / 1000);
    }

    [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_.value(); }
    [[nodiscard]] std::uint64_t contentions() const { return contentions_.value(); }
    [[nodiscard]] Histogram::Snapshot wait_us() const { return wait_us_.snapshot(); }

    void reset() {
        acquisitions_.reset();
        contentions_.reset();
        wait_us_.reset();
    }

private:
    Counter acquisitions_;
    Counter contentions_;
    Histogram wait_us_;
};

struct LockStatsSnapshot {
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    Histogram::Snapshot wait_us;

    [[nodiscard]] double contention_rate() const {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(contentions) / static_cast<double>(acquisitions);
    }
};

class LockRegistry {
public:
    // Stable for the life of the process; same name -> same instrument.
    LockStats& get(std::string_view name);

    [[nodiscard]] std::vector<LockStatsSnapshot> snapshot() const;

    // {"name":{"acquisitions":..,"contentions":..,"wait_us_total":..,
    //          "wait_us_p50":..,"wait_us_p99":..,"wait_us_max":..},...}
    [[nodiscard]] std::string render_json() const;
    // Aligned table sorted by total wait descending.
    [[nodiscard]] std::string render_text() const;

    // Zeroes every instrument (names stay registered).
    void reset();

    LockRegistry();
    ~LockRegistry();
    LockRegistry(const LockRegistry&) = delete;
    LockRegistry& operator=(const LockRegistry&) = delete;

private:
    struct Impl;
    Impl* impl_;
};

// The process-wide registry. Never destroyed (the symbol intern table's
// locks may be used during static teardown).
LockRegistry& locks();

// std::mutex with contention accounting. Satisfies Lockable.
class ProfiledMutex {
public:
    explicit ProfiledMutex(std::string_view name) : stats_(&locks().get(name)) {}
    ProfiledMutex(const ProfiledMutex&) = delete;
    ProfiledMutex& operator=(const ProfiledMutex&) = delete;

    void lock() {
        if (mu_.try_lock()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock() {
        if (!mu_.try_lock()) return false;
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock() { mu_.unlock(); }

    [[nodiscard]] const LockStats& stats() const { return *stats_; }

private:
    std::mutex mu_;
    LockStats* stats_;
};

// std::shared_mutex with contention accounting on both the exclusive and
// the shared path. Satisfies SharedLockable.
class ProfiledSharedMutex {
public:
    explicit ProfiledSharedMutex(std::string_view name) : stats_(&locks().get(name)) {}
    ProfiledSharedMutex(const ProfiledSharedMutex&) = delete;
    ProfiledSharedMutex& operator=(const ProfiledSharedMutex&) = delete;

    void lock() {
        if (mu_.try_lock()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock() {
        if (!mu_.try_lock()) return false;
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock() { mu_.unlock(); }

    void lock_shared() {
        if (mu_.try_lock_shared()) {
            if (lock_profiling_enabled()) stats_->record_uncontended();
            return;
        }
        if (!lock_profiling_enabled()) {
            mu_.lock_shared();
            return;
        }
        std::uint64_t start = monotonic_ns();
        mu_.lock_shared();
        stats_->record_contended(monotonic_ns() - start);
    }

    bool try_lock_shared() {
        if (!mu_.try_lock_shared()) return false;
        if (lock_profiling_enabled()) stats_->record_uncontended();
        return true;
    }

    void unlock_shared() { mu_.unlock_shared(); }

    [[nodiscard]] const LockStats& stats() const { return *stats_; }

private:
    std::shared_mutex mu_;
    LockStats* stats_;
};

}  // namespace agenp::obs
