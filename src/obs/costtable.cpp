#include "obs/costtable.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <mutex>
#include <tuple>

#include "util/mutex.hpp"

namespace agenp::obs {
namespace {

double load_double(const std::atomic<std::uint64_t>& bits) {
    return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

void store_double(std::atomic<std::uint64_t>& bits, double value) {
    bits.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

}  // namespace

void CostCell::observe(std::uint64_t elapsed_us) {
    bool first = calls_.fetch_add(1, std::memory_order_relaxed) == 0;
    total_us_.fetch_add(elapsed_us, std::memory_order_relaxed);
    auto sample = static_cast<double>(elapsed_us);
    std::uint64_t prev = ewma_us_bits_.load(std::memory_order_relaxed);
    for (;;) {
        double next = first && prev == 0
                          ? sample
                          : CostTable::kCostAlpha * sample +
                                (1.0 - CostTable::kCostAlpha) * std::bit_cast<double>(prev);
        if (ewma_us_bits_.compare_exchange_weak(prev, std::bit_cast<std::uint64_t>(next),
                                                std::memory_order_relaxed)) {
            break;
        }
        first = false;  // someone else published a value meanwhile
    }
}

double CostCell::ewma_us() const { return load_double(ewma_us_bits_); }

double CostCell::frequency_hz() const { return load_double(freq_hz_bits_); }

void CostCell::tick(std::uint64_t now_ns) {
    std::uint64_t calls = calls_.load(std::memory_order_relaxed);
    if (last_tick_ns_ != 0 && now_ns > last_tick_ns_) {
        double dt = static_cast<double>(now_ns - last_tick_ns_) / 1e9;
        double instant = static_cast<double>(calls - last_calls_) / dt;
        double prev = frequency_hz();
        double next = freq_hz_bits_.load(std::memory_order_relaxed) == 0
                          ? instant
                          : CostTable::kFreqAlpha * instant +
                                (1.0 - CostTable::kFreqAlpha) * prev;
        store_double(freq_hz_bits_, next);
    }
    last_calls_ = calls;
    last_tick_ns_ = now_ns;
}

struct CostTable::Impl {
    mutable util::Mutex mu;
    // deque: stable element addresses across registration. The CostCell
    // atomics are written lock-free by observe(); the cell *list* and the
    // non-atomic tick bookkeeping inside each cell mutate only under mu.
    std::deque<std::pair<std::string, CostCell>> cells GUARDED_BY(mu);
};

CostTable::CostTable() : impl_(new Impl) {}
CostTable::~CostTable() { delete impl_; }

CostCell& CostTable::cell(std::string_view check) {
    util::MutexLock lock(impl_->mu);
    for (auto& [name, cell] : impl_->cells) {
        if (name == check) return cell;
    }
    // CostCell holds atomics (immovable); construct it in place.
    impl_->cells.emplace_back(std::piecewise_construct, std::forward_as_tuple(check),
                              std::forward_as_tuple());
    return impl_->cells.back().second;
}

void CostTable::tick() {
    std::uint64_t now = monotonic_ns();
    util::MutexLock lock(impl_->mu);
    for (auto& [name, cell] : impl_->cells) cell.tick(now);
}

std::vector<CostEntry> CostTable::snapshot() const {
    std::vector<CostEntry> entries;
    {
        util::MutexLock lock(impl_->mu);
        entries.reserve(impl_->cells.size());
        for (const auto& [name, cell] : impl_->cells) {
            CostEntry entry;
            entry.check = name;
            entry.calls = cell.calls();
            entry.total_us = cell.total_us();
            entry.ewma_us = cell.ewma_us();
            entry.frequency_hz = cell.frequency_hz();
            entry.us_per_s = entry.ewma_us * entry.frequency_hz;
            entries.push_back(std::move(entry));
        }
    }
    std::sort(entries.begin(), entries.end(), [](const CostEntry& a, const CostEntry& b) {
        return a.us_per_s != b.us_per_s ? a.us_per_s > b.us_per_s : a.check < b.check;
    });
    return entries;
}

std::string CostTable::render_json() const {
    std::string out = "[";
    char buf[128];
    bool first = true;
    for (const CostEntry& entry : snapshot()) {
        if (!first) out += ',';
        first = false;
        out += "{\"check\":\"" + json_escape(entry.check) + "\"";
        out += ",\"calls\":" + std::to_string(entry.calls);
        out += ",\"total_us\":" + std::to_string(entry.total_us);
        std::snprintf(buf, sizeof(buf), ",\"ewma_us\":%.2f,\"hz\":%.3f,\"us_per_s\":%.2f}",
                      entry.ewma_us, entry.frequency_hz, entry.us_per_s);
        out += buf;
    }
    out += "]";
    return out;
}

std::string CostTable::render_text() const {
    std::string out = "check                     calls     ewma_us        hz    us_per_s\n";
    char line[192];
    for (const CostEntry& entry : snapshot()) {
        std::snprintf(line, sizeof(line), "%-22s %9llu %11.2f %9.3f %11.2f\n",
                      entry.check.c_str(),
                      static_cast<unsigned long long>(entry.calls), entry.ewma_us,
                      entry.frequency_hz, entry.us_per_s);
        out += line;
    }
    return out;
}

void CostTable::reset() {
    util::MutexLock lock(impl_->mu);
    for (auto& [name, cell] : impl_->cells) {
        cell.calls_.store(0, std::memory_order_relaxed);
        cell.total_us_.store(0, std::memory_order_relaxed);
        cell.ewma_us_bits_.store(0, std::memory_order_relaxed);
        cell.freq_hz_bits_.store(0, std::memory_order_relaxed);
        cell.last_calls_ = 0;
        cell.last_tick_ns_ = 0;
    }
}

CostTable& costs() {
    static CostTable table;
    return table;
}

}  // namespace agenp::obs
