#include "obs/lockprof.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"

namespace agenp::obs {

namespace {

std::atomic<bool> g_lock_profiling_enabled{true};

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

}  // namespace

bool lock_profiling_enabled() {
    return g_lock_profiling_enabled.load(std::memory_order_relaxed);
}

void set_lock_profiling_enabled(bool enabled) {
    g_lock_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

struct LockRegistry::Impl {
    mutable std::mutex mutex;
    // std::map keeps node (and thus reference) stability on insert.
    std::map<std::string, LockStats, std::less<>> stats;
};

LockRegistry::LockRegistry() : impl_(new Impl) {}
LockRegistry::~LockRegistry() { delete impl_; }

LockStats& LockRegistry::get(std::string_view name) {
    // Lock names surface as `lock` label values in the metrics exposition;
    // keep them to the registry naming grammar so exporters never escape.
    assert(valid_metric_name(name));
    std::lock_guard lock(impl_->mutex);
    auto it = impl_->stats.find(name);
    if (it == impl_->stats.end()) {
        it = impl_->stats.try_emplace(std::string(name)).first;
    }
    return it->second;
}

std::vector<LockStatsSnapshot> LockRegistry::snapshot() const {
    std::lock_guard lock(impl_->mutex);
    std::vector<LockStatsSnapshot> out;
    out.reserve(impl_->stats.size());
    for (const auto& [name, s] : impl_->stats) {
        LockStatsSnapshot snap;
        snap.name = name;
        snap.acquisitions = s.acquisitions();
        snap.contentions = s.contentions();
        snap.wait_us = s.wait_us();
        out.push_back(std::move(snap));
    }
    return out;
}

std::string LockRegistry::render_json() const {
    auto snaps = snapshot();
    std::string out = "{";
    bool first = true;
    for (const auto& s : snaps) {
        if (!first) out += ",";
        out += "\"" + json_escape(s.name) + "\":{";
        out += "\"acquisitions\":" + std::to_string(s.acquisitions);
        out += ",\"contentions\":" + std::to_string(s.contentions);
        out += ",\"wait_us_total\":" + std::to_string(s.wait_us.sum);
        out += ",\"wait_us_p50\":" + format_double(s.wait_us.quantile(0.5));
        out += ",\"wait_us_p99\":" + format_double(s.wait_us.quantile(0.99));
        out += ",\"wait_us_max\":" + std::to_string(s.wait_us.max);
        out += "}";
        first = false;
    }
    out += "}";
    return out;
}

std::string LockRegistry::render_text() const {
    auto snaps = snapshot();
    std::sort(snaps.begin(), snaps.end(), [](const LockStatsSnapshot& a, const LockStatsSnapshot& b) {
        return a.wait_us.sum > b.wait_us.sum;
    });
    std::size_t width = 4;
    for (const auto& s : snaps) width = std::max(width, s.name.size());
    std::string out = "lock" + std::string(width - 4 + 2, ' ') +
                      "    acquires    contended      wait_us  wait_p99_us\n";
    for (const auto& s : snaps) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%12llu %12llu %12llu %12.1f\n",
                      static_cast<unsigned long long>(s.acquisitions),
                      static_cast<unsigned long long>(s.contentions),
                      static_cast<unsigned long long>(s.wait_us.sum), s.wait_us.quantile(0.99));
        out += s.name + std::string(width - s.name.size() + 2, ' ') + buf;
    }
    return out;
}

void LockRegistry::reset() {
    std::lock_guard lock(impl_->mutex);
    for (auto& [_, s] : impl_->stats) s.reset();
}

LockRegistry& locks() {
    // Intentionally leaked: the symbol intern table locks through this
    // registry and may run during static destruction.
    static LockRegistry* registry = new LockRegistry;
    return *registry;
}

}  // namespace agenp::obs
