#include "obs/lockprof.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace agenp::obs {

namespace {

std::atomic<bool> g_lock_profiling_enabled{true};

// Order checking is a debugging aid: on by default only when asserts
// are, so release servers and bench_serve never pay for it unless asked.
std::atomic<bool> g_lock_order_checking{
#ifdef NDEBUG
    false
#else
    true
#endif
};

// The global lock hierarchy (DESIGN.md section 12). Acquisition order
// must be strictly increasing in rank within a thread. Names not listed
// here are unranked (exempt).
struct LockRankEntry {
    std::string_view name;
    int rank;
};
constexpr LockRankEntry kLockRanks[] = {
    {"srv.model", 10},       // DecisionService state_mu_ (shared: decide, excl: update)
    {"srv.cache_shard", 20},  // DecisionCache shard locks, taken under srv.model
    {"asg.memo", 25},         // grounding-memo shards, taken under srv.model; never
                              // nested with srv.cache_shard (probe vs decide paths)
    {"srv.monitor", 30},      // feedback monitor, taken under srv.model
    {"srv.audit", 40},        // audit log rotation/append
    {"srv.conn.outbox", 50},  // per-connection worker->loop handoff
    {"symbol.intern", 60},    // intern shards; interning happens under srv.model
};

// Per-thread stack of held ranked locks. Depth is tiny (the hierarchy is
// seven names and nesting never exceeds three); a fixed array keeps the
// bookkeeping allocation-free.
struct HeldLock {
    const void* mu;
    int rank;
    const char* name;
};
constexpr int kMaxHeld = 16;
thread_local HeldLock t_held[kMaxHeld];
thread_local int t_held_count = 0;

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

}  // namespace

bool lock_profiling_enabled() {
    return g_lock_profiling_enabled.load(std::memory_order_relaxed);
}

void set_lock_profiling_enabled(bool enabled) {
    g_lock_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

bool lock_order_checking_enabled() {
    return g_lock_order_checking.load(std::memory_order_relaxed);
}

void set_lock_order_checking(bool enabled) {
    g_lock_order_checking.store(enabled, std::memory_order_relaxed);
}

LockRank lock_rank_of(std::string_view name) {
    for (const auto& entry : kLockRanks) {
        if (entry.name == name) return {entry.rank, entry.name.data()};
    }
    return {};
}

namespace detail {

void lock_order_acquire(const void* mu, const LockRank& rank, bool enforce) {
    if (enforce) {
        for (int i = 0; i < t_held_count; ++i) {
            if (t_held[i].rank >= rank.rank) {
                // Report before blocking: under another interleaving this
                // acquisition order is a deadlock, so treat it like a
                // failed assert.
                std::fprintf(stderr,
                             "agenp: lock-order inversion: acquiring \"%s\" (rank %d) while "
                             "holding \"%s\" (rank %d); the global hierarchy (DESIGN.md "
                             "section 12) requires strictly increasing ranks\n",
                             rank.name, rank.rank, t_held[i].name, t_held[i].rank);
                std::abort();
            }
        }
    }
    if (t_held_count < kMaxHeld) {
        t_held[t_held_count++] = {mu, rank.rank, rank.name};
    }
}

void lock_order_release(const void* mu) {
    // Last-in search: releases are almost always LIFO, and a no-match
    // scan (entries recorded before a toggle, or none at all) is a
    // handful of compares.
    for (int i = t_held_count - 1; i >= 0; --i) {
        if (t_held[i].mu == mu) {
            for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
            --t_held_count;
            return;
        }
    }
}

}  // namespace detail

struct LockRegistry::Impl {
    mutable util::Mutex mutex;
    // std::map keeps node (and thus reference) stability on insert.
    std::map<std::string, LockStats, std::less<>> stats GUARDED_BY(mutex);
};

LockRegistry::LockRegistry() : impl_(new Impl) {}
LockRegistry::~LockRegistry() { delete impl_; }

LockStats& LockRegistry::get(std::string_view name) {
    // Lock names surface as `lock` label values in the metrics exposition;
    // keep them to the registry naming grammar so exporters never escape.
    assert(valid_metric_name(name));
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->stats.find(name);
    if (it == impl_->stats.end()) {
        it = impl_->stats.try_emplace(std::string(name)).first;
    }
    return it->second;
}

std::vector<LockStatsSnapshot> LockRegistry::snapshot() const {
    util::MutexLock lock(impl_->mutex);
    std::vector<LockStatsSnapshot> out;
    out.reserve(impl_->stats.size());
    for (const auto& [name, s] : impl_->stats) {
        LockStatsSnapshot snap;
        snap.name = name;
        snap.acquisitions = s.acquisitions();
        snap.contentions = s.contentions();
        snap.wait_us = s.wait_us();
        out.push_back(std::move(snap));
    }
    return out;
}

std::string LockRegistry::render_json() const {
    auto snaps = snapshot();
    std::string out = "{";
    bool first = true;
    for (const auto& s : snaps) {
        if (!first) out += ",";
        out += "\"" + json_escape(s.name) + "\":{";
        out += "\"acquisitions\":" + std::to_string(s.acquisitions);
        out += ",\"contentions\":" + std::to_string(s.contentions);
        out += ",\"wait_us_total\":" + std::to_string(s.wait_us.sum);
        out += ",\"wait_us_p50\":" + format_double(s.wait_us.quantile(0.5));
        out += ",\"wait_us_p99\":" + format_double(s.wait_us.quantile(0.99));
        out += ",\"wait_us_max\":" + std::to_string(s.wait_us.max);
        out += "}";
        first = false;
    }
    out += "}";
    return out;
}

std::string LockRegistry::render_text() const {
    auto snaps = snapshot();
    std::sort(snaps.begin(), snaps.end(), [](const LockStatsSnapshot& a, const LockStatsSnapshot& b) {
        return a.wait_us.sum > b.wait_us.sum;
    });
    std::size_t width = 4;
    for (const auto& s : snaps) width = std::max(width, s.name.size());
    std::string out = "lock" + std::string(width - 4 + 2, ' ') +
                      "    acquires    contended      wait_us  wait_p99_us\n";
    for (const auto& s : snaps) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%12llu %12llu %12llu %12.1f\n",
                      static_cast<unsigned long long>(s.acquisitions),
                      static_cast<unsigned long long>(s.contentions),
                      static_cast<unsigned long long>(s.wait_us.sum), s.wait_us.quantile(0.99));
        out += s.name + std::string(width - s.name.size() + 2, ' ') + buf;
    }
    return out;
}

void LockRegistry::reset() {
    util::MutexLock lock(impl_->mutex);
    for (auto& [_, s] : impl_->stats) s.reset();
}

LockRegistry& locks() {
    // Intentionally leaked: the symbol intern table locks through this
    // registry and may run during static destruction.
    static LockRegistry* registry = new LockRegistry;
    return *registry;
}

}  // namespace agenp::obs
