#include "obs/export/push.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace agenp::obs {

GraphitePusher::GraphitePusher(PushOptions options,
                               std::function<std::string(std::time_t)> render)
    : options_(std::move(options)), render_(std::move(render)) {
    if (options_.interval.count() <= 0) options_.interval = std::chrono::seconds{1};
    thread_ = std::thread([this] { run(); });
}

GraphitePusher::~GraphitePusher() { stop(); }

void GraphitePusher::stop() {
    {
        util::MutexLock lock(mutex_);
        if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void GraphitePusher::run() {
    // Push immediately on startup (metrics appear without waiting out the
    // first interval), then once per interval until stopped.
    while (!stopping_.load(std::memory_order_acquire)) {
        if (push_once()) {
            pushes_.fetch_add(1, std::memory_order_relaxed);
        } else {
            failures_.fetch_add(1, std::memory_order_relaxed);
        }
        util::MutexLock lock(mutex_);
        // stop() stores stopping_ under mutex_, so this re-check cannot
        // lose the notify. A spurious wakeup just pushes early.
        if (!stopping_.load(std::memory_order_acquire)) {
            (void)cv_.wait_for(mutex_, options_.interval);
        }
    }
}

bool GraphitePusher::push_once() {
    std::string payload = render_(std::time(nullptr));
    if (payload.empty()) return true;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    std::string service = std::to_string(options_.port);
    if (::getaddrinfo(options_.host.c_str(), service.c_str(), &hints, &res) != 0) return false;
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return false;

    bool ok = true;
    std::size_t sent = 0;
    while (sent < payload.size()) {
        ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        ok = false;
        break;
    }
    ::close(fd);
    return ok;
}

}  // namespace agenp::obs
