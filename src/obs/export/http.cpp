#include "obs/export/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/errors.hpp"
#include "util/mutex.hpp"

namespace agenp::obs {

namespace {

void set_nonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

const char* status_text(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 503: return "Service Unavailable";
        default: return "Status";
    }
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

std::string_view trim_sp(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      status_text(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
    out += "\r\n";
    out += response.body;
    return out;
}

}  // namespace

struct HttpServer::Impl {
    HttpServerOptions options;
    HttpHandler handler;

    int listen_fd = -1;
    int wake_r = -1;
    int wake_w = -1;
    std::uint16_t port = 0;
    std::thread loop;
    std::atomic<bool> stopping{false};
    util::Mutex shutdown_mu;
    bool shut_down GUARDED_BY(shutdown_mu) = false;

    struct Connection {
        int fd = -1;
        std::string read_buf;
        std::string write_buf;
        std::chrono::steady_clock::time_point last_activity;
        bool close_after_flush = false;
    };
    std::vector<Connection> conns;  // loop thread only

    Impl(HttpServerOptions options_in, HttpHandler handler_in)
        : options(std::move(options_in)), handler(std::move(handler_in)) {
        if (options.max_connections == 0) options.max_connections = 1;
        if (options.max_header_bytes == 0) options.max_header_bytes = 1024;
    }

    ~Impl() {
        if (listen_fd >= 0) ::close(listen_fd);
        if (wake_r >= 0) ::close(wake_r);
        if (wake_w >= 0) ::close(wake_w);
    }

    void open_listener() {
        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd < 0) throw std::runtime_error("socket: " + util::errno_string());
        int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options.port);
        if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
            throw std::runtime_error("bad metrics bind address: " + options.bind_address);
        }
        if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            throw std::runtime_error("bind " + options.bind_address + ":" +
                                     std::to_string(options.port) + ": " + util::errno_string());
        }
        if (::listen(listen_fd, 16) != 0) {
            throw std::runtime_error("listen: " + util::errno_string());
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
        port = ntohs(bound.sin_port);
        set_nonblocking(listen_fd);

        int pipefd[2];
        if (::pipe(pipefd) != 0) throw std::runtime_error("pipe: " + util::errno_string());
        wake_r = pipefd[0];
        wake_w = pipefd[1];
        set_nonblocking(wake_r);
        set_nonblocking(wake_w);
    }

    void wake() {
        char b = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_w, &b, 1);
    }

    void close_conn(Connection& conn) {
        if (conn.fd < 0) return;
        ::close(conn.fd);
        conn.fd = -1;
    }

    void reap() {
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Connection& c) { return c.fd < 0; }),
                    conns.end());
    }

    void respond(Connection& conn, const HttpResponse& response, bool keep_alive) {
        conn.write_buf += render_response(response, keep_alive);
        if (!keep_alive) conn.close_after_flush = true;
    }

    // Parses and answers every complete request in the read buffer.
    // Returns false when the connection should stop reading (error).
    void process_requests(Connection& conn) {
        while (conn.fd >= 0 && !conn.close_after_flush) {
            std::size_t end = conn.read_buf.find("\r\n\r\n");
            std::size_t skip = 4;
            if (end == std::string::npos) {
                end = conn.read_buf.find("\n\n");
                skip = 2;
            }
            if (end == std::string::npos) {
                if (conn.read_buf.size() > options.max_header_bytes) {
                    respond(conn, {400, "text/plain; charset=utf-8", "header too large\n"},
                            false);
                }
                return;
            }
            std::string head = conn.read_buf.substr(0, end);
            conn.read_buf.erase(0, end + skip);

            // Request line: METHOD SP TARGET SP HTTP/1.x
            std::size_t line_end = head.find('\n');
            std::string_view request_line(head);
            if (line_end != std::string::npos) request_line = request_line.substr(0, line_end);
            request_line = trim_sp(request_line);
            std::size_t sp1 = request_line.find(' ');
            std::size_t sp2 = sp1 == std::string_view::npos
                                  ? std::string_view::npos
                                  : request_line.find(' ', sp1 + 1);
            if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
                respond(conn, {400, "text/plain; charset=utf-8", "malformed request line\n"},
                        false);
                return;
            }
            HttpRequest request;
            request.method = std::string(request_line.substr(0, sp1));
            std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
            std::string_view version = trim_sp(request_line.substr(sp2 + 1));
            if (std::size_t q = target.find('?'); q != std::string_view::npos) {
                request.query = std::string(target.substr(q + 1));
                target = target.substr(0, q);
            }
            request.path = std::string(target);

            // HTTP/1.1 defaults to keep-alive; 1.0 and `Connection: close`
            // close after the response.
            bool keep_alive = version == "HTTP/1.1";
            std::string_view rest(head);
            if (line_end != std::string::npos) rest = rest.substr(line_end + 1);
            while (!rest.empty()) {
                std::size_t nl = rest.find('\n');
                std::string_view line = nl == std::string_view::npos ? rest : rest.substr(0, nl);
                rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
                std::size_t colon = line.find(':');
                if (colon == std::string_view::npos) continue;
                std::string_view key = trim_sp(line.substr(0, colon));
                std::string_view value = trim_sp(line.substr(colon + 1));
                if (iequals(key, "connection")) {
                    if (iequals(value, "close")) keep_alive = false;
                    if (iequals(value, "keep-alive")) keep_alive = true;
                }
            }

            if (request.method != "GET") {
                respond(conn, {405, "text/plain; charset=utf-8", "only GET is supported\n"},
                        keep_alive);
                continue;
            }
            respond(conn, handler(request), keep_alive);
        }
    }

    void read_from(Connection& conn) {
        char buf[4096];
        while (conn.fd >= 0) {
            ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
            if (n > 0) {
                conn.last_activity = std::chrono::steady_clock::now();
                conn.read_buf.append(buf, static_cast<std::size_t>(n));
                process_requests(conn);
                if (static_cast<std::size_t>(n) < sizeof buf) return;
                continue;
            }
            if (n == 0) {  // client closed; flush whatever is queued, then close
                conn.close_after_flush = true;
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            close_conn(conn);
            return;
        }
    }

    void flush(Connection& conn) {
        while (conn.fd >= 0 && !conn.write_buf.empty()) {
            ssize_t n = ::send(conn.fd, conn.write_buf.data(), conn.write_buf.size(),
                               MSG_NOSIGNAL);
            if (n > 0) {
                conn.write_buf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            close_conn(conn);
            return;
        }
        if (conn.fd >= 0 && conn.close_after_flush && conn.write_buf.empty()) close_conn(conn);
    }

    void accept_new() {
        while (true) {
            int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;
            }
            if (conns.size() >= options.max_connections) {
                ::close(fd);
                continue;
            }
            set_nonblocking(fd);
            Connection conn;
            conn.fd = fd;
            conn.last_activity = std::chrono::steady_clock::now();
            conns.push_back(std::move(conn));
        }
    }

    void check_idle() {
        if (options.idle_timeout.count() <= 0) return;
        auto now = std::chrono::steady_clock::now();
        for (Connection& conn : conns) {
            if (conn.fd < 0 || !conn.write_buf.empty()) continue;
            if (now - conn.last_activity >= options.idle_timeout) close_conn(conn);
        }
    }

    void run() {
        std::vector<pollfd> pfds;
        std::vector<std::size_t> polled;
        while (!stopping.load(std::memory_order_acquire)) {
            pfds.clear();
            polled.clear();
            pfds.push_back({wake_r, POLLIN, 0});
            pfds.push_back({listen_fd, POLLIN, 0});
            for (std::size_t i = 0; i < conns.size(); ++i) {
                if (conns[i].fd < 0) continue;
                short events = POLLIN;
                if (!conns[i].write_buf.empty()) events |= POLLOUT;
                pfds.push_back({conns[i].fd, events, 0});
                polled.push_back(i);
            }
            int timeout = options.idle_timeout.count() > 0 ? 1000 : -1;
            int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout);
            if (rc < 0 && errno != EINTR) break;
            if (pfds[0].revents != 0) {
                char buf[64];
                while (::read(wake_r, buf, sizeof buf) > 0) {
                }
            }
            if (pfds[1].revents != 0) accept_new();
            for (std::size_t i = 2; i < pfds.size(); ++i) {
                Connection& conn = conns[polled[i - 2]];
                if (conn.fd < 0) continue;
                if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_from(conn);
                if (conn.fd >= 0) flush(conn);
            }
            check_idle();
            reap();
        }
        for (Connection& conn : conns) close_conn(conn);
        reap();
    }
};

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : impl_(std::make_unique<Impl>(std::move(options), std::move(handler))) {
    impl_->open_listener();
    port_ = impl_->port;
    impl_->loop = std::thread([impl = impl_.get()] { impl->run(); });
}

HttpServer::~HttpServer() { shutdown(); }

void HttpServer::shutdown() {
    if (impl_ == nullptr) return;
    util::MutexLock lock(impl_->shutdown_mu);
    if (impl_->shut_down) return;
    impl_->shut_down = true;
    impl_->stopping.store(true, std::memory_order_release);
    impl_->wake();
    if (impl_->loop.joinable()) impl_->loop.join();
}

std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   const std::string& path, std::chrono::milliseconds timeout) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    std::string service = std::to_string(port);
    if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) return std::nullopt;
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return std::nullopt;

    std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        ::close(fd);
        return std::nullopt;
    }

    std::string raw;
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
        pollfd pfd{fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining, 60000)));
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (rc == 0) break;
        char buf[4096];
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            raw.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        break;  // EOF or error: the response is complete (Connection: close)
    }
    ::close(fd);

    std::size_t head_end = raw.find("\r\n\r\n");
    std::size_t skip = 4;
    if (head_end == std::string::npos) {
        head_end = raw.find("\n\n");
        skip = 2;
    }
    if (head_end == std::string::npos) return std::nullopt;
    std::string head = raw.substr(0, head_end);

    HttpResult result;
    // Status line: HTTP/1.1 NNN Reason
    std::size_t sp = head.find(' ');
    if (sp == std::string::npos || sp + 4 > head.size()) return std::nullopt;
    result.status = std::atoi(head.c_str() + sp + 1);
    if (result.status < 100 || result.status > 599) return std::nullopt;
    std::size_t line_start = head.find('\n');
    while (line_start != std::string::npos && line_start + 1 < head.size()) {
        std::size_t line_end = head.find('\n', line_start + 1);
        std::string_view line(head.data() + line_start + 1,
                              (line_end == std::string::npos ? head.size() : line_end) -
                                  line_start - 1);
        std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
            std::string_view key = trim_sp(line.substr(0, colon));
            if (iequals(key, "content-type")) {
                result.content_type = std::string(trim_sp(line.substr(colon + 1)));
            }
        }
        line_start = line_end;
    }
    result.body = raw.substr(head_end + skip);
    return result;
}

std::string http_query_param(std::string_view query, std::string_view key) {
    while (!query.empty()) {
        std::size_t amp = query.find('&');
        std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
        query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
        std::size_t eq = pair.find('=');
        std::string_view k = eq == std::string_view::npos ? pair : pair.substr(0, eq);
        if (k == key) {
            return eq == std::string_view::npos ? std::string{}
                                                : std::string(pair.substr(eq + 1));
        }
    }
    return {};
}

}  // namespace agenp::obs
