#include "obs/export/exposition.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace agenp::obs {

namespace {

// Registry names that already carry the project prefix as their first
// segment (agenp.pdp.decisions) are not prefixed a second time.
bool has_project_prefix(std::string_view dotted) { return dotted.rfind("agenp.", 0) == 0; }

std::string prometheus_name(std::string_view dotted) {
    std::string out = has_project_prefix(dotted) ? "" : "agenp_";
    for (char c : dotted) out.push_back(c == '.' ? '_' : c);
    return out;
}

std::string graphite_path(std::string_view prefix, std::string_view dotted) {
    std::string out;
    if (!prefix.empty() && !(has_project_prefix(dotted) && prefix == "agenp")) {
        out.append(prefix);
        out.push_back('.');
    }
    out.append(dotted);
    return out;
}

void append_labels(std::string& out, const MetricLabels& labels) {
    if (labels.empty()) return;
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out.push_back(',');
        out += key;
        out += "=\"";
        out += prometheus_label_escape(value);
        out.push_back('"');
        first = false;
    }
    out.push_back('}');
}

// Labels plus one extra pair — the histogram `le` bucket bound.
void append_labels_le(std::string& out, const MetricLabels& labels, std::string_view le) {
    out.push_back('{');
    for (const auto& [key, value] : labels) {
        out += key;
        out += "=\"";
        out += prometheus_label_escape(value);
        out += "\",";
    }
    out += "le=\"";
    out += le;
    out += "\"}";
}

void append_graphite_tags(std::string& out, const MetricLabels& labels) {
    for (const auto& [key, value] : labels) {
        out.push_back(';');
        out += key;
        out.push_back('=');
        // Graphite tag values cannot contain ';' or whitespace; the label
        // values we emit (replica indices, lock names) never do, but
        // sanitize defensively so one odd value cannot corrupt the line.
        for (char c : value) {
            out.push_back((c == ';' || c == ' ' || c == '\n' || c == '\r' || c == '\t') ? '_' : c);
        }
    }
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

// Upper bound of bit-width bucket i: the largest value with bit_width == i
// is 2^i - 1 (bucket 0 holds only the value 0).
std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

}  // namespace

std::string prometheus_label_escape(std::string_view value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

Exposition::Family& Exposition::family(std::string_view name, char type, std::string_view help) {
    assert(valid_metric_name(name));
    for (Family& f : families_) {
        if (f.name == name) {
            assert(f.type == type);
            if (f.help.empty() && !help.empty()) f.help = help;
            return f;
        }
    }
    Family f;
    f.name = std::string(name);
    f.type = type;
    f.help = std::string(help);
    families_.push_back(std::move(f));
    return families_.back();
}

void Exposition::add_counter(std::string_view name, const MetricLabels& labels,
                             std::uint64_t value, std::string_view help) {
    Sample s;
    s.labels = labels;
    s.uvalue = value;
    family(name, 'c', help).samples.push_back(std::move(s));
}

void Exposition::add_gauge(std::string_view name, const MetricLabels& labels, std::int64_t value,
                           std::string_view help) {
    Sample s;
    s.labels = labels;
    s.ivalue = value;
    family(name, 'g', help).samples.push_back(std::move(s));
}

void Exposition::add_gauge_d(std::string_view name, const MetricLabels& labels, double value,
                             std::string_view help) {
    Sample s;
    s.labels = labels;
    s.dvalue = value;
    s.is_double = true;
    family(name, 'g', help).samples.push_back(std::move(s));
}

void Exposition::add_histogram(std::string_view name, const MetricLabels& labels,
                               const Histogram::Snapshot& snapshot, std::string_view help) {
    Sample s;
    s.labels = labels;
    s.hist = snapshot;
    family(name, 'h', help).samples.push_back(std::move(s));
}

void Exposition::append_registry(const MetricsRegistry& registry) {
    MetricsSnapshot snap = registry.snapshot();
    std::string name;
    MetricLabels labels;
    for (const auto& [key, value] : snap.counters) {
        if (!parse_metric_key(key, &name, &labels)) continue;
        add_counter(name, labels, value);
    }
    for (const auto& [key, value] : snap.gauges) {
        if (!parse_metric_key(key, &name, &labels)) continue;
        add_gauge(name, labels, value);
    }
    for (const auto& [key, value] : snap.histograms) {
        if (!parse_metric_key(key, &name, &labels)) continue;
        add_histogram(name, labels, value);
    }
}

void Exposition::append_locks(const LockRegistry& registry) {
    for (const LockStatsSnapshot& s : registry.snapshot()) {
        MetricLabels labels{{"lock", s.name}};
        add_counter("obs.lock.acquisitions", labels, s.acquisitions,
                    "Lock acquisitions by lock name");
        add_counter("obs.lock.contentions", labels, s.contentions,
                    "Contended lock acquisitions by lock name");
        add_histogram("obs.lock.wait_us", labels, s.wait_us,
                      "Lock wait time in microseconds by lock name");
    }
}

std::string Exposition::prometheus() const {
    std::vector<const Family*> sorted;
    sorted.reserve(families_.size());
    for (const Family& f : families_) sorted.push_back(&f);
    std::sort(sorted.begin(), sorted.end(),
              [](const Family* a, const Family* b) { return a->name < b->name; });

    std::string out;
    for (const Family* f : sorted) {
        std::string base = prometheus_name(f->name);
        // Counters carry the conventional `_total` suffix; the HELP/TYPE
        // lines name the full series the samples use.
        std::string series = f->type == 'c' ? base + "_total" : base;
        out += "# HELP " + series + " " +
               (f->help.empty() ? "agenp metric " + f->name : f->help) + "\n";
        out += "# TYPE " + series + " ";
        out += f->type == 'c' ? "counter" : (f->type == 'g' ? "gauge" : "histogram");
        out.push_back('\n');
        for (const Sample& s : f->samples) {
            if (f->type == 'c') {
                out += series;
                append_labels(out, s.labels);
                out += " " + std::to_string(s.uvalue) + "\n";
            } else if (f->type == 'g') {
                out += series;
                append_labels(out, s.labels);
                out += " " + (s.is_double ? format_double(s.dvalue) : std::to_string(s.ivalue)) +
                       "\n";
            } else {
                // Cumulative buckets up to the highest non-empty one, then
                // the mandatory le="+Inf" terminal bucket.
                std::size_t top = 0;
                for (std::size_t i = 0; i < s.hist.buckets.size(); ++i) {
                    if (s.hist.buckets[i] != 0) top = i;
                }
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i <= top && i < s.hist.buckets.size(); ++i) {
                    cumulative += s.hist.buckets[i];
                    out += series + "_bucket";
                    append_labels_le(out, s.labels, std::to_string(bucket_upper(i)));
                    out += " " + std::to_string(cumulative) + "\n";
                }
                out += series + "_bucket";
                append_labels_le(out, s.labels, "+Inf");
                out += " " + std::to_string(s.hist.count) + "\n";
                out += series + "_sum";
                append_labels(out, s.labels);
                out += " " + std::to_string(s.hist.sum) + "\n";
                out += series + "_count";
                append_labels(out, s.labels);
                out += " " + std::to_string(s.hist.count) + "\n";
            }
        }
    }
    return out;
}

std::string Exposition::graphite(std::string_view prefix, std::time_t timestamp) const {
    std::string out;
    std::string ts = " " + std::to_string(static_cast<long long>(timestamp)) + "\n";
    auto line = [&](const std::string& path, const MetricLabels& labels,
                    const std::string& value) {
        out += path;
        append_graphite_tags(out, labels);
        out += " " + value + ts;
    };
    for (const Family& f : families_) {
        std::string path = graphite_path(prefix, f.name);
        for (const Sample& s : f.samples) {
            if (f.type == 'c') {
                line(path, s.labels, std::to_string(s.uvalue));
            } else if (f.type == 'g') {
                line(path, s.labels,
                     s.is_double ? format_double(s.dvalue) : std::to_string(s.ivalue));
            } else {
                line(path + ".count", s.labels, std::to_string(s.hist.count));
                line(path + ".sum", s.labels, std::to_string(s.hist.sum));
                line(path + ".p50", s.labels, format_double(s.hist.quantile(0.5)));
                line(path + ".p99", s.labels, format_double(s.hist.quantile(0.99)));
                line(path + ".max", s.labels, std::to_string(s.hist.max));
            }
        }
    }
    return out;
}

}  // namespace agenp::obs
