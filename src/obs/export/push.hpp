// Graphite-style push exporter: a background thread that renders the
// current exposition every interval and writes it to `host:port` over a
// short-lived TCP connection (graphite plaintext protocol — one
// `path value timestamp` line per sample). The pull (`/metrics`) and push
// paths share the same Exposition enumerator, so both report identical
// samples; push exists for fleets whose collectors cannot scrape.
//
// Failures are counted, never fatal: an unreachable collector costs one
// connect attempt per interval and the serve loop never notices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <functional>
#include <string>
#include <thread>

#include "util/mutex.hpp"

namespace agenp::obs {

struct PushOptions {
    std::string host;
    std::uint16_t port = 0;
    std::chrono::seconds interval{10};
};

class GraphitePusher {
public:
    // `render(now)` returns the full plaintext payload for one push
    // (typically Exposition::graphite with the same enumeration the
    // /metrics handler uses). Called on the pusher thread.
    GraphitePusher(PushOptions options, std::function<std::string(std::time_t)> render);
    ~GraphitePusher();  // implies stop()

    GraphitePusher(const GraphitePusher&) = delete;
    GraphitePusher& operator=(const GraphitePusher&) = delete;

    // Stops the thread after at most one in-flight push. Idempotent.
    void stop();

    [[nodiscard]] std::uint64_t pushes() const {
        return pushes_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t failures() const {
        return failures_.load(std::memory_order_relaxed);
    }

private:
    void run();
    bool push_once();

    PushOptions options_;
    std::function<std::string(std::time_t)> render_;
    // stopping_ is atomic so run() can poll it between pushes without the
    // lock; stop() still flips it under mutex_ so the loop's
    // check-then-wait cannot miss the notify.
    util::Mutex mutex_;
    util::CondVar cv_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> pushes_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::thread thread_;
};

}  // namespace agenp::obs
