// Metric exposition: one enumeration of the process's telemetry rendered
// for external consumers. An Exposition is a collected snapshot — callers
// append instruments (usually via append_registry / append_locks, which
// split metric_key() encodings back into base name + labels) and then
// render the whole set either as Prometheus text exposition format 0.0.4
// (the `/metrics` pull path) or as graphite plaintext (the push path).
// Both renderings come from the same samples, so a fleet scraped by
// Prometheus and a fleet pushing to graphite report identical numbers.
//
// Name mapping: registry names are dot-separated (`srv.conn.accepted`);
// Prometheus output prefixes `agenp_` and maps dots to underscores
// (`agenp_srv_conn_accepted_total`), which is always charset-valid because
// registration asserts valid_metric_name(). Graphite output keeps the
// dotted form under a configurable prefix and renders labels as `;k=v`
// tags.
//
// Histograms are rendered as native Prometheus histograms: the bit-width
// bucket i (values v with bit_width(v) == i, i.e. [2^(i-1), 2^i)) becomes
// the cumulative bucket le="2^i - 1"; buckets above the highest non-empty
// one are trimmed and the mandatory le="+Inf" terminal bucket carries the
// total count.
#pragma once

#include <cstdint>
#include <ctime>
#include <string>
#include <string_view>
#include <vector>

#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"

namespace agenp::obs {

class Exposition {
public:
    // `help` is the one-line HELP text; empty picks a generic line. The
    // first help string registered for a family wins. `name` must satisfy
    // valid_metric_name (asserted in debug builds, like the registry).
    void add_counter(std::string_view name, const MetricLabels& labels, std::uint64_t value,
                     std::string_view help = {});
    void add_gauge(std::string_view name, const MetricLabels& labels, std::int64_t value,
                   std::string_view help = {});
    // Floating-point gauge (windowed rates, EWMA costs). Distinctly named
    // rather than overloaded so integral arguments never become ambiguous.
    void add_gauge_d(std::string_view name, const MetricLabels& labels, double value,
                     std::string_view help = {});
    void add_histogram(std::string_view name, const MetricLabels& labels,
                       const Histogram::Snapshot& snapshot, std::string_view help = {});

    // Appends every instrument in `registry`, splitting labeled keys with
    // parse_metric_key (keys that fail to parse are skipped — they cannot
    // exist for registrations that passed the debug assert).
    void append_registry(const MetricsRegistry& registry);

    // Appends per-lock acquisition/contention counters and the wait-time
    // histogram, with the lock name as a `lock` label.
    void append_locks(const LockRegistry& registry);

    // Prometheus text exposition format 0.0.4: families sorted by name,
    // each with `# HELP` and `# TYPE` lines; counters get a `_total`
    // suffix; histograms render `_bucket`/`_sum`/`_count` series.
    [[nodiscard]] std::string prometheus() const;

    // Graphite plaintext (`path value timestamp`), one line per sample,
    // labels as `;key=value` path tags. Histograms flatten to _count/_sum/
    // _p50/_p99/_max lines (graphite has no native histogram type).
    [[nodiscard]] std::string graphite(std::string_view prefix, std::time_t timestamp) const;

private:
    struct Family;
    Family& family(std::string_view name, char type, std::string_view help);

    struct Sample {
        MetricLabels labels;
        std::uint64_t uvalue = 0;
        std::int64_t ivalue = 0;
        double dvalue = 0.0;
        bool is_double = false;
        Histogram::Snapshot hist;
    };
    struct Family {
        std::string name;  // dotted registry name
        char type = 'c';   // 'c' counter, 'g' gauge, 'h' histogram
        std::string help;
        std::vector<Sample> samples;
    };
    std::vector<Family> families_;  // insertion-ordered; rendered sorted
};

// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prometheus_label_escape(std::string_view value);

}  // namespace agenp::obs
