// Minimal HTTP/1.1 server for the telemetry surface (`/metrics`,
// `/healthz`, `/statz`) — a single-threaded poll(2) event loop, the same
// shape as srv::TcpServer but deliberately independent of it so metrics
// stay reachable in stdin serve mode and while the NDJSON listener drains.
//
// Scope is exactly what a scraper needs and nothing more: GET requests,
// keep-alive with Content-Length framing, `Connection: close` honored,
// bounded header size, bounded concurrent connections. Anything else
// (other methods, malformed request lines, oversized headers) earns a
// one-shot error response and a closed connection. The handler runs on
// the loop thread; it must be fast (rendering an exposition snapshot is).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace agenp::obs {

struct HttpRequest {
    std::string method;  // uppercase, e.g. "GET"
    std::string path;    // as sent, query string stripped
    std::string query;   // raw query string, without the leading '?'
};

struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
    std::size_t max_connections = 32;
    std::size_t max_header_bytes = 8 * 1024;
    // Close keep-alive connections idle longer than this.
    std::chrono::milliseconds idle_timeout{30000};
};

class HttpServer {
public:
    // Binds and listens immediately (throws std::runtime_error when the
    // address is unavailable), then serves on one background loop thread.
    HttpServer(HttpServerOptions options, HttpHandler handler);
    ~HttpServer();  // implies shutdown()

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }

    // Stops accepting, closes every connection, joins the loop thread.
    // Idempotent.
    void shutdown();

private:
    struct Impl;
    std::uint16_t port_ = 0;
    std::unique_ptr<Impl> impl_;
};

// Blocking one-shot GET for tests and tooling: connects, sends the
// request with `Connection: close`, reads to EOF (or Content-Length).
// Returns nullopt on connect failure, timeout, or an unparsable response.
struct HttpResult {
    int status = 0;
    std::string content_type;
    std::string body;
};
std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   const std::string& path,
                                   std::chrono::milliseconds timeout = std::chrono::milliseconds{
                                       10000});

// Value of `key` in an `a=1&b=2` query string; empty string when absent
// or valueless. No percent-decoding — the telemetry endpoints only take
// numeric parameters.
std::string http_query_param(std::string_view query, std::string_view key);

}  // namespace agenp::obs
