// Request-scoped tracing: one span tree per decision request.
//
// The process-wide TraceRecorder (trace.hpp) answers "where does this
// binary spend time"; it cannot answer "why was request #4812 slow",
// because its spans carry no request identity. A TraceContext is a small
// per-request span buffer created at submit time and carried with the
// request through queue wait -> cache probe -> PDP -> ASG membership ->
// solver. Every span stores a parent index, so the exported tree breaks a
// request's latency into phases (queue wait vs. solve time) that a
// latency histogram flattens away.
//
// Propagation: the request owns its TraceContext; deeper layers (PDP,
// membership, solver call sites) reach it through a thread-local set by
// TraceContextScope for the duration of the evaluation, so their
// signatures stay trace-agnostic. A TraceContext is single-owner: at any
// moment at most one thread appends spans (enforced by the serving
// layer's queue handoff), so it needs no internal locking.
//
// Cost: when the serving layer decides not to trace a request it passes a
// null context everywhere; TracePhase on a null context touches no clock
// and allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agenp::obs {

struct RequestSpan {
    std::string name;
    std::uint64_t start_us = 0;     // since the process-local trace epoch
    std::uint64_t duration_us = 0;  // 0 while the span is still open
    std::int32_t parent = -1;       // index into TraceContext::spans(); -1 = root
};

class TraceContext {
public:
    explicit TraceContext(std::uint64_t trace_id) : id_(trace_id) {}

    [[nodiscard]] std::uint64_t trace_id() const { return id_; }

    // Transport connection id the request arrived on; 0 = not
    // connection-bound. Emitted into every exported event's args.
    void set_client(std::uint64_t client) { client_ = client; }
    [[nodiscard]] std::uint64_t client() const { return client_; }

    // Opens a span nested under the innermost open span; returns its index.
    std::size_t begin_span(std::string_view name);
    void end_span(std::size_t index);

    [[nodiscard]] const std::vector<RequestSpan>& spans() const { return spans_; }

    // Index of the first span with this name, or npos.
    [[nodiscard]] std::size_t find(std::string_view name) const;
    static constexpr std::size_t npos = ~std::size_t{0};

    // Duration of the root span (index 0), or 0 when empty.
    [[nodiscard]] std::uint64_t total_us() const {
        return spans_.empty() ? 0 : spans_.front().duration_us;
    }

    // Appends this request's spans as Chrome trace events ("ph":"X") onto
    // `out`; every event carries tid = trace id (one lane per request) and
    // args.trace_id / args.parent for scripted consumers.
    void append_chrome_events(std::string& out, bool& first) const;

    // Standalone Chrome trace-event JSON for this one request.
    [[nodiscard]] std::string chrome_trace_json() const;

private:
    std::uint64_t id_ = 0;
    std::uint64_t client_ = 0;
    std::vector<RequestSpan> spans_;
    std::vector<std::size_t> open_;  // stack of open span indices
};

// The trace context installed on this thread, or null.
TraceContext* current_trace();

// Installs `ctx` (may be null) as the thread's current trace context for
// the scope's lifetime; restores the previous one on exit.
class TraceContextScope {
public:
    explicit TraceContextScope(TraceContext* ctx);
    ~TraceContextScope();
    TraceContextScope(const TraceContextScope&) = delete;
    TraceContextScope& operator=(const TraceContextScope&) = delete;

private:
    TraceContext* prev_;
};

// RAII phase span on a (possibly null) context.
class TracePhase {
public:
    TracePhase(TraceContext* ctx, std::string_view name) : ctx_(ctx) {
        if (ctx_ != nullptr) index_ = ctx_->begin_span(name);
    }
    ~TracePhase() {
        if (ctx_ != nullptr) ctx_->end_span(index_);
    }
    TracePhase(const TracePhase&) = delete;
    TracePhase& operator=(const TracePhase&) = delete;

private:
    TraceContext* ctx_;
    std::size_t index_ = 0;
};

// Merges several requests' span trees into one Chrome trace-event JSON
// document (one tid lane per request).
std::string chrome_trace_json(const std::vector<const TraceContext*>& traces);

}  // namespace agenp::obs
