// Scoped tracing: nested timed spans exported as Chrome trace-event JSON
// (open in chrome://tracing or https://ui.perfetto.dev) plus a flat
// profile aggregated by span name.
//
// Tracing is off by default: a ScopedSpan constructed while the recorder
// is disabled touches no clock and allocates nothing. When enabled, each
// span records one complete ("ph":"X") event at destruction; nesting is
// reconstructed by the viewer from the timestamps and by the flat profile
// from a per-thread span stack (so self-time excludes child spans).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agenp::obs {

struct SpanEvent {
    std::string name;
    std::string category;
    std::uint64_t start_us = 0;  // since the process-local trace epoch
    std::uint64_t duration_us = 0;
    std::uint64_t self_us = 0;  // duration minus time spent in child spans
    std::uint32_t thread = 0;   // dense per-process thread index
    std::uint32_t depth = 0;    // nesting level at record time
};

class TraceRecorder {
public:
    [[nodiscard]] bool enabled() const { return enabled_; }
    void set_enabled(bool enabled);

    void clear();

    [[nodiscard]] std::vector<SpanEvent> events() const;

    // Chrome trace-event JSON object: {"traceEvents":[...],"displayTimeUnit":"ms"}.
    [[nodiscard]] std::string chrome_trace_json() const;

    // Flat profile: one line per span name with call count, total time,
    // and self time, sorted by total descending.
    [[nodiscard]] std::string flat_profile() const;

    void record(SpanEvent event);

    TraceRecorder();
    ~TraceRecorder();
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

private:
    struct Impl;
    bool enabled_ = false;  // only flipped from the controlling thread
    Impl* impl_;
};

// The process-wide recorder used by all ScopedSpan call sites.
TraceRecorder& tracer();

class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view name, std::string_view category = "agenp");
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    bool active_;
    std::uint64_t start_ns_ = 0;
    std::string name_;
    std::string category_;
};

}  // namespace agenp::obs
