// Construction of G[PT] (Section II.A): mapping a parse tree of an ASG to
// the ASP program whose consistency decides language membership.
//
// Each parse-tree node `n` contributes annotation(production(n)) with every
// annotated atom a@i renamed to the namespace trace(n)++[i] and every
// unannotated atom to trace(n). Namespaces are folded into predicate names
// ("p@1.2"), which realizes the paper's "annotated atoms are treated as
// ordinary atoms".
#pragma once

#include "asg/asg.hpp"
#include "cfg/earley.hpp"

namespace agenp::asg {

// A trace through the parse tree ([] = root, [i] = i-th child, 1-based).
using Trace = std::vector<int>;

// Predicate renaming: p with trace [1,2] -> "p@1.2"; the root trace yields
// "p@". The '@' separator cannot collide with user predicates because the
// ASP lexer rejects '@' inside identifiers.
util::Symbol mangle_predicate(util::Symbol predicate, const Trace& trace);

// G[PT] for `tree`, with `context` (the C of G(C)) added to the annotation
// of every production rule, i.e. contributed at every nonterminal node.
asp::Program instantiate(const AnswerSetGrammar& grammar, const cfg::ParseNode& tree,
                         const asp::Program& context = {});

// Renames one annotation rule into the namespace of a node with `trace`
// (a@i -> trace++[i], unannotated -> trace). Exposed for the ILP learner,
// which evaluates candidate rules against precomputed answer sets.
asp::Rule rename_rule_at(const asp::Rule& rule, const Trace& trace);

// All (trace, production) pairs of the tree's nonterminal nodes, in
// depth-first order.
std::vector<std::pair<Trace, int>> production_nodes(const cfg::ParseNode& tree);

}  // namespace agenp::asg
