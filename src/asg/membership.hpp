// Language membership for ASGs: s ∈ L(G(C)) iff some parse tree PT of the
// underlying CFG yields a satisfiable G(C)[PT] (Section II.A).
#pragma once

#include "asg/instantiate.hpp"
#include "asp/grounder.hpp"
#include "asp/solver.hpp"

namespace agenp::asg {

class GroundingMemo;

struct MembershipOptions {
    cfg::ParseOptions parse;
    asp::GroundingLimits grounding;
    asp::SolveOptions solve{.max_models = 1};
    // Optional grounding memo (see asg/memo.hpp): when set and the
    // grammar + context pass the memoizability gate, G[PT] fragments and
    // decisive solver verdicts are recalled instead of re-ground/re-solved.
    // Results are identical either way; the memo only changes the cost.
    GroundingMemo* memo = nullptr;
};

struct MembershipResult {
    bool in_language = false;
    int trees_checked = 0;
    // A solver budget ran out on some tree; a negative verdict is then
    // unreliable.
    bool resource_limited = false;
};

MembershipResult check_membership(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                                  const asp::Program& context = {},
                                  const MembershipOptions& options = {});

// Convenience wrapper.
bool in_language(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                 const asp::Program& context = {}, const MembershipOptions& options = {});

// The answer sets of G(C)[tree] for one parse tree; the learner's fast path
// uses this to evaluate candidate constraints against a fixed model.
asp::SolveResult solve_tree(const AnswerSetGrammar& grammar, const cfg::ParseNode& tree,
                            const asp::Program& context = {}, const MembershipOptions& options = {});

}  // namespace agenp::asg
