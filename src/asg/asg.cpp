#include "asg/asg.hpp"

#include "asp/parser.hpp"
#include "util/strings.hpp"

namespace agenp::asg {

int AnswerSetGrammar::add_production(cfg::Production production, asp::Program annotation) {
    check_annotation(annotation, production);
    int index = grammar_.add_production(std::move(production));
    annotations_.push_back(std::move(annotation));
    return index;
}

void AnswerSetGrammar::check_annotation(const asp::Program& annotation,
                                        const cfg::Production& production) const {
    auto arity = static_cast<int>(production.rhs.size());
    for (const auto& rule : annotation.rules()) {
        auto check_atom = [&](const asp::Atom& a) {
            if (a.annotation != asp::kUnannotated && a.annotation > arity) {
                throw AsgError("annotation @" + std::to_string(a.annotation) +
                               " exceeds production arity in: " + rule.to_string());
            }
        };
        if (rule.head) check_atom(*rule.head);
        for (const auto& l : rule.body) check_atom(l.atom);
    }
}

AnswerSetGrammar AnswerSetGrammar::with_rules(
    const std::vector<std::pair<asp::Rule, int>>& additions) const {
    AnswerSetGrammar out = *this;
    for (const auto& [rule, production_index] : additions) {
        if (production_index < 0 || static_cast<std::size_t>(production_index) >= out.annotations_.size()) {
            throw AsgError("hypothesis targets unknown production " + std::to_string(production_index));
        }
        out.check_annotation(asp::Program({rule}),
                             out.grammar_.production(production_index));
        out.annotations_[static_cast<std::size_t>(production_index)].add(rule);
    }
    return out;
}

std::string AnswerSetGrammar::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < annotations_.size(); ++i) {
        out += grammar_.production(static_cast<int>(i)).to_string();
        if (!annotations_[i].empty()) {
            out += " {\n";
            for (const auto& r : annotations_[i].rules()) {
                out += "    " + r.to_string() + "\n";
            }
            out += "}";
        }
        out += '\n';
    }
    return out;
}

namespace {

// Parses "lhs -> sym sym ..." (a single alternative).
cfg::Production parse_production_header(std::string_view header) {
    auto arrow = header.find("->");
    if (arrow == std::string_view::npos) {
        throw AsgError("expected 'lhs -> rhs' production, got: " + std::string(header));
    }
    auto lhs = util::trim(header.substr(0, arrow));
    if (lhs.empty() || lhs.find(' ') != std::string_view::npos) {
        throw AsgError("bad production left-hand side: " + std::string(header));
    }
    if (header.find('|') != std::string_view::npos) {
        throw AsgError("ASG format forbids '|' alternatives (one production per line): " +
                       std::string(header));
    }
    cfg::Production prod;
    prod.lhs = util::Symbol(lhs);
    auto rhs = header.substr(arrow + 2);
    std::size_t i = 0;
    while (i < rhs.size()) {
        if (std::isspace(static_cast<unsigned char>(rhs[i]))) {
            ++i;
            continue;
        }
        if (rhs[i] == '"') {
            auto end = rhs.find('"', i + 1);
            if (end == std::string_view::npos) throw AsgError("unterminated terminal in: " + std::string(header));
            prod.rhs.push_back(cfg::GSym::term(rhs.substr(i + 1, end - i - 1)));
            i = end + 1;
        } else {
            std::size_t start = i;
            while (i < rhs.size() && !std::isspace(static_cast<unsigned char>(rhs[i])) && rhs[i] != '"') ++i;
            auto word = rhs.substr(start, i - start);
            if (word == "epsilon") continue;
            prod.rhs.push_back(cfg::GSym::nonterm(word));
        }
    }
    return prod;
}

}  // namespace

AnswerSetGrammar AnswerSetGrammar::parse(std::string_view text) {
    AnswerSetGrammar g;
    std::size_t pos = 0;
    bool have_start = false;
    while (pos < text.size()) {
        // Skip whitespace and '#' comments between statements.
        while (pos < text.size()) {
            if (std::isspace(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            } else if (text[pos] == '#') {
                while (pos < text.size() && text[pos] != '\n') ++pos;
            } else {
                break;
            }
        }
        if (pos >= text.size()) break;

        // Header runs to end of line or an opening '{'.
        std::size_t header_end = pos;
        while (header_end < text.size() && text[header_end] != '\n' && text[header_end] != '{') {
            ++header_end;
        }
        auto header = util::trim(text.substr(pos, header_end - pos));
        cfg::Production prod = parse_production_header(header);
        pos = header_end;

        asp::Program annotation;
        // Allow the '{' on the header line or the next line(s).
        std::size_t look = pos;
        while (look < text.size() && std::isspace(static_cast<unsigned char>(text[look]))) ++look;
        if (look < text.size() && text[look] == '{') {
            auto close = text.find('}', look + 1);
            if (close == std::string_view::npos) {
                throw AsgError("unterminated annotation block for: " + std::string(header));
            }
            annotation = asp::parse_program(text.substr(look + 1, close - look - 1));
            pos = close + 1;
        }

        if (!have_start) {
            g.set_start(prod.lhs);
            have_start = true;
        }
        g.add_production(std::move(prod), std::move(annotation));
    }
    if (!have_start) throw AsgError("empty ASG");
    // Validate nonterminal references like cfg::Grammar::parse does.
    for (const auto& p : g.grammar_.productions()) {
        for (const auto& s : p.rhs) {
            if (!s.terminal && !g.grammar_.is_nonterminal(s.name)) {
                throw AsgError("undefined nonterminal '" + std::string(s.name.str()) +
                               "' (terminals must be quoted)");
            }
        }
    }
    return g;
}

}  // namespace agenp::asg
