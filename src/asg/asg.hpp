// Answer Set Grammars (Definitions 1-2 of the paper).
//
// An ASG is a CFG whose production rules carry annotated ASP programs. The
// text format pairs each production (one per line, no `|` alternatives so
// the annotation binding stays unambiguous) with an optional `{ ... }` ASP
// block:
//
//   request -> "do" task "in" region {
//       :- requires(L)@2, limit(M)@4, L > M.
//   }
//   task -> "patrol" { requires(3). }
//
// Annotations `a@i` refer to the i-th right-hand-side child; unannotated
// atoms are local to the node. `#` starts a comment outside blocks, `%`
// inside (ASP syntax).
#pragma once

#include "asp/program.hpp"
#include "cfg/grammar.hpp"

namespace agenp::asg {

struct AsgError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

class AnswerSetGrammar {
public:
    AnswerSetGrammar() = default;

    // Parses the text format above; throws AsgError / cfg::GrammarError /
    // asp::ParseError on malformed input or annotations indexing past the
    // production's arity.
    static AnswerSetGrammar parse(std::string_view text);

    // Adds a production with its annotation; returns the production index.
    int add_production(cfg::Production production, asp::Program annotation = {});

    void set_start(util::Symbol s) { grammar_.set_start(s); }

    [[nodiscard]] const cfg::Grammar& grammar() const { return grammar_; }
    [[nodiscard]] const asp::Program& annotation(int production_index) const {
        return annotations_[static_cast<std::size_t>(production_index)];
    }
    [[nodiscard]] std::size_t production_count() const { return annotations_.size(); }

    // G:H (Definition 3): a copy with each hypothesis rule added to the
    // annotation of its target production.
    [[nodiscard]] AnswerSetGrammar with_rules(
        const std::vector<std::pair<asp::Rule, int>>& additions) const;

    [[nodiscard]] std::string to_string() const;

private:
    cfg::Grammar grammar_;
    std::vector<asp::Program> annotations_;  // parallel to grammar_.productions()

    void check_annotation(const asp::Program& annotation, const cfg::Production& production) const;
};

}  // namespace agenp::asg
