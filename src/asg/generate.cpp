#include "asg/generate.hpp"

namespace agenp::asg {

LanguageResult language(const AnswerSetGrammar& grammar, const asp::Program& context,
                        const LanguageOptions& options) {
    LanguageResult result;
    auto sentences = cfg::generate_strings(grammar.grammar(), options.enumeration);
    result.truncated = sentences.truncated;
    for (auto& s : sentences.strings) {
        if (in_language(grammar, s, context, options.membership)) {
            result.strings.push_back(std::move(s));
        }
    }
    return result;
}

}  // namespace agenp::asg
