// Enumeration of L(G(C)): the concrete policies a GPM generates in a
// context. This is the PReP's "generate policies" primitive (Section III.A).
#pragma once

#include "asg/membership.hpp"
#include "cfg/generate.hpp"

namespace agenp::asg {

struct LanguageOptions {
    cfg::GenerateOptions enumeration;
    MembershipOptions membership;
};

struct LanguageResult {
    std::vector<cfg::TokenString> strings;
    bool truncated = false;  // the CFG enumeration hit a budget
};

// Enumerates the CFG's sentences and keeps those accepted by the ASG under
// `context`.
LanguageResult language(const AnswerSetGrammar& grammar, const asp::Program& context = {},
                        const LanguageOptions& options = {});

}  // namespace agenp::asg
