#include "asg/membership.hpp"

namespace agenp::asg {

MembershipResult check_membership(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                                  const asp::Program& context, const MembershipOptions& options) {
    MembershipResult result;
    auto trees = cfg::parse_trees(grammar.grammar(), tokens, options.parse);
    for (const auto& tree : trees) {
        ++result.trees_checked;
        asp::Program program = instantiate(grammar, tree, context);
        auto gp = asp::ground(program, options.grounding);
        auto solved = asp::solve(gp, options.solve);
        if (solved.satisfiable()) {
            result.in_language = true;
            return result;
        }
        if (solved.exhausted) result.resource_limited = true;
    }
    return result;
}

bool in_language(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                 const asp::Program& context, const MembershipOptions& options) {
    return check_membership(grammar, tokens, context, options).in_language;
}

asp::SolveResult solve_tree(const AnswerSetGrammar& grammar, const cfg::ParseNode& tree,
                            const asp::Program& context, const MembershipOptions& options) {
    asp::Program program = instantiate(grammar, tree, context);
    auto gp = asp::ground(program, options.grounding);
    return asp::solve(gp, options.solve);
}

}  // namespace agenp::asg
