#include "asg/membership.hpp"

#include "asg/memo.hpp"
#include "obs/costtable.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"

namespace agenp::asg {

namespace {

// Flushed once per membership query; the per-tree loop stays atomics-free.
void publish(const MembershipResult& result, std::size_t asp_checks) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    static obs::Counter& checks = m.counter("asg.membership.checks");
    static obs::Counter& trees = m.counter("asg.membership.trees_checked");
    static obs::Counter& solver_calls = m.counter("asg.membership.asp_checks");
    static obs::Counter& accepted = m.counter("asg.membership.accepted");
    static obs::Counter& limited = m.counter("asg.membership.resource_limited");
    checks.add(1);
    trees.add(static_cast<std::uint64_t>(result.trees_checked));
    solver_calls.add(asp_checks);
    if (result.in_language) accepted.add(1);
    if (result.resource_limited) limited.add(1);
}

}  // namespace

MembershipResult check_membership(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                                  const asp::Program& context, const MembershipOptions& options) {
    obs::ScopedSpan span("asg.membership", "asg");
    obs::TracePhase request_phase(obs::current_trace(), "asg.membership");
    static obs::Histogram& time_hist = obs::metrics().histogram("asg.membership.time_us");
    obs::ScopedTimer timer(time_hist);

    MembershipResult result;
    std::size_t asp_checks = 0;
    auto trees = cfg::parse_trees(grammar.grammar(), tokens, options.parse);
    // One memo view per query: the gate and the context fingerprint are
    // computed once; `usable()` is false when no memo was supplied or the
    // gate rejected this grammar + context (plain path below).
    MemoizedGrounding memoized(options.memo, grammar, context, options.grounding);
    for (const auto& tree : trees) {
        ++result.trees_checked;
        asp::SolveResult solved;
        if (memoized.usable() && !tree.is_leaf()) {
            MemoizedGrounding::Root root;
            {
                obs::TracePhase ground_phase(obs::current_trace(), "asp.ground");
                static obs::CostCell& memo_cost = obs::costs().cell("asg.memo_probe");
                obs::ScopedCost cost(memo_cost);
                root = memoized.ground_root(tree);
            }
            if (root.verdict.has_value()) {
                if (*root.verdict) {
                    result.in_language = true;
                    publish(result, asp_checks);
                    return result;
                }
                continue;
            }
            {
                obs::TracePhase solve_phase(obs::current_trace(), "asp.solve");
                static obs::CostCell& solve_cost = obs::costs().cell("asp.solve");
                obs::ScopedCost cost(solve_cost);
                solved = asp::solve(*root.program, options.solve);
            }
            ++asp_checks;
            // A resource-limited verdict is not decisive — memoizing it
            // would freeze `resource_limited` semantics into the cache.
            if (!solved.exhausted) memoized.store_verdict(root, solved.satisfiable());
        } else {
            asp::Program program = instantiate(grammar, tree, context);
            asp::GroundProgram gp;
            {
                obs::TracePhase ground_phase(obs::current_trace(), "asp.ground");
                static obs::CostCell& ground_cost = obs::costs().cell("asp.ground");
                obs::ScopedCost cost(ground_cost);
                gp = asp::ground(program, options.grounding);
            }
            {
                obs::TracePhase solve_phase(obs::current_trace(), "asp.solve");
                static obs::CostCell& solve_cost = obs::costs().cell("asp.solve");
                obs::ScopedCost cost(solve_cost);
                solved = asp::solve(gp, options.solve);
            }
            ++asp_checks;
        }
        if (solved.satisfiable()) {
            result.in_language = true;
            publish(result, asp_checks);
            return result;
        }
        if (solved.exhausted) result.resource_limited = true;
    }
    publish(result, asp_checks);
    return result;
}

bool in_language(const AnswerSetGrammar& grammar, const cfg::TokenString& tokens,
                 const asp::Program& context, const MembershipOptions& options) {
    return check_membership(grammar, tokens, context, options).in_language;
}

asp::SolveResult solve_tree(const AnswerSetGrammar& grammar, const cfg::ParseNode& tree,
                            const asp::Program& context, const MembershipOptions& options) {
    asp::Program program = instantiate(grammar, tree, context);
    auto gp = asp::ground(program, options.grounding);
    return asp::solve(gp, options.solve);
}

}  // namespace agenp::asg
