// Sub-program memo for G[PT] grounding (DESIGN.md §13).
//
// The membership check re-grounds G[PT] from scratch for every parse tree.
// But the instantiated fragment below a parse node is fully determined by
// (a) the productions applied in that subtree and (b) the context program
// contributed at every node — token spellings only reach the annotation
// through the production choice. This memo keys grounded fragments by
// `cfg::subtree_hash` ⧺ a context fingerprint, so repeated grammar
// fragments across requests (and across parse positions) ground once.
//
// Soundness gate: compositional grounding is only valid when no annotation
// or context rule has an annotated HEAD — an annotated head lets a parent
// derive atoms into a child's namespace, which the child's fragment was
// grounded without. `memoizable()` checks this; callers fall back to the
// plain path (and count a gate fallback) when it fails. Annotated body
// atoms are fine: they only *read* child namespaces, and composition seeds
// each local grounding with the children's derived atoms.
//
// Entries are model-version-stamped like the decision cache: the owning
// DecisionService bumps `set_epoch` under its model write lock and stale
// entries are erased lazily on probe. Shards use a ProfiledMutex named
// "asg.memo" (rank 25 in the §12 hierarchy); all grounding, relocation and
// interning happens outside the shard locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asg/asg.hpp"
#include "asp/grounder.hpp"
#include "cfg/earley.hpp"
#include "obs/lockprof.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::asg {

// A grounded G[PT] fragment with predicate namespaces relative to its own
// subtree root: "p@" is the subtree root, "p@1.2" a grandchild. For the
// parse root these relative names coincide with the absolute names that
// `instantiate` produces, so the root fragment's rules intern directly
// into the solver program. All atoms are deep heap values — nothing in a
// fragment may point into the grounder's scratch arena (§13 escape rule).
struct GroundedFragment {
    std::vector<asp::AtomRule> rules;
    std::vector<asp::Atom> derived;  // every derivable atom, relative names
    std::size_t bytes = 0;           // budget estimate
};

struct MemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  // stale-epoch entries erased on probe
    std::uint64_t sat_hits = 0;       // memoized solver verdicts served
    std::uint64_t gate_fallbacks = 0; // queries where memoizable() said no
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
};

struct MemoOptions {
    std::size_t capacity_bytes = 32ull * 1024 * 1024;
    std::size_t shards = 8;  // rounded up to a power of two
};

class GroundingMemo {
public:
    explicit GroundingMemo(MemoOptions options = {});

    // Model-version stamp. Entries inserted under a different epoch are
    // invalid; they miss and are erased lazily on probe.
    void set_epoch(std::uint64_t epoch) { epoch_.store(epoch, std::memory_order_release); }
    [[nodiscard]] std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

    [[nodiscard]] MemoStats stats() const;
    void clear();
    void note_gate_fallback();

    // The soundness gate (see the header comment).
    static bool memoizable(const AnswerSetGrammar& grammar, const asp::Program& context);

    struct Key {
        std::uint64_t hash = 0;        // subtree hash ⧺ context fingerprint
        std::uint64_t context_lo = 0;  // 128-bit context fingerprint
        std::uint64_t context_hi = 0;
        std::vector<int> shape;        // exact preorder production shape
    };

    struct Probe {
        std::shared_ptr<const GroundedFragment> fragment;           // null = miss
        std::shared_ptr<const asp::GroundProgram> program;          // root entries only
        int verdict = -1;  // -1 unknown, 0 unsatisfiable, 1 satisfiable
    };

    Probe probe(const Key& key);
    void insert(const Key& key, std::shared_ptr<const GroundedFragment> fragment);
    // Attach the interned solver program / decisive solve verdict to an
    // existing entry (parse-root subtrees only); no-op if it was evicted.
    void attach_program(const Key& key, std::shared_ptr<const asp::GroundProgram> program);
    void attach_verdict(const Key& key, bool satisfiable);

private:
    struct Entry {
        Key key;
        std::uint64_t epoch = 0;
        std::size_t bytes = 0;
        std::shared_ptr<const GroundedFragment> fragment;
        std::shared_ptr<const asp::GroundProgram> program;
        int verdict = -1;
    };

    struct Shard {
        mutable obs::ProfiledMutex mu{"asg.memo"};
        std::list<Entry> lru GUARDED_BY(mu);  // front = most recent
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index GUARDED_BY(mu);
        std::size_t bytes GUARDED_BY(mu) = 0;
        std::uint64_t hits GUARDED_BY(mu) = 0;
        std::uint64_t misses GUARDED_BY(mu) = 0;
        std::uint64_t insertions GUARDED_BY(mu) = 0;
        std::uint64_t evictions GUARDED_BY(mu) = 0;
        std::uint64_t invalidations GUARDED_BY(mu) = 0;
        std::uint64_t sat_hits GUARDED_BY(mu) = 0;
    };

    Shard& shard_for(std::uint64_t hash) { return *shards_[hash & shard_mask_]; }
    // Finds the live entry for `key` under the current epoch, erasing it
    // when stale (counted as an invalidation). end() when absent.
    std::list<Entry>::iterator find_live(Shard& shard, const Key& key) REQUIRES(shard.mu);
    void erase_entry(Shard& shard, std::list<Entry>::iterator it) REQUIRES(shard.mu);
    void evict_over_budget(Shard& shard) REQUIRES(shard.mu);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint64_t shard_mask_ = 0;
    std::size_t shard_capacity_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> gate_fallbacks_{0};
};

// One membership query's view of the memo: computes the gate and the
// context fingerprint once, then serves composed root programs and cached
// verdicts per parse tree. Counts hits/misses locally and flushes them to
// the obs metrics registry on destruction (one flush per query).
class MemoizedGrounding {
public:
    MemoizedGrounding(GroundingMemo* memo, const AnswerSetGrammar& grammar,
                      const asp::Program& context, const asp::GroundingLimits& limits);
    ~MemoizedGrounding();

    MemoizedGrounding(const MemoizedGrounding&) = delete;
    MemoizedGrounding& operator=(const MemoizedGrounding&) = delete;

    // False when there is no memo or the gate rejected this grammar +
    // context; callers must then ground the plain way.
    [[nodiscard]] bool usable() const { return usable_; }

    struct Root {
        GroundingMemo::Key key;
        // The composed, interned G[PT] — null when `verdict` already
        // answers the query.
        std::shared_ptr<const asp::GroundProgram> program;
        std::optional<bool> verdict;  // memoized decisive solve result
    };

    // Grounds (or recalls) the full tree. Throws asp::GroundingError on
    // blown limits, like the plain path.
    Root ground_root(const cfg::ParseNode& tree);

    // Records a decisive solver verdict for a root previously returned by
    // ground_root. Never call with a resource-limited (exhausted) result.
    void store_verdict(const Root& root, bool satisfiable);

private:
    GroundingMemo::Key make_key(const cfg::ParseNode& node) const;
    std::shared_ptr<const GroundedFragment> ground_fragment(const cfg::ParseNode& node);
    std::shared_ptr<const GroundedFragment> compute_fragment(const cfg::ParseNode& node);

    GroundingMemo* memo_;
    const AnswerSetGrammar& grammar_;
    const asp::Program& context_;
    asp::GroundingLimits limits_;
    bool usable_ = false;
    std::uint64_t context_lo_ = 0;
    std::uint64_t context_hi_ = 0;
    std::uint64_t local_hits_ = 0;
    std::uint64_t local_misses_ = 0;
    std::uint64_t local_sat_hits_ = 0;
};

}  // namespace agenp::asg
