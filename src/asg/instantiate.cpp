#include "asg/instantiate.hpp"

#include "obs/metrics.hpp"

namespace agenp::asg {

util::Symbol mangle_predicate(util::Symbol predicate, const Trace& trace) {
    std::string name(predicate.str());
    name += '@';
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) name += '.';
        name += std::to_string(trace[i]);
    }
    return util::Symbol(name);
}

namespace {

asp::Atom rename_atom(const asp::Atom& atom, const Trace& trace) {
    Trace target = trace;
    if (atom.annotation != asp::kUnannotated) target.push_back(atom.annotation);
    asp::Atom out;
    out.predicate = mangle_predicate(atom.predicate, target);
    out.args = atom.args;
    out.annotation = asp::kUnannotated;
    return out;
}

void walk(const AnswerSetGrammar& grammar, const cfg::ParseNode& node, const asp::Program& context,
          Trace& trace, asp::Program& out) {
    if (node.is_leaf()) return;
    const asp::Program& annotation = grammar.annotation(node.production);
    for (const auto& rule : annotation.rules()) out.add(rename_rule_at(rule, trace));
    for (const auto& rule : context.rules()) out.add(rename_rule_at(rule, trace));
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        trace.push_back(static_cast<int>(i) + 1);  // 1-based child indices
        walk(grammar, node.children[i], context, trace, out);
        trace.pop_back();
    }
}

void collect_nodes(const cfg::ParseNode& node, Trace& trace,
                   std::vector<std::pair<Trace, int>>& out) {
    if (node.is_leaf()) return;
    out.emplace_back(trace, node.production);
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        trace.push_back(static_cast<int>(i) + 1);
        collect_nodes(node.children[i], trace, out);
        trace.pop_back();
    }
}

}  // namespace

asp::Rule rename_rule_at(const asp::Rule& rule, const Trace& trace) {
    asp::Rule out;
    if (rule.head) out.head = rename_atom(*rule.head, trace);
    out.body.reserve(rule.body.size());
    for (const auto& l : rule.body) {
        out.body.emplace_back(rename_atom(l.atom, trace), l.positive);
    }
    out.builtins = rule.builtins;  // comparisons carry no predicates
    return out;
}

std::vector<std::pair<Trace, int>> production_nodes(const cfg::ParseNode& tree) {
    std::vector<std::pair<Trace, int>> out;
    Trace trace;
    collect_nodes(tree, trace, out);
    return out;
}

asp::Program instantiate(const AnswerSetGrammar& grammar, const cfg::ParseNode& tree,
                         const asp::Program& context) {
    asp::Program out;
    Trace trace;
    walk(grammar, tree, context, trace, out);
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& instantiations = m.counter("asg.instantiate.trees");
        static obs::Counter& rules = m.counter("asg.instantiate.rules");
        instantiations.add(1);
        rules.add(out.rules().size());
    }
    return out;
}

}  // namespace agenp::asg
