#include "asg/memo.hpp"

#include <string>
#include <utility>

#include "asg/instantiate.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace agenp::asg {

namespace {

std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    h *= 1099511628211ull;
    return h;
}

std::size_t atom_bytes(const asp::Atom& atom) {
    return sizeof(asp::Atom) + atom.args.size() * sizeof(asp::Term);
}

std::size_t fragment_bytes(const GroundedFragment& fragment) {
    std::size_t bytes = sizeof(GroundedFragment);
    for (const auto& rule : fragment.rules) {
        bytes += sizeof(asp::AtomRule);
        if (rule.head) bytes += atom_bytes(*rule.head);
        for (const auto& a : rule.pos) bytes += atom_bytes(a);
        for (const auto& a : rule.neg) bytes += atom_bytes(a);
    }
    for (const auto& a : fragment.derived) bytes += atom_bytes(a);
    return bytes;
}

bool heads_unannotated(const asp::Program& program) {
    for (const auto& rule : program.rules()) {
        if (rule.head && rule.head->annotation != asp::kUnannotated) return false;
    }
    return true;
}

// Renames a fragment-relative predicate into the namespace of child
// `index`: "p@" -> "p@index", "p@x.y" -> "p@index.x.y". Fragment atoms
// carry exactly one '@' (the mangle separator; the ASP lexer rejects '@'
// in user identifiers), so a plain find is unambiguous.
class Relocator {
public:
    explicit Relocator(int index) : suffix_("@" + std::to_string(index)) {}

    util::Symbol predicate(util::Symbol p) {
        auto it = cache_.find(p.id());
        if (it != cache_.end()) return it->second;
        std::string_view name = p.str();
        auto at = name.find('@');
        std::string out(name.substr(0, at));  // npos = whole name (defensive)
        out += suffix_;
        if (at != std::string_view::npos && at + 1 < name.size()) {
            out += '.';
            out += name.substr(at + 1);
        }
        util::Symbol s(out);
        cache_.emplace(p.id(), s);
        return s;
    }

    asp::Atom atom(const asp::Atom& a) {
        return asp::Atom(predicate(a.predicate), a.args, a.annotation);
    }

private:
    std::string suffix_;
    std::unordered_map<std::uint32_t, util::Symbol> cache_;
};

}  // namespace

GroundingMemo::GroundingMemo(MemoOptions options) {
    std::size_t shard_count = round_up_pow2(options.shards == 0 ? 1 : options.shards);
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) shards_.push_back(std::make_unique<Shard>());
    shard_mask_ = shard_count - 1;
    shard_capacity_ = options.capacity_bytes / shard_count;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
}

bool GroundingMemo::memoizable(const AnswerSetGrammar& grammar, const asp::Program& context) {
    if (!heads_unannotated(context)) return false;
    for (std::size_t p = 0; p < grammar.production_count(); ++p) {
        if (!heads_unannotated(grammar.annotation(static_cast<int>(p)))) return false;
    }
    return true;
}

void GroundingMemo::note_gate_fallback() {
    gate_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

MemoStats GroundingMemo::stats() const {
    MemoStats out;
    for (const auto& shard : shards_) {
        obs::ProfiledMutexLock lock(shard->mu);
        out.hits += shard->hits;
        out.misses += shard->misses;
        out.insertions += shard->insertions;
        out.evictions += shard->evictions;
        out.invalidations += shard->invalidations;
        out.sat_hits += shard->sat_hits;
        out.entries += shard->lru.size();
        out.bytes += shard->bytes;
    }
    out.gate_fallbacks = gate_fallbacks_.load(std::memory_order_relaxed);
    return out;
}

void GroundingMemo::clear() {
    for (auto& shard : shards_) {
        obs::ProfiledMutexLock lock(shard->mu);
        shard->lru.clear();
        shard->index.clear();
        shard->bytes = 0;
    }
}

std::list<GroundingMemo::Entry>::iterator GroundingMemo::find_live(Shard& shard, const Key& key) {
    auto it = shard.index.find(key.hash);
    if (it == shard.index.end()) return shard.lru.end();
    auto entry = it->second;
    if (entry->epoch != epoch()) {
        ++shard.invalidations;
        erase_entry(shard, entry);
        return shard.lru.end();
    }
    if (entry->key.context_lo != key.context_lo || entry->key.context_hi != key.context_hi ||
        entry->key.shape != key.shape) {
        return shard.lru.end();  // 64-bit hash collision: treat as absent
    }
    return entry;
}

void GroundingMemo::erase_entry(Shard& shard, std::list<Entry>::iterator it) {
    shard.bytes -= it->bytes;
    shard.index.erase(it->key.hash);
    shard.lru.erase(it);
}

void GroundingMemo::evict_over_budget(Shard& shard) {
    while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
        ++shard.evictions;
        erase_entry(shard, std::prev(shard.lru.end()));
    }
}

GroundingMemo::Probe GroundingMemo::probe(const Key& key) {
    Shard& shard = shard_for(key.hash);
    obs::ProfiledMutexLock lock(shard.mu);
    auto it = find_live(shard, key);
    if (it == shard.lru.end()) {
        ++shard.misses;
        return {};
    }
    ++shard.hits;
    if (it->verdict >= 0) ++shard.sat_hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it);  // touch
    Probe out;
    out.fragment = it->fragment;
    out.program = it->program;
    out.verdict = it->verdict;
    return out;
}

void GroundingMemo::insert(const Key& key, std::shared_ptr<const GroundedFragment> fragment) {
    std::size_t bytes = fragment ? fragment->bytes : 0;
    Shard& shard = shard_for(key.hash);
    obs::ProfiledMutexLock lock(shard.mu);
    auto existing = shard.index.find(key.hash);
    if (existing != shard.index.end()) erase_entry(shard, existing->second);
    Entry entry;
    entry.key = key;
    entry.epoch = epoch();
    entry.bytes = bytes + key.shape.size() * sizeof(int) + sizeof(Entry);
    entry.fragment = std::move(fragment);
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(key.hash, shard.lru.begin());
    shard.bytes += shard.lru.front().bytes;
    ++shard.insertions;
    evict_over_budget(shard);
}

void GroundingMemo::attach_program(const Key& key,
                                   std::shared_ptr<const asp::GroundProgram> program) {
    std::size_t extra = program ? program->atom_count() * 64 + program->rules().size() * 32 : 0;
    Shard& shard = shard_for(key.hash);
    obs::ProfiledMutexLock lock(shard.mu);
    auto it = find_live(shard, key);
    if (it == shard.lru.end()) return;
    if (it->program) return;
    it->program = std::move(program);
    it->bytes += extra;
    shard.bytes += extra;
    evict_over_budget(shard);
}

void GroundingMemo::attach_verdict(const Key& key, bool satisfiable) {
    Shard& shard = shard_for(key.hash);
    obs::ProfiledMutexLock lock(shard.mu);
    auto it = find_live(shard, key);
    if (it == shard.lru.end()) return;
    it->verdict = satisfiable ? 1 : 0;
}

MemoizedGrounding::MemoizedGrounding(GroundingMemo* memo, const AnswerSetGrammar& grammar,
                                     const asp::Program& context,
                                     const asp::GroundingLimits& limits)
    : memo_(memo), grammar_(grammar), context_(context), limits_(limits) {
    if (memo_ == nullptr) return;
    if (!GroundingMemo::memoizable(grammar_, context_)) {
        memo_->note_gate_fallback();
        return;
    }
    usable_ = true;
    // 128-bit context fingerprint: a structural fold over Rule::hash plus
    // an independent FNV over the printed rules. Entries also compare both
    // halves, so a wrong fragment needs a simultaneous 128-bit collision.
    context_lo_ = 1469598103934665603ull;
    context_hi_ = 0x517cc1b727220a95ull;
    for (const auto& rule : context_.rules()) {
        context_lo_ = mix64(context_lo_, rule.hash());
        context_hi_ = mix64(context_hi_, util::fnv1a_hash(rule.to_string()));
    }
}

MemoizedGrounding::~MemoizedGrounding() {
    if (!obs::metrics_enabled()) return;
    if (local_hits_ == 0 && local_misses_ == 0 && local_sat_hits_ == 0) return;
    auto& m = obs::metrics();
    static obs::Counter& hits = m.counter("asg.memo.hits");
    static obs::Counter& misses = m.counter("asg.memo.misses");
    static obs::Counter& sat_hits = m.counter("asg.memo.sat_hits");
    hits.add(local_hits_);
    misses.add(local_misses_);
    sat_hits.add(local_sat_hits_);
}

GroundingMemo::Key MemoizedGrounding::make_key(const cfg::ParseNode& node) const {
    GroundingMemo::Key key;
    key.context_lo = context_lo_;
    key.context_hi = context_hi_;
    cfg::subtree_shape(node, key.shape);
    key.hash = mix64(mix64(cfg::subtree_hash(node), context_lo_), context_hi_);
    return key;
}

std::shared_ptr<const GroundedFragment> MemoizedGrounding::ground_fragment(
    const cfg::ParseNode& node) {
    GroundingMemo::Key key = make_key(node);
    GroundingMemo::Probe probe = memo_->probe(key);
    if (probe.fragment) {
        ++local_hits_;
        return probe.fragment;
    }
    ++local_misses_;
    auto fragment = compute_fragment(node);
    memo_->insert(key, fragment);
    return fragment;
}

std::shared_ptr<const GroundedFragment> MemoizedGrounding::compute_fragment(
    const cfg::ParseNode& node) {
    auto fragment = std::make_shared<GroundedFragment>();
    std::vector<asp::Atom> seeds;

    // Children first: relocate their rules and derived atoms into this
    // node's namespace (child i lives under "@i"). Leaves contribute
    // nothing — their effect is already folded into `node.production`.
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        const cfg::ParseNode& child = node.children[i];
        if (child.is_leaf()) continue;
        auto child_fragment = ground_fragment(child);
        Relocator reloc(static_cast<int>(i) + 1);
        for (const auto& rule : child_fragment->rules) {
            asp::AtomRule moved;
            if (rule.head) moved.head = reloc.atom(*rule.head);
            moved.pos.reserve(rule.pos.size());
            for (const auto& a : rule.pos) moved.pos.push_back(reloc.atom(a));
            moved.neg.reserve(rule.neg.size());
            for (const auto& a : rule.neg) moved.neg.push_back(reloc.atom(a));
            fragment->rules.push_back(std::move(moved));
        }
        for (const auto& a : child_fragment->derived) seeds.push_back(reloc.atom(a));
    }

    // This node's own contribution: its production's annotation plus the
    // context, renamed to the local namespace and grounded against the
    // children's derived atoms.
    asp::Program local;
    const asp::Program& annotation = grammar_.annotation(node.production);
    local.rules().reserve(annotation.size() + context_.size());
    for (const auto& rule : annotation.rules()) local.add(rename_rule_at(rule, {}));
    for (const auto& rule : context_.rules()) local.add(rename_rule_at(rule, {}));
    asp::SeededGrounding seeded = asp::ground_seeded(local, seeds, limits_);

    for (auto& rule : seeded.rules) fragment->rules.push_back(std::move(rule));
    fragment->derived = std::move(seeds);
    for (auto& a : seeded.new_atoms) fragment->derived.push_back(std::move(a));

    // The per-call groundings each respect `limits_`; also bound the
    // composed totals so a fragment explosion surfaces the same way the
    // monolithic path would.
    if (fragment->rules.size() > limits_.max_rules) {
        throw asp::GroundingError("grounding exceeded max_rules limit");
    }
    if (fragment->derived.size() > limits_.max_atoms) {
        throw asp::GroundingError("grounding exceeded max_atoms limit");
    }
    fragment->bytes = fragment_bytes(*fragment);
    return fragment;
}

MemoizedGrounding::Root MemoizedGrounding::ground_root(const cfg::ParseNode& tree) {
    Root out;
    out.key = make_key(tree);
    GroundingMemo::Probe probe = memo_->probe(out.key);
    if (probe.verdict >= 0) {
        ++local_hits_;
        ++local_sat_hits_;
        out.verdict = probe.verdict == 1;
        return out;
    }
    std::shared_ptr<const GroundedFragment> fragment = probe.fragment;
    if (fragment) {
        ++local_hits_;
    } else {
        ++local_misses_;
        fragment = compute_fragment(tree);
        memo_->insert(out.key, fragment);
    }
    if (probe.program) {
        out.program = probe.program;
        return out;
    }
    // At the parse root the fragment's relative names are absolute, so its
    // rules intern directly into the solver program.
    auto program = std::make_shared<asp::GroundProgram>();
    for (const auto& rule : fragment->rules) {
        asp::GroundRule ground_rule;
        if (rule.head) ground_rule.head = program->intern(*rule.head);
        ground_rule.pos.reserve(rule.pos.size());
        for (const auto& a : rule.pos) ground_rule.pos.push_back(program->intern(a));
        ground_rule.neg.reserve(rule.neg.size());
        for (const auto& a : rule.neg) ground_rule.neg.push_back(program->intern(a));
        program->add_rule(std::move(ground_rule));
    }
    out.program = program;
    memo_->attach_program(out.key, program);
    return out;
}

void MemoizedGrounding::store_verdict(const Root& root, bool satisfiable) {
    memo_->attach_verdict(root.key, satisfiable);
}

}  // namespace agenp::asg
