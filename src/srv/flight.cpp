#include "srv/flight.hpp"

#include <algorithm>
#include <bit>

namespace agenp::srv {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::bit_ceil(std::max<std::size_t>(capacity, 2))) {
    mask_ = slots_.size() - 1;
}

void FlightRecorder::record(const FlightRecord& record) {
    std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[seq & mask_];
    // Odd = write in progress. 2*seq is unique per write, so a reader can
    // never confuse two generations of the same slot.
    slot.seq.store(2 * seq + 1, std::memory_order_release);
    slot.id.store(record.id, std::memory_order_relaxed);
    slot.client.store(record.client, std::memory_order_relaxed);
    slot.model_version.store(record.model_version, std::memory_order_relaxed);
    slot.queue_us.store(record.queue_us, std::memory_order_relaxed);
    slot.solve_us.store(record.solve_us, std::memory_order_relaxed);
    slot.total_us.store(record.total_us, std::memory_order_relaxed);
    slot.outcome.store(record.outcome, std::memory_order_relaxed);
    slot.cache_hit.store(record.cache_hit, std::memory_order_relaxed);
    slot.seq.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
    std::vector<FlightRecord> out;
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        std::uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before == 0 || before % 2 == 1) continue;  // empty or mid-write
        FlightRecord r;
        r.id = slot.id.load(std::memory_order_relaxed);
        r.client = slot.client.load(std::memory_order_relaxed);
        r.model_version = slot.model_version.load(std::memory_order_relaxed);
        r.queue_us = slot.queue_us.load(std::memory_order_relaxed);
        r.solve_us = slot.solve_us.load(std::memory_order_relaxed);
        r.total_us = slot.total_us.load(std::memory_order_relaxed);
        r.outcome = slot.outcome.load(std::memory_order_relaxed);
        r.cache_hit = slot.cache_hit.load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != before) continue;  // torn
        out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord& a, const FlightRecord& b) { return a.id < b.id; });
    return out;
}

std::string flight_record_json(const FlightRecord& record) {
    std::string out = "{";
    out += "\"id\":" + std::to_string(record.id);
    out += ",\"client\":" + std::to_string(record.client);
    out += ",\"outcome\":" + std::to_string(record.outcome);
    out += ",\"cache_hit\":" + std::string(record.cache_hit ? "true" : "false");
    out += ",\"model_version\":" + std::to_string(record.model_version);
    out += ",\"queue_us\":" + std::to_string(record.queue_us);
    out += ",\"solve_us\":" + std::to_string(record.solve_us);
    out += ",\"total_us\":" + std::to_string(record.total_us);
    out += "}";
    return out;
}

std::string FlightRecorder::render_json_lines() const {
    std::string out;
    for (const FlightRecord& r : snapshot()) {
        out += flight_record_json(r);
        out += "\n";
    }
    return out;
}

}  // namespace agenp::srv
