// Decision audit log: a durable NDJSON record of individual decisions
// (`agenp serve --audit-log FILE`). Each completed request appends one
// line carrying everything needed to reconstruct the decision after the
// fact — request hash, outcome, strategy, cache hit, model version,
// replica, latencies — keyed by the same trace_id the flight recorder and
// captured traces use, so the three telemetry layers cross-correlate.
//
// The file is size-capped: when an append would cross max_bytes the
// current file rotates to `<path>.1` (replacing any previous rotation)
// and a fresh file starts, so a long-lived server holds at most ~2x
// max_bytes of audit history. Sampling (`sample_every = N`) keeps every
// Nth entry for deployments where full capture is too hot; the skipped
// count is reported so the gap is visible.
//
// Thread safety: record() is called from worker threads and serializes
// under a ProfiledMutex ("srv.audit"), so audit contention shows up in
// the lock profile like every other serving lock.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/lockprof.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::srv {

struct AuditOptions {
    std::string path;
    std::uint64_t max_bytes = 64ull * 1024 * 1024;
    std::size_t sample_every = 1;  // keep every Nth entry (0 or 1 = all)
};

struct AuditEntry {
    std::uint64_t ts_ms = 0;  // unix milliseconds; 0 = stamped by record()
    std::uint64_t trace_id = 0;
    std::uint64_t client_id = 0;
    std::uint64_t request_hash = 0;  // util::fnv1a_hash of the request text
    std::string outcome;             // Permit / Deny / Overloaded / Expired
    std::string strategy;            // membership / repository / cache / none
    bool cache_hit = false;
    std::uint64_t model_version = 0;
    std::uint64_t replica = 0;
    std::uint64_t latency_us = 0;
    std::uint64_t queue_us = 0;
    std::uint64_t solve_us = 0;
};

// One audit entry as a single-line JSON object (no trailing newline).
std::string audit_entry_json(const AuditEntry& entry);

class AuditLog {
public:
    // Opens `options.path` for append; throws std::runtime_error when the
    // file cannot be opened.
    explicit AuditLog(AuditOptions options);
    ~AuditLog();

    AuditLog(const AuditLog&) = delete;
    AuditLog& operator=(const AuditLog&) = delete;

    // Appends one entry (subject to sampling and rotation). Stamps ts_ms
    // when the caller left it zero. Write errors are counted, not thrown.
    void record(AuditEntry entry);

    [[nodiscard]] std::uint64_t recorded() const;
    [[nodiscard]] std::uint64_t sampled_out() const;
    [[nodiscard]] std::uint64_t rotations() const;
    [[nodiscard]] const AuditOptions& options() const { return options_; }

private:
    void rotate_locked() REQUIRES(mutex_);

    AuditOptions options_;
    mutable obs::ProfiledMutex mutex_{"srv.audit"};
    std::FILE* file_ GUARDED_BY(mutex_) = nullptr;
    std::uint64_t bytes_ GUARDED_BY(mutex_) = 0;        // current file size
    std::uint64_t seen_ GUARDED_BY(mutex_) = 0;         // entries offered
    std::uint64_t recorded_ GUARDED_BY(mutex_) = 0;
    std::uint64_t sampled_out_ GUARDED_BY(mutex_) = 0;
    std::uint64_t rotations_ GUARDED_BY(mutex_) = 0;
};

}  // namespace agenp::srv
