// Sharded, versioned LRU cache for PDP decisions (DESIGN.md section 8).
//
// A decision is a pure function of (request tokens, context program, GPM
// model version), so the cache key hashes the first two and every entry is
// stamped with the third. Lookups pass the version currently in force:
// entries stamped by a superseded model miss and are evicted lazily, which
// means adopting a new GPM (PAdaP adoption or a coalition share) needs no
// global flush — stale entries age out as they are touched or evicted.
//
// Concurrency: the key space is split across N shards (N rounded up to a
// power of two), each guarded by its own mutex, so threads hammering
// different requests rarely contend. Entries store the full key text and
// compare it on lookup; a 64-bit hash collision therefore costs a miss,
// never a wrong decision.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asp/program.hpp"
#include "cfg/grammar.hpp"
#include "obs/lockprof.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::srv {

// One cache entry as a plain value: the unit of export_entries /
// restore_entries and of the persistence WAL (src/store).
struct CacheEntry {
    std::string text;  // request tokens + '\x1f' + context program
    std::uint64_t model_version = 0;
    bool permitted = false;
};

struct CacheOptions {
    std::size_t capacity_bytes = 64ull << 20;  // total across shards
    std::size_t shards = 16;                   // rounded up to a power of two
    // Called after every insert(), outside the shard lock — the
    // persistence WAL hook. Restores do NOT fire it (they would echo the
    // snapshot straight back into the WAL).
    std::function<void(const CacheEntry&)> on_insert;
};

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;       // LRU capacity evictions
    std::uint64_t invalidations = 0;   // stale-version lazy evictions
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;

    [[nodiscard]] double hit_rate() const {
        auto total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

// Precomputed key: callers hash once and reuse it for the lookup and the
// insert that follows a miss.
struct CacheKey {
    std::uint64_t hash = 0;
    std::string text;  // request tokens + '\x1f' + context program
};

class DecisionCache {
public:
    explicit DecisionCache(CacheOptions options = {});

    [[nodiscard]] static CacheKey make_key(const cfg::TokenString& request,
                                           const asp::Program& context);

    // The cached verdict, or nullopt on miss. A hit refreshes LRU order; a
    // version mismatch evicts the stale entry and counts as a miss.
    [[nodiscard]] std::optional<bool> lookup(const CacheKey& key, std::uint64_t model_version);

    void insert(const CacheKey& key, std::uint64_t model_version, bool permitted);

    void clear();

    // --- persistence (src/store warm restarts) ---

    // Every live entry, most-recently-used first within each shard, with
    // its model-version stamp intact.
    [[nodiscard]] std::vector<CacheEntry> export_entries() const;

    struct RestoreCounts {
        std::size_t restored = 0;
        std::size_t skipped = 0;  // dropped: shard already at capacity
    };

    // Loads exported entries back, preserving version stamps (stale ones
    // invalidate lazily on lookup, exactly like after update_model). Call
    // `entries` hottest-first: once a shard's byte budget fills, further
    // entries for it are skipped rather than evicting what was already
    // restored. A duplicate key overwrites (WAL entries replayed over a
    // snapshot are newer). Does not fire on_insert.
    RestoreCounts restore_entries(const std::vector<CacheEntry>& entries);

    // The request-text prefix of a key's text (everything before the
    // '\x1f' separator) — what the router hashes for replica placement,
    // so restored entries can be re-partitioned under a different
    // replica count.
    [[nodiscard]] static std::string_view request_text_of_key(std::string_view key_text);

    [[nodiscard]] CacheStats stats() const;
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

private:
    struct Entry {
        std::string text;
        std::uint64_t version = 0;
        bool permitted = false;
    };
    struct Shard {
        // All shard locks report aggregate contention as "srv.cache_shard".
        obs::ProfiledMutex mu{"srv.cache_shard"};
        std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
        // Views into the stable list nodes' `text`.
        std::unordered_map<std::string_view, std::list<Entry>::iterator> index GUARDED_BY(mu);
        std::uint64_t bytes GUARDED_BY(mu) = 0;
        std::uint64_t hits GUARDED_BY(mu) = 0;
        std::uint64_t misses GUARDED_BY(mu) = 0;
        std::uint64_t insertions GUARDED_BY(mu) = 0;
        std::uint64_t evictions GUARDED_BY(mu) = 0;
        std::uint64_t invalidations GUARDED_BY(mu) = 0;
    };

    Shard& shard_for(std::uint64_t hash) { return *shards_[hash & shard_mask_]; }
    void erase_entry(Shard& shard, std::list<Entry>::iterator it) REQUIRES(shard.mu);
    static std::uint64_t entry_bytes(const Entry& entry);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint64_t shard_mask_ = 0;
    std::size_t shard_capacity_bytes_ = 0;
    std::function<void(const CacheEntry&)> on_insert_;
};

}  // namespace agenp::srv
