#include "srv/service.hpp"

#include "obs/costtable.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "srv/audit.hpp"
#include "util/strings.hpp"

namespace agenp::srv {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - since)
                                          .count());
}

}  // namespace

std::string_view outcome_name(Outcome outcome) {
    switch (outcome) {
        case Outcome::Permit: return "Permit";
        case Outcome::Deny: return "Deny";
        case Outcome::Overloaded: return "Overloaded";
        case Outcome::Expired: return "Expired";
    }
    return "?";
}

DecisionService::DecisionService(framework::AutonomousManagedSystem& ams, ServiceOptions options)
    : ams_(ams), options_(options), cache_(options.cache), flight_(options.flight_capacity) {
    if (options_.threads == 0) options_.threads = 1;
    if (options_.queue_capacity == 0) options_.queue_capacity = 1;
    if (options_.trace.max_captured == 0) options_.trace.max_captured = 1;
    if (options_.id_stride == 0) options_.id_stride = 1;
    if (options_.use_memo) {
        // Install before the workers spawn so no decision ever races the
        // memo pointer; stamped with the model version in force now.
        memo_ = std::make_unique<asg::GroundingMemo>(options_.memo);
        memo_->set_epoch(ams_.model_version());
        ams_.set_grounding_memo(memo_.get());
    }
    workers_.reserve(options_.threads);
    for (std::size_t i = 0; i < options_.threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

DecisionService::~DecisionService() {
    {
        util::MutexLock lock(queue_mu_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
    // The AMS outlives the service; don't leave it pointing at our memo.
    if (memo_) ams_.set_grounding_memo(nullptr);
}

std::future<Decision> DecisionService::submit(cfg::TokenString request,
                                              std::chrono::microseconds timeout) {
    SubmitOptions submit_options;
    submit_options.timeout = timeout;
    return submit(std::move(request), std::move(submit_options));
}

std::future<Decision> DecisionService::submit(cfg::TokenString request,
                                              SubmitOptions submit_options) {
    auto now = std::chrono::steady_clock::now();
    Task task;
    task.tokens = std::move(request);
    task.enqueued = now;
    std::chrono::microseconds timeout = submit_options.timeout;
    if (timeout.count() <= 0) timeout = options_.default_timeout;
    task.deadline = timeout.count() > 0 ? now + timeout
                                        : std::chrono::steady_clock::time_point::max();
    task.trace_id = options_.id_offset +
                    (submitted_.fetch_add(1, std::memory_order_relaxed) + 1) * options_.id_stride;
    task.client_id = submit_options.client_id;
    task.on_complete = std::move(submit_options.on_complete);
    if (options_.trace.active()) {
        // Tail-based: record spans now, decide at completion whether the
        // tree is worth keeping. When only sampling is on, skip the
        // requests sampling will discard anyway.
        bool sampled = options_.trace.sample_every > 0 &&
                       task.trace_id % options_.trace.sample_every == 0;
        if (options_.trace.slow_threshold_us > 0 || sampled) {
            task.trace = std::make_unique<obs::TraceContext>(task.trace_id);
            task.trace->set_client(task.client_id);
            task.root_span = task.trace->begin_span("srv.request");
            task.queue_span = task.trace->begin_span("srv.queue_wait");
        }
    }
    auto future = task.promise.get_future();
    if (obs::metrics_enabled()) {
        static obs::Counter& requests = obs::metrics().counter("srv.requests");
        requests.add(1);
    }

    std::size_t depth = 0;
    bool rejected = false;
    {
        util::MutexLock lock(queue_mu_);
        if (stopping_ || queue_.size() >= options_.queue_capacity) {
            rejected = true;
        } else {
            queue_.push_back(std::move(task));
            depth = queue_.size();
        }
    }
    if (rejected) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) {
            static obs::Counter& overloaded = obs::metrics().counter("srv.overloaded");
            overloaded.add(1);
        }
        Decision decision;
        finish(decision, task, Outcome::Overloaded);
        task.promise.set_value(decision);
        if (task.on_complete) task.on_complete(decision);
        return future;
    }
    if (obs::metrics_enabled()) {
        static obs::Gauge& queue_depth = obs::metrics().gauge("srv.queue_depth");
        queue_depth.set(static_cast<std::int64_t>(depth));
    }
    queue_cv_.notify_one();
    return future;
}

std::vector<std::future<Decision>> DecisionService::submit_batch(
    std::vector<cfg::TokenString> requests) {
    std::vector<std::future<Decision>> futures;
    futures.reserve(requests.size());
    for (auto& r : requests) futures.push_back(submit(std::move(r)));
    return futures;
}

void DecisionService::drain() {
    util::MutexLock lock(queue_mu_);
    while (!(queue_.empty() && in_flight_ == 0)) drain_cv_.wait(queue_mu_);
}

bool DecisionService::give_feedback(std::size_t monitor_index, bool should_permit) {
    obs::ProfiledMutexLock lock(monitor_mu_);
    return ams_.give_feedback(monitor_index, should_permit);
}

void DecisionService::update_model(const std::function<void()>& fn) {
    obs::ProfiledWriteLock lock(state_mu_);
    fn();
    // Lazy invalidation, like the decision cache: stamping the new model
    // version here (no worker holds the shared lock) makes every fragment
    // and verdict inserted under the old version miss from now on.
    if (memo_) memo_->set_epoch(ams_.model_version());
}

std::size_t DecisionService::queue_depth() const {
    util::MutexLock lock(queue_mu_);
    return queue_.size();
}

ServiceStats DecisionService::snapshot_stats() const {
    ServiceStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.permitted = permitted_.load(std::memory_order_relaxed);
    out.denied = denied_.load(std::memory_order_relaxed);
    out.rejected_overload = rejected_.load(std::memory_order_relaxed);
    out.expired = expired_.load(std::memory_order_relaxed);
    out.traces_captured = traces_captured_.load(std::memory_order_relaxed);
    {
        util::MutexLock lock(queue_mu_);
        out.queue_depth = queue_.size();
    }
    out.cache = cache_.stats();
    if (memo_) out.memo = memo_->stats();
    return out;
}

std::vector<CapturedTrace> DecisionService::captured_traces() const {
    util::MutexLock lock(traces_mu_);
    return {captured_.begin(), captured_.end()};
}

std::string DecisionService::captured_traces_json() const {
    util::MutexLock lock(traces_mu_);
    std::vector<const obs::TraceContext*> traces;
    traces.reserve(captured_.size());
    for (const auto& c : captured_) traces.push_back(&c.trace);
    return obs::chrome_trace_json(traces);
}

void DecisionService::worker_loop() {
    while (true) {
        Task task;
        {
            util::MutexLock lock(queue_mu_);
            while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mu_);
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        Decision decision = process(task);
        task.promise.set_value(decision);
        if (task.on_complete) task.on_complete(decision);
        {
            util::MutexLock lock(queue_mu_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
        }
    }
}

void DecisionService::maybe_capture(Task& task, std::uint64_t total_us) {
    if (task.trace == nullptr) return;
    task.trace->end_span(task.root_span);
    const TraceOptions& opts = options_.trace;
    const char* reason = nullptr;
    if (opts.slow_threshold_us > 0 && total_us >= opts.slow_threshold_us) {
        reason = "slow";
    } else if (opts.sample_every > 0 && task.trace_id % opts.sample_every == 0) {
        reason = "sample";
    }
    if (reason == nullptr) return;  // fast and unsampled: drop the tree
    traces_captured_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
        static obs::Counter& captured = obs::metrics().counter("srv.traces_captured");
        captured.add(1);
    }
    util::MutexLock lock(traces_mu_);
    captured_.push_back(CapturedTrace{reason, std::move(*task.trace)});
    while (captured_.size() > opts.max_captured) captured_.pop_front();
}

void DecisionService::finish(Decision& decision, Task& task, Outcome outcome) {
    decision.outcome = outcome;
    decision.latency_us = elapsed_us(task.enqueued);
    decision.trace_id = task.trace_id;
    if (obs::metrics_enabled()) {
        static obs::Histogram& latency = obs::metrics().histogram("srv.latency_us");
        latency.observe(decision.latency_us);
    }
    FlightRecord record;
    record.id = task.trace_id;
    record.client = task.client_id;
    record.model_version = decision.model_version;
    record.queue_us = task.queue_us;
    record.solve_us = task.solve_us;
    record.total_us = decision.latency_us;
    record.outcome = static_cast<std::uint8_t>(outcome);
    record.cache_hit = decision.cache_hit;
    flight_.record(record);
    if (options_.audit != nullptr) {
        AuditEntry entry;
        entry.trace_id = task.trace_id;
        entry.client_id = task.client_id;
        entry.request_hash = util::fnv1a_hash(cfg::detokenize(task.tokens));
        entry.outcome = std::string(outcome_name(outcome));
        if (outcome == Outcome::Permit || outcome == Outcome::Deny) {
            entry.strategy = decision.cache_hit
                                 ? "cache"
                                 : framework::strategy_name(ams_.strategy());
        } else {
            entry.strategy = "none";  // rejected before reaching the PDP
        }
        entry.cache_hit = decision.cache_hit;
        entry.model_version = decision.model_version;
        entry.replica = options_.id_offset;
        entry.latency_us = decision.latency_us;
        entry.queue_us = task.queue_us;
        entry.solve_us = task.solve_us;
        options_.audit->record(std::move(entry));
    }
    maybe_capture(task, decision.latency_us);
}

Decision DecisionService::process(Task& task) {
    task.queue_us = elapsed_us(task.enqueued);
    if (task.trace != nullptr) task.trace->end_span(task.queue_span);
    // Deeper layers (PDP, membership, solver call sites) pick the context
    // up through obs::current_trace() for the rest of the evaluation.
    obs::TraceContextScope trace_scope(task.trace.get());
    obs::ScopedSpan span("srv.decide", "srv");
    Decision decision;
    decision.trace_id = task.trace_id;

    if (std::chrono::steady_clock::now() >= task.deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) {
            static obs::Counter& expired = obs::metrics().counter("srv.expired");
            expired.add(1);
        }
        finish(decision, task, Outcome::Expired);
        return decision;
    }

    bool permitted = false;
    {
        obs::ProfiledReadLock state(state_mu_);
        asp::Program context;
        {
            obs::TracePhase phase(task.trace.get(), "srv.context");
            context = ams_.pip().gather();
        }
        decision.model_version = ams_.model_version();

        auto solve = [&] {
            obs::TracePhase phase(task.trace.get(), "srv.solve");
            auto start = std::chrono::steady_clock::now();
            bool verdict = ams_.decide(task.tokens, context);
            task.solve_us = elapsed_us(start);
            return verdict;
        };
        if (options_.use_cache) {
            CacheKey key = DecisionCache::make_key(task.tokens, context);
            std::optional<bool> hit;
            {
                obs::TracePhase phase(task.trace.get(), "srv.cache_probe");
                static obs::CostCell& probe_cost = obs::costs().cell("srv.cache_probe");
                obs::ScopedCost cost(probe_cost);
                hit = cache_.lookup(key, decision.model_version);
            }
            if (hit) {
                permitted = *hit;
                decision.cache_hit = true;
            } else {
                permitted = solve();
                cache_.insert(key, decision.model_version, permitted);
            }
        } else {
            permitted = solve();
        }
        ams_.pep().enforce(task.tokens, permitted);

        framework::DecisionRecord record;
        record.request = task.tokens;
        record.context = std::move(context);
        record.permitted = permitted;
        record.model_version = decision.model_version;
        {
            obs::TracePhase phase(task.trace.get(), "srv.monitor");
            obs::ProfiledMutexLock monitor(monitor_mu_);
            decision.monitor_index = ams_.monitor().record(std::move(record));
        }
    }

    completed_.fetch_add(1, std::memory_order_relaxed);
    (permitted ? permitted_ : denied_).fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& hits = m.counter("srv.cache_hits");
        static obs::Counter& misses = m.counter("srv.cache_misses");
        static obs::Counter& decisions = m.counter("srv.decisions");
        decisions.add(1);
        (decision.cache_hit ? hits : misses).add(1);
    }
    finish(decision, task, permitted ? Outcome::Permit : Outcome::Deny);
    return decision;
}

}  // namespace agenp::srv
