// Wire protocol for cross-process serving (docs/PROTOCOL.md is the
// normative spec; this header is its implementation).
//
// Framing is newline-delimited JSON: a client sends one UTF-8 JSON object
// per line, the server answers with one JSON object per line. A request
// either asks for a decision (`{"decide":"do patrol","id":7}`) or names a
// control operation (`{"op":"ping"}`). Decision replies carry the echoed
// `id`, the outcome, and the decision metadata; failures are structured
// error objects (`{"error":"overloaded"}`) rather than closed sockets, so
// a client can always tell shed load from a dead server.
//
// The JSON parser here is deliberately small and dependency-free: full
// JSON values (objects, arrays, strings with escapes, numbers, literals)
// into an ordered DOM, enough for the protocol, its tests, and the
// PROTOCOL.md example round-trip suite. It rejects trailing garbage and
// invalid UTF-8 so a malformed line can never half-parse into a request.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "srv/service.hpp"

namespace agenp::srv {

// Protocol revision. Bumped only on incompatible changes to the framing
// or the meaning of existing fields; adding optional request or response
// fields is compatible and does not bump it (see docs/PROTOCOL.md).
inline constexpr int kProtocolVersion = 1;

// Hard cap a conforming server applies to one request line, terminator
// included. TransportOptions defaults to this; docs/PROTOCOL.md quotes it.
inline constexpr std::size_t kDefaultMaxLineBytes = 64 * 1024;

// --- minimal JSON DOM -------------------------------------------------------

class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    // Insertion-ordered; duplicate keys keep the last occurrence.
    std::vector<std::pair<std::string, JsonValue>> object;

    // Object member by key, or nullptr (also nullptr on non-objects).
    [[nodiscard]] const JsonValue* find(std::string_view key) const;

    [[nodiscard]] bool is_object() const { return type == Type::Object; }
    [[nodiscard]] bool is_string() const { return type == Type::String; }
    // Number representable as a non-negative integer (protocol ids,
    // timeouts and counters are all uint64).
    [[nodiscard]] bool is_uint() const;
    [[nodiscard]] std::uint64_t as_uint() const { return static_cast<std::uint64_t>(number); }
};

// Parses exactly one JSON value spanning the whole input (leading/trailing
// whitespace allowed, anything else is an error). On failure returns
// nullopt and, when `error` is non-null, a one-line reason.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

// True when `text` is well-formed UTF-8 (rejects overlong encodings,
// surrogate code points, and values beyond U+10FFFF).
bool valid_utf8(std::string_view text);

// --- request / response objects --------------------------------------------

struct WireRequest {
    std::string decide;       // token string to decide; empty for ops
    std::string op;           // "ping", or empty for decisions
    bool has_id = false;      // `id` was present and is echoed back
    std::uint64_t id = 0;
    std::uint64_t timeout_ms = 0;  // 0 = server default
};

// Parses one request line (already known to be valid UTF-8). On failure
// returns nullopt and fills `error` with the bad_request message; when the
// line carried a readable `id` it is reported through `id_out` so the
// error reply can still correlate.
std::optional<WireRequest> parse_wire_request(std::string_view line, std::string* error,
                                              std::optional<std::uint64_t>* id_out = nullptr);

// Renders the reply to a decision request: an outcome object for
// Permit/Deny, a structured error object for Overloaded/Expired.
std::string wire_decision_json(const WireRequest& request, const Decision& decision);

// Renders a structured error reply (`code` is one of the stable error
// codes from docs/PROTOCOL.md: bad_request, overloaded, expired).
std::string wire_error_json(std::optional<std::uint64_t> id, std::string_view code,
                            std::string_view message);

// Renders the `{"op":"ping"}` reply.
std::string wire_ping_json(std::optional<std::uint64_t> id, std::size_t replicas,
                           std::uint64_t model_version);

}  // namespace agenp::srv
