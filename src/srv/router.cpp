#include "srv/router.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace agenp::srv {

AmsRouter::AmsRouter(const AmsFactory& factory, RouterOptions options) {
    std::size_t n = std::max<std::size_t>(options.replicas, 1);
    ams_.reserve(n);
    services_.reserve(n);
    versions_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ams_.push_back(factory());
        ServiceOptions service_options = options.service;
        service_options.id_offset = i;
        service_options.id_stride = n;
        services_.push_back(std::make_unique<DecisionService>(*ams_[i], service_options));
        versions_.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(ams_[i]->model_version()));
    }
    if (obs::metrics_enabled()) {
        depth_gauges_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            depth_gauges_.push_back(&obs::metrics().gauge(
                "srv.router.queue_depth", {{"replica", std::to_string(i)}}));
        }
    }
}

std::size_t AmsRouter::replica_for(const cfg::TokenString& request) const {
    // Same placement hash family as the decision cache, so equal request
    // texts always map to the same replica.
    return util::fnv1a_hash(cfg::detokenize(request)) % services_.size();
}

std::future<Decision> AmsRouter::submit(cfg::TokenString request,
                                        DecisionService::SubmitOptions submit_options) {
    std::size_t primary = replica_for(request);
    std::size_t pick = primary;
    if (services_.size() > 1 &&
        services_[primary]->queue_depth() >= services_[primary]->options().queue_capacity) {
        // Primary saturated: spill to the first replica with queue room,
        // scanning from a rotating start so spill load spreads. If every
        // replica is full, stay on the primary — it rejects Overloaded.
        std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t k = 0; k < services_.size(); ++k) {
            std::size_t i = (start + k) % services_.size();
            if (i == primary) continue;
            if (services_[i]->queue_depth() < services_[i]->options().queue_capacity) {
                pick = i;
                break;
            }
        }
    }
    (pick == primary ? routed_affinity_ : routed_fallback_)
        .fetch_add(1, std::memory_order_relaxed);
    auto future = services_[pick]->submit(std::move(request), std::move(submit_options));
    if (!depth_gauges_.empty()) {
        depth_gauges_[pick]->set(static_cast<std::int64_t>(services_[pick]->queue_depth()));
    }
    return future;
}

std::uint64_t AmsRouter::update_model(
    const std::function<void(framework::AutonomousManagedSystem&)>& fn) {
    for (std::size_t i = 0; i < services_.size(); ++i) {
        services_[i]->update_model([&] { fn(*ams_[i]); });
        // Safe to read outside the lock: this thread is the only model
        // writer, and it just finished writing.
        versions_[i]->store(ams_[i]->model_version(), std::memory_order_relaxed);
    }
    return versions_[0]->load(std::memory_order_relaxed);
}

void AmsRouter::drain() {
    for (auto& service : services_) service->drain();
}

store::SnapshotData AmsRouter::export_state() {
    store::SnapshotData data;
    // Replica 0 is authoritative for model + repository: replicas agree
    // whenever updates went through update_model (versions_agree).
    services_[0]->update_model([&] {
        auto& ams = *ams_[0];
        data.model_version = ams.model_version();
        data.repo_version = ams.policies().version();
        data.repo_truncated = ams.policies().truncated();
        if (data.model_version > 0) {
            data.model_text = ams.model().to_string();
            data.model_note = ams.representations().note_for(data.model_version);
        }
        for (const auto& stored : ams.policies().all()) {
            data.policies.push_back(
                {cfg::detokenize(stored.policy), stored.source, stored.version});
        }
    });
    for (auto& service : services_) {
        for (auto& entry : service->cache().export_entries()) {
            data.entries.push_back({std::move(entry.text), entry.model_version, entry.permitted});
        }
    }
    return data;
}

StateRestoreReport AmsRouter::restore_state(const store::SnapshotData& data) {
    StateRestoreReport report;

    std::unique_ptr<asg::AnswerSetGrammar> model;
    if (data.model_version > 0 && !data.model_text.empty()) {
        try {
            model = std::make_unique<asg::AnswerSetGrammar>(
                asg::AnswerSetGrammar::parse(data.model_text));
        } catch (const std::exception& e) {
            report.warning = std::string("persisted model unparseable, serving initial: ") +
                             e.what();
        }
    }
    std::vector<framework::StoredPolicy> stored;
    stored.reserve(data.policies.size());
    for (const auto& policy : data.policies) {
        stored.push_back({cfg::tokenize(policy.text), policy.source, policy.version});
    }
    if (model || !stored.empty() || data.repo_version > 0) {
        update_model([&](framework::AutonomousManagedSystem& ams) {
            if (model) {
                ams.representations().restore(*model, data.model_version, data.model_note);
            }
            ams.policies().restore(stored, data.repo_version, data.repo_truncated);
        });
        report.model_restored = model != nullptr;
        report.policies_restored = stored.size();
    }
    report.model_version = model_version();

    if (!data.entries.empty() && services_[0]->options().use_cache) {
        // Re-partition by the same request-hash the submit path routes
        // with, over the replica count in force *now* — entries follow
        // their requests even when --replicas changed across the restart.
        std::vector<std::vector<CacheEntry>> parts(services_.size());
        for (const auto& entry : data.entries) {
            auto request = DecisionCache::request_text_of_key(entry.text);
            std::size_t i = util::fnv1a_hash(request) % services_.size();
            parts[i].push_back({entry.text, entry.model_version, entry.permitted});
        }
        for (std::size_t i = 0; i < services_.size(); ++i) {
            auto counts = services_[i]->cache().restore_entries(parts[i]);
            report.entries_restored += counts.restored;
            report.entries_skipped += counts.skipped;
        }
    }
    return report;
}

RouterStats AmsRouter::snapshot_stats() const {
    RouterStats out;
    out.replicas.reserve(services_.size());
    for (std::size_t i = 0; i < services_.size(); ++i) {
        ReplicaStats replica;
        replica.service = services_[i]->snapshot_stats();
        replica.queue_depth = replica.service.queue_depth;
        replica.model_version = versions_[i]->load(std::memory_order_relaxed);

        out.total.submitted += replica.service.submitted;
        out.total.completed += replica.service.completed;
        out.total.permitted += replica.service.permitted;
        out.total.denied += replica.service.denied;
        out.total.rejected_overload += replica.service.rejected_overload;
        out.total.expired += replica.service.expired;
        out.total.traces_captured += replica.service.traces_captured;
        out.total.queue_depth += replica.service.queue_depth;
        out.total.cache.hits += replica.service.cache.hits;
        out.total.cache.misses += replica.service.cache.misses;
        out.total.cache.insertions += replica.service.cache.insertions;
        out.total.cache.evictions += replica.service.cache.evictions;
        out.total.cache.invalidations += replica.service.cache.invalidations;
        out.total.cache.entries += replica.service.cache.entries;
        out.total.cache.bytes += replica.service.cache.bytes;
        out.total.memo.hits += replica.service.memo.hits;
        out.total.memo.misses += replica.service.memo.misses;
        out.total.memo.insertions += replica.service.memo.insertions;
        out.total.memo.evictions += replica.service.memo.evictions;
        out.total.memo.invalidations += replica.service.memo.invalidations;
        out.total.memo.sat_hits += replica.service.memo.sat_hits;
        out.total.memo.gate_fallbacks += replica.service.memo.gate_fallbacks;
        out.total.memo.entries += replica.service.memo.entries;
        out.total.memo.bytes += replica.service.memo.bytes;

        out.replicas.push_back(std::move(replica));
    }
    out.model_version = versions_[0]->load(std::memory_order_relaxed);
    out.versions_agree = true;
    for (const auto& replica : out.replicas) {
        if (replica.model_version != out.model_version) out.versions_agree = false;
    }
    out.routed_affinity = routed_affinity_.load(std::memory_order_relaxed);
    out.routed_fallback = routed_fallback_.load(std::memory_order_relaxed);
    return out;
}

std::vector<FlightRecord> AmsRouter::flight_snapshot() const {
    std::vector<FlightRecord> out;
    for (const auto& service : services_) {
        auto records = service->flight().snapshot();
        out.insert(out.end(), records.begin(), records.end());
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord& a, const FlightRecord& b) { return a.id < b.id; });
    return out;
}

std::vector<CapturedTrace> AmsRouter::captured_traces() const {
    std::vector<CapturedTrace> out;
    for (const auto& service : services_) {
        auto captured = service->captured_traces();
        for (auto& c : captured) out.push_back(std::move(c));
    }
    return out;
}

std::string AmsRouter::captured_traces_json() const {
    std::vector<CapturedTrace> captured = captured_traces();
    std::vector<const obs::TraceContext*> traces;
    traces.reserve(captured.size());
    for (const auto& c : captured) traces.push_back(&c.trace);
    return obs::chrome_trace_json(traces);
}

}  // namespace agenp::srv
