#include "srv/audit.hpp"

#include <cerrno>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/errors.hpp"

namespace agenp::srv {

namespace {

std::uint64_t wall_ms() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                          std::chrono::system_clock::now().time_since_epoch())
                                          .count());
}

}  // namespace

std::string audit_entry_json(const AuditEntry& entry) {
    std::string out = "{";
    out += "\"ts_ms\":" + std::to_string(entry.ts_ms);
    out += ",\"trace_id\":" + std::to_string(entry.trace_id);
    out += ",\"client\":" + std::to_string(entry.client_id);
    out += ",\"request_hash\":\"" + std::to_string(entry.request_hash) + "\"";
    out += ",\"outcome\":\"" + obs::json_escape(entry.outcome) + "\"";
    out += ",\"strategy\":\"" + obs::json_escape(entry.strategy) + "\"";
    out += std::string(",\"cache_hit\":") + (entry.cache_hit ? "true" : "false");
    out += ",\"model_version\":" + std::to_string(entry.model_version);
    out += ",\"replica\":" + std::to_string(entry.replica);
    out += ",\"latency_us\":" + std::to_string(entry.latency_us);
    out += ",\"queue_us\":" + std::to_string(entry.queue_us);
    out += ",\"solve_us\":" + std::to_string(entry.solve_us);
    out += "}";
    return out;
}

AuditLog::AuditLog(AuditOptions options) : options_(std::move(options)) {
    if (options_.sample_every == 0) options_.sample_every = 1;
    if (options_.max_bytes == 0) options_.max_bytes = 1;
    file_ = std::fopen(options_.path.c_str(), "ae");
    if (file_ == nullptr) {
        throw std::runtime_error("cannot open audit log " + options_.path + ": " +
                                 util::errno_string());
    }
    long pos = std::ftell(file_);
    bytes_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

AuditLog::~AuditLog() {
    obs::ProfiledMutexLock lock(mutex_);
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
}

void AuditLog::rotate_locked() {
    std::fclose(file_);
    file_ = nullptr;
    std::string previous = options_.path + ".1";
    std::rename(options_.path.c_str(), previous.c_str());
    file_ = std::fopen(options_.path.c_str(), "ae");
    bytes_ = 0;
    ++rotations_;
    if (obs::metrics_enabled()) {
        static obs::Counter& rotations = obs::metrics().counter("srv.audit.rotations");
        rotations.add(1);
    }
}

void AuditLog::record(AuditEntry entry) {
    if (entry.ts_ms == 0) entry.ts_ms = wall_ms();
    std::string line = audit_entry_json(entry);
    line.push_back('\n');

    obs::ProfiledMutexLock lock(mutex_);
    std::uint64_t seen = seen_++;
    if (options_.sample_every > 1 && seen % options_.sample_every != 0) {
        ++sampled_out_;
        if (obs::metrics_enabled()) {
            static obs::Counter& sampled = obs::metrics().counter("srv.audit.sampled_out");
            sampled.add(1);
        }
        return;
    }
    if (file_ != nullptr && bytes_ + line.size() > options_.max_bytes && bytes_ > 0) {
        rotate_locked();
    }
    if (file_ == nullptr ||
        std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
        if (obs::metrics_enabled()) {
            static obs::Counter& errors = obs::metrics().counter("srv.audit.write_errors");
            errors.add(1);
        }
        return;
    }
    std::fflush(file_);
    bytes_ += line.size();
    ++recorded_;
    if (obs::metrics_enabled()) {
        static obs::Counter& records = obs::metrics().counter("srv.audit.records");
        records.add(1);
    }
}

std::uint64_t AuditLog::recorded() const {
    obs::ProfiledMutexLock lock(mutex_);
    return recorded_;
}

std::uint64_t AuditLog::sampled_out() const {
    obs::ProfiledMutexLock lock(mutex_);
    return sampled_out_;
}

std::uint64_t AuditLog::rotations() const {
    obs::ProfiledMutexLock lock(mutex_);
    return rotations_;
}

}  // namespace agenp::srv
