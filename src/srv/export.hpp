// Serving-layer telemetry surfaces, shared by every consumer:
//
//   !stats / /statz / periodic reporter  -> serve_stats_json (one-line JSON)
//   GET /healthz                         -> healthz_json (liveness + drain)
//   GET /metrics  (Prometheus pull)      -> serve_exposition(...).prometheus()
//   --metrics-push (graphite push)       -> serve_exposition(...).graphite()
//
// The exposition enumerates one obs::Exposition from three sources — the
// process metrics registry, the lock-contention registry, and a
// RouterStats snapshot (model version, divergence, routing, aggregated
// cache) — so the pull and push exporters can never disagree about what a
// metric is called or how it is valued. serve_stats_json keeps its
// original key set: it is the compatibility surface for `!stats` JSON
// consumers and is not derived from the exposition.
#pragma once

#include <ctime>
#include <string>
#include <string_view>

#include "obs/export/exposition.hpp"
#include "srv/router.hpp"
#include "srv/transport.hpp"
#include "store/store.hpp"

namespace agenp::srv {

// One-line JSON for `!stats`, `/statz`, and the periodic reporter: summed
// service counters, cache, locks, router routing detail, per-replica rows,
// and transport counters when serving TCP (`server` may be null). With a
// StateStore attached (`--state-dir`) a "store" object rides along:
// snapshot count/age/bytes/entries, WAL growth, and what restore() found.
std::string serve_stats_json(const AmsRouter& router, const TcpServer* server,
                             const store::StateStore* state = nullptr);

// `/healthz` body: status ("ok" while serving, "draining" once shutdown
// starts), replica count, model version agreement, total queue depth.
std::string healthz_json(const AmsRouter& router, bool draining);

// The one shared enumerator: process registry + lock profiles + router
// snapshot (srv.up, srv.draining, srv.router.model_version,
// srv.router.versions_agree, srv.router.routed_*, srv.cache.*), plus the
// point-in-time store.* gauges (snapshot age/bytes/entries, wal bytes)
// when a StateStore is attached — the store's own counters are already in
// the process registry as agenp_store_*.
obs::Exposition serve_exposition(const AmsRouter& router, bool draining,
                                 const store::StateStore* state = nullptr);

// Renders serve_exposition as Prometheus text exposition format 0.0.4.
std::string serve_exposition_prometheus(const AmsRouter& router, bool draining,
                                        const store::StateStore* state = nullptr);

// Renders serve_exposition as graphite plaintext under `prefix`.
std::string serve_exposition_graphite(const AmsRouter& router, bool draining,
                                      std::string_view prefix, std::time_t timestamp,
                                      const store::StateStore* state = nullptr);

}  // namespace agenp::srv
