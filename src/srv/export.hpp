// Serving-layer telemetry surfaces, shared by every consumer:
//
//   !stats / /statz / periodic reporter  -> serve_stats_json (one-line JSON)
//   GET /healthz                         -> healthz_json (liveness + drain)
//   GET /metrics  (Prometheus pull)      -> serve_exposition(...).prometheus()
//   --metrics-push (graphite push)       -> serve_exposition(...).graphite()
//
// The exposition enumerates one obs::Exposition from three sources — the
// process metrics registry, the lock-contention registry, and a
// RouterStats snapshot (model version, divergence, routing, aggregated
// cache) — so the pull and push exporters can never disagree about what a
// metric is called or how it is valued. serve_stats_json keeps its
// original key set: it is the compatibility surface for `!stats` JSON
// consumers and is not derived from the exposition.
#pragma once

#include <chrono>
#include <ctime>
#include <string>
#include <string_view>

#include "obs/export/exposition.hpp"
#include "obs/window.hpp"
#include "srv/router.hpp"
#include "srv/transport.hpp"
#include "store/store.hpp"

namespace agenp::srv {

// Windowed SLO stats for one span, derived from the rolling window's
// srv.requests / srv.cache_hits / srv.cache_misses deltas and the
// srv.latency_us histogram delta.
struct WindowedServeStats {
    double seconds = 0.0;
    bool complete = false;  // false while the window is still warming up
    double requests_per_s = 0.0;
    double hit_rate = 0.0;  // 0 when the window saw no cache traffic
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
};
WindowedServeStats windowed_serve_stats(const obs::RollingWindow& window,
                                        std::chrono::seconds span);
// {"seconds":..,"complete":..,"req_s":..,"hit_rate":..,"p50_us":..,...}
std::string windowed_serve_stats_json(const WindowedServeStats& stats);

// One-line JSON for `!stats`, `/statz`, and the periodic reporter: summed
// service counters, cache, locks, router routing detail, per-replica rows,
// and transport counters when serving TCP (`server` may be null). With a
// StateStore attached (`--state-dir`) a "store" object rides along:
// snapshot count/age/bytes/entries, WAL growth, and what restore() found.
// With a rolling window attached, a "window" object with 10s/60s/300s
// spans and a "costs" array (the per-check cost table) ride along too —
// all additions are new keys; the original key set is unchanged.
std::string serve_stats_json(const AmsRouter& router, const TcpServer* server,
                             const store::StateStore* state = nullptr,
                             const obs::RollingWindow* window = nullptr);

// `/healthz` body: status ("ok" while serving, "draining" once shutdown
// starts), replica count, model version agreement, total queue depth.
std::string healthz_json(const AmsRouter& router, bool draining);

// The one shared enumerator: process registry + lock profiles + router
// snapshot (srv.up, srv.draining, srv.router.model_version,
// srv.router.versions_agree, srv.router.routed_*, srv.cache.*), plus the
// point-in-time store.* gauges (snapshot age/bytes/entries, wal bytes)
// when a StateStore is attached — the store's own counters are already in
// the process registry as agenp_store_*.
// With a rolling window attached, the exposition additionally carries the
// agenp_window_* families (requests_per_s, cache_hit_rate, latency
// quantiles, labeled by span) and the agenp_cost_* families (per-check
// calls, EWMA cost, frequency, us/s share from obs::costs()).
obs::Exposition serve_exposition(const AmsRouter& router, bool draining,
                                 const store::StateStore* state = nullptr,
                                 const obs::RollingWindow* window = nullptr);

// Renders serve_exposition as Prometheus text exposition format 0.0.4.
std::string serve_exposition_prometheus(const AmsRouter& router, bool draining,
                                        const store::StateStore* state = nullptr,
                                        const obs::RollingWindow* window = nullptr);

// Renders serve_exposition as graphite plaintext under `prefix`.
std::string serve_exposition_graphite(const AmsRouter& router, bool draining,
                                      std::string_view prefix, std::time_t timestamp,
                                      const store::StateStore* state = nullptr,
                                      const obs::RollingWindow* window = nullptr);

}  // namespace agenp::srv
