#include "srv/export.hpp"

#include <chrono>
#include <cstdio>

#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"

namespace agenp::srv {

namespace {

// Seconds since the store last wrote a snapshot; -1 before the first one.
std::int64_t snapshot_age_s(const store::StoreStatus& status) {
    if (status.last_snapshot_unix_ms == 0) return -1;
    auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (now_ms < status.last_snapshot_unix_ms) return 0;
    return static_cast<std::int64_t>((now_ms - status.last_snapshot_unix_ms) / 1000);
}

std::string store_status_json(const store::StoreStatus& status) {
    std::string out = "{";
    out += "\"snapshots\":" + std::to_string(status.snapshots_written);
    out += ",\"snapshot_failures\":" + std::to_string(status.snapshot_failures);
    out += ",\"snapshot_age_s\":" + std::to_string(snapshot_age_s(status));
    out += ",\"snapshot_bytes\":" + std::to_string(status.snapshot_bytes);
    out += ",\"snapshot_entries\":" + std::to_string(status.snapshot_entries);
    out += ",\"snapshot_policies\":" + std::to_string(status.snapshot_policies);
    out += ",\"wal_appends\":" + std::to_string(status.wal_appends);
    out += ",\"wal_bytes\":" + std::to_string(status.wal_bytes);
    out += std::string(",\"restored\":") + (status.restored ? "true" : "false");
    out += ",\"restored_entries\":" + std::to_string(status.restored_entries);
    out += ",\"wal_replayed\":" + std::to_string(status.wal_replayed);
    out += ",\"wal_discarded_bytes\":" + std::to_string(status.wal_discarded_bytes);
    out += "}";
    return out;
}

}  // namespace

std::string serve_stats_json(const AmsRouter& router, const TcpServer* server,
                             const store::StateStore* state) {
    RouterStats rs = router.snapshot_stats();
    const ServiceStats& stats = rs.total;
    std::string out = "{";
    out += "\"submitted\":" + std::to_string(stats.submitted);
    out += ",\"completed\":" + std::to_string(stats.completed);
    out += ",\"permitted\":" + std::to_string(stats.permitted);
    out += ",\"denied\":" + std::to_string(stats.denied);
    out += ",\"overloaded\":" + std::to_string(stats.rejected_overload);
    out += ",\"expired\":" + std::to_string(stats.expired);
    out += ",\"queue_depth\":" + std::to_string(stats.queue_depth);
    out += ",\"traces_captured\":" + std::to_string(stats.traces_captured);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", stats.cache.hit_rate());
    out += ",\"cache\":{\"hits\":" + std::to_string(stats.cache.hits) +
           ",\"misses\":" + std::to_string(stats.cache.misses) + ",\"hit_rate\":" + buf +
           ",\"entries\":" + std::to_string(stats.cache.entries) +
           ",\"bytes\":" + std::to_string(stats.cache.bytes) +
           ",\"evictions\":" + std::to_string(stats.cache.evictions) +
           ",\"invalidations\":" + std::to_string(stats.cache.invalidations) + "}";
    out += ",\"locks\":" + obs::locks().render_json();
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"routed\":{\"affinity\":" + std::to_string(rs.routed_affinity) +
           ",\"fallback\":" + std::to_string(rs.routed_fallback) + "}";
    out += ",\"replicas\":[";
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        const ReplicaStats& replica = rs.replicas[i];
        if (i > 0) out += ",";
        out += "{\"queue_depth\":" + std::to_string(replica.queue_depth) +
               ",\"model_version\":" + std::to_string(replica.model_version) +
               ",\"submitted\":" + std::to_string(replica.service.submitted) +
               ",\"completed\":" + std::to_string(replica.service.completed) + "}";
    }
    out += "]";
    if (server != nullptr) out += ",\"conn\":" + transport_stats_json(server->stats());
    if (state != nullptr) out += ",\"store\":" + store_status_json(state->status());
    out += "}";
    return out;
}

std::string healthz_json(const AmsRouter& router, bool draining) {
    RouterStats rs = router.snapshot_stats();
    std::string out = "{";
    out += std::string("\"status\":\"") + (draining ? "draining" : "ok") + "\"";
    out += ",\"replicas\":" + std::to_string(rs.replicas.size());
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"queue_depth\":" + std::to_string(rs.total.queue_depth);
    out += "}";
    return out;
}

obs::Exposition serve_exposition(const AmsRouter& router, bool draining,
                                 const store::StateStore* state) {
    obs::Exposition exposition;
    exposition.append_registry(obs::metrics());
    exposition.append_locks(obs::locks());

    RouterStats rs = router.snapshot_stats();
    exposition.add_gauge("srv.up", {}, 1, "1 while the serve process is alive");
    exposition.add_gauge("srv.draining", {}, draining ? 1 : 0,
                         "1 once graceful shutdown has started");
    exposition.add_gauge("srv.router.model_version", {},
                         static_cast<std::int64_t>(rs.model_version),
                         "Model version on replica 0");
    exposition.add_gauge("srv.router.versions_agree", {}, rs.versions_agree ? 1 : 0,
                         "1 when every replica serves the same model version");
    exposition.add_counter("srv.router.routed_affinity", {}, rs.routed_affinity,
                           "Requests routed to their hash-affinity replica");
    exposition.add_counter("srv.router.routed_fallback", {}, rs.routed_fallback,
                           "Requests spilled to a fallback replica");
    exposition.add_gauge("srv.cache.entries", {}, static_cast<std::int64_t>(rs.total.cache.entries),
                         "Decision-cache entries across replicas");
    exposition.add_gauge("srv.cache.bytes", {}, static_cast<std::int64_t>(rs.total.cache.bytes),
                         "Decision-cache footprint in bytes across replicas");
    exposition.add_counter("srv.cache.evictions", {}, rs.total.cache.evictions,
                           "Decision-cache capacity evictions across replicas");
    exposition.add_counter("srv.cache.invalidations", {}, rs.total.cache.invalidations,
                           "Decision-cache version invalidations across replicas");
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        exposition.add_gauge("srv.replica.model_version", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].model_version),
                             "Model version by replica");
        exposition.add_gauge("srv.replica.queue_depth", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].queue_depth),
                             "Instantaneous queue depth by replica");
    }
    if (state != nullptr) {
        store::StoreStatus status = state->status();
        exposition.add_gauge("store.snapshot_age_seconds", {}, snapshot_age_s(status),
                             "Seconds since the last state snapshot (-1 before the first)");
        exposition.add_gauge("store.snapshot_size_bytes", {},
                             static_cast<std::int64_t>(status.snapshot_bytes),
                             "Size of the last written or loaded snapshot");
        exposition.add_gauge("store.snapshot_cache_entries", {},
                             static_cast<std::int64_t>(status.snapshot_entries),
                             "Cache entries in the last snapshot");
        exposition.add_gauge("store.restored", {}, status.restored ? 1 : 0,
                             "1 when this process warm-restarted from persisted state");
    }
    return exposition;
}

std::string serve_exposition_prometheus(const AmsRouter& router, bool draining,
                                        const store::StateStore* state) {
    return serve_exposition(router, draining, state).prometheus();
}

std::string serve_exposition_graphite(const AmsRouter& router, bool draining,
                                      std::string_view prefix, std::time_t timestamp,
                                      const store::StateStore* state) {
    return serve_exposition(router, draining, state).graphite(prefix, timestamp);
}

}  // namespace agenp::srv
