#include "srv/export.hpp"

#include <cstdio>

#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"

namespace agenp::srv {

std::string serve_stats_json(const AmsRouter& router, const TcpServer* server) {
    RouterStats rs = router.snapshot_stats();
    const ServiceStats& stats = rs.total;
    std::string out = "{";
    out += "\"submitted\":" + std::to_string(stats.submitted);
    out += ",\"completed\":" + std::to_string(stats.completed);
    out += ",\"permitted\":" + std::to_string(stats.permitted);
    out += ",\"denied\":" + std::to_string(stats.denied);
    out += ",\"overloaded\":" + std::to_string(stats.rejected_overload);
    out += ",\"expired\":" + std::to_string(stats.expired);
    out += ",\"queue_depth\":" + std::to_string(stats.queue_depth);
    out += ",\"traces_captured\":" + std::to_string(stats.traces_captured);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", stats.cache.hit_rate());
    out += ",\"cache\":{\"hits\":" + std::to_string(stats.cache.hits) +
           ",\"misses\":" + std::to_string(stats.cache.misses) + ",\"hit_rate\":" + buf +
           ",\"entries\":" + std::to_string(stats.cache.entries) +
           ",\"bytes\":" + std::to_string(stats.cache.bytes) +
           ",\"evictions\":" + std::to_string(stats.cache.evictions) +
           ",\"invalidations\":" + std::to_string(stats.cache.invalidations) + "}";
    out += ",\"locks\":" + obs::locks().render_json();
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"routed\":{\"affinity\":" + std::to_string(rs.routed_affinity) +
           ",\"fallback\":" + std::to_string(rs.routed_fallback) + "}";
    out += ",\"replicas\":[";
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        const ReplicaStats& replica = rs.replicas[i];
        if (i > 0) out += ",";
        out += "{\"queue_depth\":" + std::to_string(replica.queue_depth) +
               ",\"model_version\":" + std::to_string(replica.model_version) +
               ",\"submitted\":" + std::to_string(replica.service.submitted) +
               ",\"completed\":" + std::to_string(replica.service.completed) + "}";
    }
    out += "]";
    if (server != nullptr) out += ",\"conn\":" + transport_stats_json(server->stats());
    out += "}";
    return out;
}

std::string healthz_json(const AmsRouter& router, bool draining) {
    RouterStats rs = router.snapshot_stats();
    std::string out = "{";
    out += std::string("\"status\":\"") + (draining ? "draining" : "ok") + "\"";
    out += ",\"replicas\":" + std::to_string(rs.replicas.size());
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"queue_depth\":" + std::to_string(rs.total.queue_depth);
    out += "}";
    return out;
}

obs::Exposition serve_exposition(const AmsRouter& router, bool draining) {
    obs::Exposition exposition;
    exposition.append_registry(obs::metrics());
    exposition.append_locks(obs::locks());

    RouterStats rs = router.snapshot_stats();
    exposition.add_gauge("srv.up", {}, 1, "1 while the serve process is alive");
    exposition.add_gauge("srv.draining", {}, draining ? 1 : 0,
                         "1 once graceful shutdown has started");
    exposition.add_gauge("srv.router.model_version", {},
                         static_cast<std::int64_t>(rs.model_version),
                         "Model version on replica 0");
    exposition.add_gauge("srv.router.versions_agree", {}, rs.versions_agree ? 1 : 0,
                         "1 when every replica serves the same model version");
    exposition.add_counter("srv.router.routed_affinity", {}, rs.routed_affinity,
                           "Requests routed to their hash-affinity replica");
    exposition.add_counter("srv.router.routed_fallback", {}, rs.routed_fallback,
                           "Requests spilled to a fallback replica");
    exposition.add_gauge("srv.cache.entries", {}, static_cast<std::int64_t>(rs.total.cache.entries),
                         "Decision-cache entries across replicas");
    exposition.add_gauge("srv.cache.bytes", {}, static_cast<std::int64_t>(rs.total.cache.bytes),
                         "Decision-cache footprint in bytes across replicas");
    exposition.add_counter("srv.cache.evictions", {}, rs.total.cache.evictions,
                           "Decision-cache capacity evictions across replicas");
    exposition.add_counter("srv.cache.invalidations", {}, rs.total.cache.invalidations,
                           "Decision-cache version invalidations across replicas");
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        exposition.add_gauge("srv.replica.model_version", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].model_version),
                             "Model version by replica");
        exposition.add_gauge("srv.replica.queue_depth", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].queue_depth),
                             "Instantaneous queue depth by replica");
    }
    return exposition;
}

std::string serve_exposition_prometheus(const AmsRouter& router, bool draining) {
    return serve_exposition(router, draining).prometheus();
}

std::string serve_exposition_graphite(const AmsRouter& router, bool draining,
                                      std::string_view prefix, std::time_t timestamp) {
    return serve_exposition(router, draining).graphite(prefix, timestamp);
}

}  // namespace agenp::srv
