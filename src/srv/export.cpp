#include "srv/export.hpp"

#include <chrono>
#include <cstdio>

#include "obs/costtable.hpp"
#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"

namespace agenp::srv {

namespace {

// The three spans every windowed surface reports.
constexpr std::chrono::seconds kWindowSpans[] = {std::chrono::seconds(10),
                                                 std::chrono::seconds(60),
                                                 std::chrono::seconds(300)};

const char* span_name(std::chrono::seconds span) {
    switch (span.count()) {
        case 10: return "10s";
        case 60: return "60s";
        case 300: return "300s";
        default: return "?";
    }
}

// Seconds since the store last wrote a snapshot; -1 before the first one.
std::int64_t snapshot_age_s(const store::StoreStatus& status) {
    if (status.last_snapshot_unix_ms == 0) return -1;
    auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (now_ms < status.last_snapshot_unix_ms) return 0;
    return static_cast<std::int64_t>((now_ms - status.last_snapshot_unix_ms) / 1000);
}

std::string store_status_json(const store::StoreStatus& status) {
    std::string out = "{";
    out += "\"snapshots\":" + std::to_string(status.snapshots_written);
    out += ",\"snapshot_failures\":" + std::to_string(status.snapshot_failures);
    out += ",\"snapshot_age_s\":" + std::to_string(snapshot_age_s(status));
    out += ",\"snapshot_bytes\":" + std::to_string(status.snapshot_bytes);
    out += ",\"snapshot_entries\":" + std::to_string(status.snapshot_entries);
    out += ",\"snapshot_policies\":" + std::to_string(status.snapshot_policies);
    out += ",\"wal_appends\":" + std::to_string(status.wal_appends);
    out += ",\"wal_bytes\":" + std::to_string(status.wal_bytes);
    out += std::string(",\"restored\":") + (status.restored ? "true" : "false");
    out += ",\"restored_entries\":" + std::to_string(status.restored_entries);
    out += ",\"wal_replayed\":" + std::to_string(status.wal_replayed);
    out += ",\"wal_discarded_bytes\":" + std::to_string(status.wal_discarded_bytes);
    out += "}";
    return out;
}

}  // namespace

WindowedServeStats windowed_serve_stats(const obs::RollingWindow& window,
                                        std::chrono::seconds span) {
    obs::WindowDelta delta = window.window(span);
    WindowedServeStats stats;
    stats.seconds = delta.seconds;
    stats.complete = delta.complete;
    stats.requests_per_s = delta.rate("srv.requests");
    std::uint64_t hits = delta.counter("srv.cache_hits");
    std::uint64_t misses = delta.counter("srv.cache_misses");
    if (hits + misses > 0) {
        stats.hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
    if (const obs::Histogram::Snapshot* latency = delta.histogram("srv.latency_us");
        latency != nullptr) {
        stats.p50_us = latency->quantile(0.5);
        stats.p95_us = latency->quantile(0.95);
        stats.p99_us = latency->quantile(0.99);
    }
    return stats;
}

std::string windowed_serve_stats_json(const WindowedServeStats& stats) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"seconds\":%.1f,\"complete\":%s,\"req_s\":%.2f,\"hit_rate\":%.3f,"
                  "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f}",
                  stats.seconds, stats.complete ? "true" : "false", stats.requests_per_s,
                  stats.hit_rate, stats.p50_us, stats.p95_us, stats.p99_us);
    return buf;
}

std::string serve_stats_json(const AmsRouter& router, const TcpServer* server,
                             const store::StateStore* state, const obs::RollingWindow* window) {
    RouterStats rs = router.snapshot_stats();
    const ServiceStats& stats = rs.total;
    std::string out = "{";
    out += "\"submitted\":" + std::to_string(stats.submitted);
    out += ",\"completed\":" + std::to_string(stats.completed);
    out += ",\"permitted\":" + std::to_string(stats.permitted);
    out += ",\"denied\":" + std::to_string(stats.denied);
    out += ",\"overloaded\":" + std::to_string(stats.rejected_overload);
    out += ",\"expired\":" + std::to_string(stats.expired);
    out += ",\"queue_depth\":" + std::to_string(stats.queue_depth);
    out += ",\"traces_captured\":" + std::to_string(stats.traces_captured);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", stats.cache.hit_rate());
    out += ",\"cache\":{\"hits\":" + std::to_string(stats.cache.hits) +
           ",\"misses\":" + std::to_string(stats.cache.misses) + ",\"hit_rate\":" + buf +
           ",\"entries\":" + std::to_string(stats.cache.entries) +
           ",\"bytes\":" + std::to_string(stats.cache.bytes) +
           ",\"evictions\":" + std::to_string(stats.cache.evictions) +
           ",\"invalidations\":" + std::to_string(stats.cache.invalidations) + "}";
    out += ",\"memo\":{\"hits\":" + std::to_string(stats.memo.hits) +
           ",\"misses\":" + std::to_string(stats.memo.misses) +
           ",\"sat_hits\":" + std::to_string(stats.memo.sat_hits) +
           ",\"entries\":" + std::to_string(stats.memo.entries) +
           ",\"bytes\":" + std::to_string(stats.memo.bytes) +
           ",\"evictions\":" + std::to_string(stats.memo.evictions) +
           ",\"invalidations\":" + std::to_string(stats.memo.invalidations) +
           ",\"gate_fallbacks\":" + std::to_string(stats.memo.gate_fallbacks) + "}";
    out += ",\"locks\":" + obs::locks().render_json();
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"routed\":{\"affinity\":" + std::to_string(rs.routed_affinity) +
           ",\"fallback\":" + std::to_string(rs.routed_fallback) + "}";
    out += ",\"replicas\":[";
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        const ReplicaStats& replica = rs.replicas[i];
        if (i > 0) out += ",";
        out += "{\"queue_depth\":" + std::to_string(replica.queue_depth) +
               ",\"model_version\":" + std::to_string(replica.model_version) +
               ",\"submitted\":" + std::to_string(replica.service.submitted) +
               ",\"completed\":" + std::to_string(replica.service.completed) + "}";
    }
    out += "]";
    if (server != nullptr) out += ",\"conn\":" + transport_stats_json(server->stats());
    if (state != nullptr) out += ",\"store\":" + store_status_json(state->status());
    if (window != nullptr) {
        out += ",\"window\":{";
        bool first = true;
        for (std::chrono::seconds span : kWindowSpans) {
            if (!first) out += ",";
            first = false;
            out += std::string("\"") + span_name(span) +
                   "\":" + windowed_serve_stats_json(windowed_serve_stats(*window, span));
        }
        out += "}";
        out += ",\"costs\":" + obs::costs().render_json();
    }
    out += "}";
    return out;
}

std::string healthz_json(const AmsRouter& router, bool draining) {
    RouterStats rs = router.snapshot_stats();
    std::string out = "{";
    out += std::string("\"status\":\"") + (draining ? "draining" : "ok") + "\"";
    out += ",\"replicas\":" + std::to_string(rs.replicas.size());
    out += ",\"model_version\":" + std::to_string(rs.model_version);
    out += rs.versions_agree ? ",\"versions_agree\":true" : ",\"versions_agree\":false";
    out += ",\"queue_depth\":" + std::to_string(rs.total.queue_depth);
    out += "}";
    return out;
}

obs::Exposition serve_exposition(const AmsRouter& router, bool draining,
                                 const store::StateStore* state,
                                 const obs::RollingWindow* window) {
    obs::Exposition exposition;
    exposition.append_registry(obs::metrics());
    exposition.append_locks(obs::locks());

    RouterStats rs = router.snapshot_stats();
    exposition.add_gauge("srv.up", {}, 1, "1 while the serve process is alive");
    exposition.add_gauge("srv.draining", {}, draining ? 1 : 0,
                         "1 once graceful shutdown has started");
    exposition.add_gauge("srv.router.model_version", {},
                         static_cast<std::int64_t>(rs.model_version),
                         "Model version on replica 0");
    exposition.add_gauge("srv.router.versions_agree", {}, rs.versions_agree ? 1 : 0,
                         "1 when every replica serves the same model version");
    exposition.add_counter("srv.router.routed_affinity", {}, rs.routed_affinity,
                           "Requests routed to their hash-affinity replica");
    exposition.add_counter("srv.router.routed_fallback", {}, rs.routed_fallback,
                           "Requests spilled to a fallback replica");
    exposition.add_gauge("srv.cache.entries", {}, static_cast<std::int64_t>(rs.total.cache.entries),
                         "Decision-cache entries across replicas");
    exposition.add_gauge("srv.cache.bytes", {}, static_cast<std::int64_t>(rs.total.cache.bytes),
                         "Decision-cache footprint in bytes across replicas");
    exposition.add_counter("srv.cache.evictions", {}, rs.total.cache.evictions,
                           "Decision-cache capacity evictions across replicas");
    exposition.add_counter("srv.cache.invalidations", {}, rs.total.cache.invalidations,
                           "Decision-cache version invalidations across replicas");
    exposition.add_counter("memo.hits", {}, rs.total.memo.hits,
                           "Grounding-memo fragment hits across replicas");
    exposition.add_counter("memo.misses", {}, rs.total.memo.misses,
                           "Grounding-memo fragment misses across replicas");
    exposition.add_counter("memo.sat_hits", {}, rs.total.memo.sat_hits,
                           "Grounding-memo verdict hits (solver skipped) across replicas");
    exposition.add_gauge("memo.entries", {}, static_cast<std::int64_t>(rs.total.memo.entries),
                         "Grounding-memo entries across replicas");
    exposition.add_gauge("memo.bytes", {}, static_cast<std::int64_t>(rs.total.memo.bytes),
                         "Grounding-memo footprint in bytes across replicas");
    exposition.add_counter("memo.evictions", {}, rs.total.memo.evictions,
                           "Grounding-memo capacity evictions across replicas");
    exposition.add_counter("memo.invalidations", {}, rs.total.memo.invalidations,
                           "Grounding-memo model-version invalidations across replicas");
    exposition.add_counter("memo.gate_fallbacks", {}, rs.total.memo.gate_fallbacks,
                           "Queries where the memoizability gate forced the slow path");
    for (std::size_t i = 0; i < rs.replicas.size(); ++i) {
        exposition.add_gauge("srv.replica.model_version", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].model_version),
                             "Model version by replica");
        exposition.add_gauge("srv.replica.queue_depth", {{"replica", std::to_string(i)}},
                             static_cast<std::int64_t>(rs.replicas[i].queue_depth),
                             "Instantaneous queue depth by replica");
    }
    if (state != nullptr) {
        store::StoreStatus status = state->status();
        exposition.add_gauge("store.snapshot_age_seconds", {}, snapshot_age_s(status),
                             "Seconds since the last state snapshot (-1 before the first)");
        exposition.add_gauge("store.snapshot_size_bytes", {},
                             static_cast<std::int64_t>(status.snapshot_bytes),
                             "Size of the last written or loaded snapshot");
        exposition.add_gauge("store.snapshot_cache_entries", {},
                             static_cast<std::int64_t>(status.snapshot_entries),
                             "Cache entries in the last snapshot");
        exposition.add_gauge("store.restored", {}, status.restored ? 1 : 0,
                             "1 when this process warm-restarted from persisted state");
    }
    if (window != nullptr) {
        for (std::chrono::seconds span : kWindowSpans) {
            WindowedServeStats ws = windowed_serve_stats(*window, span);
            obs::MetricLabels labels{{"span", span_name(span)}};
            exposition.add_gauge_d("window.requests_per_s", labels, ws.requests_per_s,
                                   "Windowed request rate by span");
            exposition.add_gauge_d("window.cache_hit_rate", labels, ws.hit_rate,
                                   "Windowed decision-cache hit rate by span");
            exposition.add_gauge_d("window.latency_p50_us", labels, ws.p50_us,
                                   "Windowed p50 request latency by span");
            exposition.add_gauge_d("window.latency_p95_us", labels, ws.p95_us,
                                   "Windowed p95 request latency by span");
            exposition.add_gauge_d("window.latency_p99_us", labels, ws.p99_us,
                                   "Windowed p99 request latency by span");
        }
        for (const obs::CostEntry& entry : obs::costs().snapshot()) {
            obs::MetricLabels labels{{"check", entry.check}};
            exposition.add_counter("cost.calls", labels, entry.calls,
                                   "Observed calls by named check");
            exposition.add_gauge_d("cost.ewma_us", labels, entry.ewma_us,
                                   "EWMA per-call cost in microseconds by named check");
            exposition.add_gauge_d("cost.frequency_hz", labels, entry.frequency_hz,
                                   "EWMA call frequency by named check");
            exposition.add_gauge_d("cost.us_per_s", labels, entry.us_per_s,
                                   "Expected wall-time share (ewma_us x hz) by named check");
        }
    }
    return exposition;
}

std::string serve_exposition_prometheus(const AmsRouter& router, bool draining,
                                        const store::StateStore* state,
                                        const obs::RollingWindow* window) {
    return serve_exposition(router, draining, state, window).prometheus();
}

std::string serve_exposition_graphite(const AmsRouter& router, bool draining,
                                      std::string_view prefix, std::time_t timestamp,
                                      const store::StateStore* state,
                                      const obs::RollingWindow* window) {
    return serve_exposition(router, draining, state, window).graphite(prefix, timestamp);
}

}  // namespace agenp::srv
