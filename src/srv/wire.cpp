#include "srv/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"

namespace agenp::srv {

namespace {

// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue> parse(std::string* error) {
        JsonValue value;
        skip_ws();
        if (!parse_value(value)) {
            if (error != nullptr) *error = error_;
            return std::nullopt;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            if (error != nullptr) *error = "trailing characters after JSON value";
            return std::nullopt;
        }
        return value;
    }

private:
    bool fail(const char* message) {
        error_ = message;
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return fail("invalid literal");
        pos_ += literal.size();
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (depth_ > kMaxDepth) return fail("JSON nesting too deep");
        if (eof()) return fail("unexpected end of input");
        switch (peek()) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': out.type = JsonValue::Type::String; return parse_string(out.string);
            case 't':
                out.type = JsonValue::Type::Bool;
                out.boolean = true;
                return consume_literal("true");
            case 'f':
                out.type = JsonValue::Type::Bool;
                out.boolean = false;
                return consume_literal("false");
            case 'n': out.type = JsonValue::Type::Null; return consume_literal("null");
            default: return parse_number(out);
        }
    }

    bool parse_object(JsonValue& out) {
        out.type = JsonValue::Type::Object;
        ++depth_;
        ++pos_;  // '{'
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected object key");
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (eof() || peek() != ':') return fail("expected ':' after object key");
            ++pos_;
            skip_ws();
            JsonValue value;
            if (!parse_value(value)) return false;
            // Last duplicate wins, matching common JSON library behaviour.
            bool replaced = false;
            for (auto& [k, v] : out.object) {
                if (k == key) {
                    v = std::move(value);
                    replaced = true;
                    break;
                }
            }
            if (!replaced) out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (eof()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parse_array(JsonValue& out) {
        out.type = JsonValue::Type::Array;
        ++depth_;
        ++pos_;  // '['
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue value;
            if (!parse_value(value)) return false;
            out.array.push_back(std::move(value));
            skip_ws();
            if (eof()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parse_hex4(std::uint32_t& out) {
        if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9') {
                out |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                return fail("invalid \\u escape");
            }
        }
        return true;
    }

    static void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (true) {
            if (eof()) return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (eof()) return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    std::uint32_t cp = 0;
                    if (!parse_hex4(cp)) return false;
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: must pair with a \uDC00..\uDFFF.
                        if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            return fail("unpaired surrogate in \\u escape");
                        }
                        pos_ += 2;
                        std::uint32_t low = 0;
                        if (!parse_hex4(low)) return false;
                        if (low < 0xDC00 || low > 0xDFFF) {
                            return fail("unpaired surrogate in \\u escape");
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("unpaired surrogate in \\u escape");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: return fail("invalid escape character");
            }
        }
    }

    bool parse_number(JsonValue& out) {
        std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            return fail("invalid number");
        }
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return fail("invalid number");
            }
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return fail("invalid number");
            }
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
        return true;
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object) {
        if (k == key) return &v;
    }
    return nullptr;
}

bool JsonValue::is_uint() const {
    return type == Type::Number && number >= 0 && std::floor(number) == number &&
           number <= 9.007199254740992e15;  // 2^53: exactly representable
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
    return JsonParser(text).parse(error);
}

bool valid_utf8(std::string_view text) {
    std::size_t i = 0;
    while (i < text.size()) {
        auto byte = static_cast<unsigned char>(text[i]);
        std::size_t len;
        std::uint32_t cp;
        if (byte < 0x80) {
            ++i;
            continue;
        } else if ((byte & 0xE0) == 0xC0) {
            len = 2;
            cp = byte & 0x1Fu;
        } else if ((byte & 0xF0) == 0xE0) {
            len = 3;
            cp = byte & 0x0Fu;
        } else if ((byte & 0xF8) == 0xF0) {
            len = 4;
            cp = byte & 0x07u;
        } else {
            return false;  // continuation or invalid lead byte
        }
        if (i + len > text.size()) return false;
        for (std::size_t k = 1; k < len; ++k) {
            auto cont = static_cast<unsigned char>(text[i + k]);
            if ((cont & 0xC0) != 0x80) return false;
            cp = (cp << 6) | (cont & 0x3Fu);
        }
        // Overlong encodings, surrogates, and out-of-range code points.
        static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
        if (cp < kMinForLen[len]) return false;
        if (cp >= 0xD800 && cp <= 0xDFFF) return false;
        if (cp > 0x10FFFF) return false;
        i += len;
    }
    return true;
}

std::optional<WireRequest> parse_wire_request(std::string_view line, std::string* error,
                                              std::optional<std::uint64_t>* id_out) {
    if (id_out != nullptr) id_out->reset();
    std::string parse_error;
    auto value = parse_json(line, &parse_error);
    if (!value) {
        *error = "line is not a JSON object";
        return std::nullopt;
    }
    if (!value->is_object()) {
        *error = "line is not a JSON object";
        return std::nullopt;
    }

    WireRequest request;
    if (const JsonValue* id = value->find("id")) {
        if (!id->is_uint()) {
            *error = "field 'id' must be a non-negative integer";
            return std::nullopt;
        }
        request.has_id = true;
        request.id = id->as_uint();
        if (id_out != nullptr) *id_out = request.id;
    }
    const JsonValue* decide = value->find("decide");
    const JsonValue* op = value->find("op");
    if (decide != nullptr && op != nullptr) {
        *error = "request cannot carry both 'decide' and 'op'";
        return std::nullopt;
    }
    if (decide != nullptr) {
        if (!decide->is_string()) {
            *error = "field 'decide' must be a string";
            return std::nullopt;
        }
        if (decide->string.empty()) {
            *error = "field 'decide' must not be empty";
            return std::nullopt;
        }
        request.decide = decide->string;
    } else if (op != nullptr) {
        if (!op->is_string() || op->string != "ping") {
            *error = "unknown op (supported: ping)";
            return std::nullopt;
        }
        request.op = op->string;
    } else {
        *error = "request needs a 'decide' or 'op' field";
        return std::nullopt;
    }
    if (const JsonValue* timeout = value->find("timeout_ms")) {
        if (!timeout->is_uint()) {
            *error = "field 'timeout_ms' must be a non-negative integer";
            return std::nullopt;
        }
        request.timeout_ms = timeout->as_uint();
    }
    return request;
}

namespace {

void append_id(std::string& out, bool has_id, std::uint64_t id) {
    if (has_id) out += "\"id\":" + std::to_string(id) + ",";
}

}  // namespace

std::string wire_decision_json(const WireRequest& request, const Decision& decision) {
    if (decision.outcome == Outcome::Overloaded || decision.outcome == Outcome::Expired) {
        return wire_error_json(
            request.has_id ? std::optional<std::uint64_t>(request.id) : std::nullopt,
            decision.outcome == Outcome::Overloaded ? "overloaded" : "expired",
            decision.outcome == Outcome::Overloaded ? "request queue is full"
                                                    : "deadline passed before a worker was free");
    }
    std::string out = "{";
    append_id(out, request.has_id, request.id);
    out += "\"outcome\":";
    out += decision.outcome == Outcome::Permit ? "\"permit\"" : "\"deny\"";
    out += ",\"cache_hit\":";
    out += decision.cache_hit ? "true" : "false";
    out += ",\"model_version\":" + std::to_string(decision.model_version);
    out += ",\"latency_us\":" + std::to_string(decision.latency_us);
    out += ",\"trace_id\":" + std::to_string(decision.trace_id);
    out += "}";
    return out;
}

std::string wire_error_json(std::optional<std::uint64_t> id, std::string_view code,
                            std::string_view message) {
    std::string out = "{";
    append_id(out, id.has_value(), id.value_or(0));
    out += "\"error\":\"";
    out += code;
    out += "\"";
    if (!message.empty()) {
        out += ",\"message\":\"" + obs::json_escape(message) + "\"";
    }
    out += "}";
    return out;
}

std::string wire_ping_json(std::optional<std::uint64_t> id, std::size_t replicas,
                           std::uint64_t model_version) {
    std::string out = "{";
    append_id(out, id.has_value(), id.value_or(0));
    out += "\"ok\":true,\"proto\":" + std::to_string(kProtocolVersion);
    out += ",\"replicas\":" + std::to_string(replicas);
    out += ",\"model_version\":" + std::to_string(model_version);
    out += "}";
    return out;
}

}  // namespace agenp::srv
