#include "srv/cache.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace agenp::srv {

DecisionCache::DecisionCache(CacheOptions options) : on_insert_(std::move(options.on_insert)) {
    std::size_t shards = std::bit_ceil(options.shards == 0 ? std::size_t{1} : options.shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
    shard_mask_ = shards - 1;
    shard_capacity_bytes_ = options.capacity_bytes / shards;
    if (shard_capacity_bytes_ == 0) shard_capacity_bytes_ = 1;
}

CacheKey DecisionCache::make_key(const cfg::TokenString& request, const asp::Program& context) {
    CacheKey key;
    key.text = cfg::detokenize(request);
    key.text += '\x1f';
    key.text += context.to_string();
    key.hash = util::fnv1a_hash(key.text);
    return key;
}

std::uint64_t DecisionCache::entry_bytes(const Entry& entry) {
    // Approximate footprint: key text plus list/map node overhead.
    return entry.text.size() + 64;
}

void DecisionCache::erase_entry(Shard& shard, std::list<Entry>::iterator it) {
    shard.bytes -= entry_bytes(*it);
    shard.index.erase(it->text);
    shard.lru.erase(it);
}

std::optional<bool> DecisionCache::lookup(const CacheKey& key, std::uint64_t model_version) {
    Shard& shard = shard_for(key.hash);
    obs::ProfiledMutexLock lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it == shard.index.end()) {
        ++shard.misses;
        return std::nullopt;
    }
    if (it->second->version != model_version) {
        erase_entry(shard, it->second);
        ++shard.invalidations;
        ++shard.misses;
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->permitted;
}

void DecisionCache::insert(const CacheKey& key, std::uint64_t model_version, bool permitted) {
    {
        Shard& shard = shard_for(key.hash);
        obs::ProfiledMutexLock lock(shard.mu);
        if (auto it = shard.index.find(key.text); it != shard.index.end()) {
            it->second->version = model_version;
            it->second->permitted = permitted;
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        } else {
            shard.lru.push_front({key.text, model_version, permitted});
            shard.index.emplace(shard.lru.front().text, shard.lru.begin());
            shard.bytes += entry_bytes(shard.lru.front());
            ++shard.insertions;
            while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
                erase_entry(shard, std::prev(shard.lru.end()));
                ++shard.evictions;
            }
        }
    }
    // Outside the shard lock: the WAL hook does file I/O.
    if (on_insert_) on_insert_({key.text, model_version, permitted});
}

std::vector<CacheEntry> DecisionCache::export_entries() const {
    std::vector<CacheEntry> out;
    for (const auto& shard : shards_) {
        obs::ProfiledMutexLock lock(shard->mu);
        for (const auto& entry : shard->lru) {
            out.push_back({entry.text, entry.version, entry.permitted});
        }
    }
    return out;
}

DecisionCache::RestoreCounts DecisionCache::restore_entries(const std::vector<CacheEntry>& entries) {
    RestoreCounts counts;
    for (const auto& entry : entries) {
        std::uint64_t hash = util::fnv1a_hash(entry.text);
        Shard& shard = shard_for(hash);
        obs::ProfiledMutexLock lock(shard.mu);
        if (auto it = shard.index.find(entry.text); it != shard.index.end()) {
            // Duplicate key: a WAL record replayed over its snapshot
            // entry. The later record wins; it counts as the same entry.
            it->second->version = entry.model_version;
            it->second->permitted = entry.permitted;
            continue;
        }
        // Append at the cold end so hottest-first input keeps its LRU
        // order; skip (never evict) once the shard's budget is spent —
        // the caller reports the truncation.
        std::uint64_t bytes = entry.text.size() + 64;
        if (shard.bytes + bytes > shard_capacity_bytes_ && !shard.lru.empty()) {
            ++counts.skipped;
            continue;
        }
        shard.lru.push_back({entry.text, entry.model_version, entry.permitted});
        shard.index.emplace(shard.lru.back().text, std::prev(shard.lru.end()));
        shard.bytes += entry_bytes(shard.lru.back());
        ++counts.restored;
    }
    return counts;
}

std::string_view DecisionCache::request_text_of_key(std::string_view key_text) {
    auto sep = key_text.find('\x1f');
    return sep == std::string_view::npos ? key_text : key_text.substr(0, sep);
}

void DecisionCache::clear() {
    for (auto& shard : shards_) {
        obs::ProfiledMutexLock lock(shard->mu);
        shard->index.clear();
        shard->lru.clear();
        shard->bytes = 0;
    }
}

CacheStats DecisionCache::stats() const {
    CacheStats out;
    for (const auto& shard : shards_) {
        obs::ProfiledMutexLock lock(shard->mu);
        out.hits += shard->hits;
        out.misses += shard->misses;
        out.insertions += shard->insertions;
        out.evictions += shard->evictions;
        out.invalidations += shard->invalidations;
        out.entries += shard->lru.size();
        out.bytes += shard->bytes;
    }
    return out;
}

}  // namespace agenp::srv
