#include "srv/loadgen.hpp"

#include <cstdio>
#include <thread>

#include "asp/parser.hpp"
#include "obs/metrics.hpp"
#include "srv/transport.hpp"
#include "srv/wire.hpp"
#include "util/rng.hpp"

namespace agenp::srv {

namespace {

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

}  // namespace

void LoadgenReport::fill_latency(const obs::Histogram::Snapshot& latency) {
    mean_us = latency.mean();
    p50_us = latency.quantile(0.5);
    p95_us = latency.quantile(0.95);
    p99_us = latency.quantile(0.99);
}

std::string LoadgenReport::to_json() const {
    std::string out = "{";
    out += "\"requests\":" + std::to_string(requests);
    out += ",\"permitted\":" + std::to_string(permitted);
    out += ",\"denied\":" + std::to_string(denied);
    out += ",\"overloaded\":" + std::to_string(overloaded);
    out += ",\"expired\":" + std::to_string(expired);
    out += ",\"seconds\":" + format_double(seconds);
    out += ",\"throughput_rps\":" + format_double(throughput_rps);
    out += ",\"mean_us\":" + format_double(mean_us);
    out += ",\"p50_us\":" + format_double(p50_us);
    out += ",\"p95_us\":" + format_double(p95_us);
    out += ",\"p99_us\":" + format_double(p99_us);
    out += ",\"hit_rate\":" + format_double(hit_rate);
    out += ",\"dropped\":" + std::to_string(dropped);
    out += "}";
    return out;
}

std::string LoadgenReport::render_text() const {
    std::string out;
    out += "requests: " + std::to_string(requests) + " (" + std::to_string(permitted) +
           " permit, " + std::to_string(denied) + " deny, " + std::to_string(overloaded) +
           " overloaded, " + std::to_string(expired) + " expired, " + std::to_string(dropped) +
           " dropped)\n";
    out += "throughput: " + format_double(throughput_rps) + " req/s over " +
           format_double(seconds) + " s\n";
    out += "latency us: mean " + format_double(mean_us) + ", p50 " + format_double(p50_us) +
           ", p95 " + format_double(p95_us) + ", p99 " + format_double(p99_us) + "\n";
    out += "cache hit rate: " + format_double(hit_rate) + "\n";
    return out;
}

LoadgenReport run_loadgen(DecisionService& service, const std::vector<cfg::TokenString>& workload,
                          const LoadgenOptions& options) {
    LoadgenReport report;
    if (workload.empty() || options.clients == 0) return report;

    CacheStats before = service.cache().stats();

    struct ClientResult {
        std::size_t requests = 0;
        std::size_t permitted = 0, denied = 0, overloaded = 0, expired = 0;
    };
    std::vector<ClientResult> results(options.clients);
    // Clients observe into one histogram concurrently (lock-free).
    obs::Histogram latency_hist;

    util::Rng seeder(options.seed);
    std::vector<util::Rng> rngs;
    rngs.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) rngs.push_back(seeder.split());

    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) {
        clients.emplace_back([&, c] {
            ClientResult& r = results[c];
            util::Rng& rng = rngs[c];
            for (std::size_t i = 0; i < options.requests_per_client; ++i) {
                const cfg::TokenString& request = rng.choice(workload);
                Decision d = service.submit(request).get();
                ++r.requests;
                latency_hist.observe(d.latency_us);
                switch (d.outcome) {
                    case Outcome::Permit: ++r.permitted; break;
                    case Outcome::Deny: ++r.denied; break;
                    case Outcome::Overloaded: ++r.overloaded; break;
                    case Outcome::Expired: ++r.expired; break;
                }
            }
        });
    }
    for (auto& t : clients) t.join();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

    for (auto& r : results) {
        report.requests += r.requests;
        report.permitted += r.permitted;
        report.denied += r.denied;
        report.overloaded += r.overloaded;
        report.expired += r.expired;
    }
    report.seconds = elapsed.count();
    report.throughput_rps =
        report.seconds > 0 ? static_cast<double>(report.requests) / report.seconds : 0;
    report.fill_latency(latency_hist.snapshot());

    CacheStats after = service.cache().stats();
    std::uint64_t hits = after.hits - before.hits;
    std::uint64_t misses = after.misses - before.misses;
    report.hit_rate =
        hits + misses == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
    return report;
}

LoadgenReport run_loadgen_tcp(const std::string& host, std::uint16_t port,
                              const std::vector<cfg::TokenString>& workload,
                              const LoadgenOptions& options) {
    LoadgenReport report;
    if (workload.empty() || options.clients == 0) return report;

    // Render request lines once; the hot loop only swaps the id in.
    std::vector<std::string> texts;
    texts.reserve(workload.size());
    for (const auto& tokens : workload) texts.push_back(cfg::detokenize(tokens));

    struct ClientResult {
        std::size_t requests = 0;
        std::size_t permitted = 0, denied = 0, overloaded = 0, expired = 0, dropped = 0;
        std::uint64_t hits = 0, lookups = 0;
    };
    std::vector<ClientResult> results(options.clients);
    obs::Histogram latency_hist;

    util::Rng seeder(options.seed);
    std::vector<util::Rng> rngs;
    rngs.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) rngs.push_back(seeder.split());

    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) {
        clients.emplace_back([&, c] {
            ClientResult& r = results[c];
            util::Rng& rng = rngs[c];
            try {
                TcpClient conn(host, port);
                for (std::size_t i = 0; i < options.requests_per_client; ++i) {
                    const std::string& text = rng.choice(texts);
                    std::string line = "{\"id\":" + std::to_string(i) + ",\"decide\":\"" +
                                       obs::json_escape(text) + "\"}";
                    auto sent = std::chrono::steady_clock::now();
                    conn.send_line(line);
                    std::optional<std::string> reply = conn.recv_line();
                    ++r.requests;
                    if (!reply) {  // timeout or dead server: this client gives up
                        ++r.dropped;
                        break;
                    }
                    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - sent)
                                  .count();
                    latency_hist.observe(static_cast<std::uint64_t>(us));
                    std::optional<JsonValue> json = parse_json(*reply);
                    if (!json || !json->is_object()) {
                        ++r.dropped;
                        continue;
                    }
                    if (const JsonValue* err = json->find("error"); err != nullptr) {
                        if (err->string == "overloaded") {
                            ++r.overloaded;
                        } else if (err->string == "expired") {
                            ++r.expired;
                        } else {
                            ++r.dropped;
                        }
                        continue;
                    }
                    const JsonValue* outcome = json->find("outcome");
                    if (outcome == nullptr || !outcome->is_string()) {
                        ++r.dropped;
                        continue;
                    }
                    ++(outcome->string == "permit" ? r.permitted : r.denied);
                    ++r.lookups;
                    const JsonValue* hit = json->find("cache_hit");
                    if (hit != nullptr && hit->boolean) ++r.hits;
                }
            } catch (const std::exception&) {
                // Connect or send failed; what this client already sent
                // without an answer is the only honest drop count.
                ++r.dropped;
            }
        });
    }
    for (auto& t : clients) t.join();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

    std::uint64_t hits = 0;
    std::uint64_t lookups = 0;
    for (auto& r : results) {
        report.requests += r.requests;
        report.permitted += r.permitted;
        report.denied += r.denied;
        report.overloaded += r.overloaded;
        report.expired += r.expired;
        report.dropped += r.dropped;
        hits += r.hits;
        lookups += r.lookups;
    }
    report.seconds = elapsed.count();
    report.throughput_rps =
        report.seconds > 0 ? static_cast<double>(report.requests) / report.seconds : 0;
    report.fill_latency(latency_hist.snapshot());
    report.hit_rate = lookups == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(lookups);
    return report;
}

asg::AnswerSetGrammar demo_grammar(std::size_t distinct_tasks, std::size_t context_weight) {
    if (distinct_tasks == 0) distinct_tasks = 1;
    std::string text = "request -> \"do\" task {\n  :- requires(L)@2, maxloa(M), L > M.\n";
    if (context_weight > 0) text += "  stress(X, Y) :- load(X), load(Y).\n";
    text += "}\n";
    for (std::size_t i = 0; i < distinct_tasks; ++i) {
        text += "task -> \"task_" + std::to_string(i) + "\" { requires(" +
                std::to_string(i % 5 + 1) + "). }\n";
    }
    return asg::AnswerSetGrammar::parse(text);
}

framework::AutonomousManagedSystem make_demo_ams(std::size_t distinct_tasks,
                                                 std::size_t context_weight) {
    framework::AutonomousManagedSystem ams(
        "serve-demo", demo_grammar(distinct_tasks, context_weight), ilp::HypothesisSpace{});
    std::string context_text = "maxloa(3).\n";
    for (std::size_t i = 1; i <= context_weight; ++i) {
        context_text += "load(" + std::to_string(i) + ").\n";
    }
    asp::Program context = asp::parse_program(context_text);
    ams.pip().add_source("env", [context] { return context; });
    return ams;
}

std::vector<cfg::TokenString> demo_workload(std::size_t distinct_tasks) {
    if (distinct_tasks == 0) distinct_tasks = 1;
    std::vector<cfg::TokenString> out;
    out.reserve(distinct_tasks);
    for (std::size_t i = 0; i < distinct_tasks; ++i) {
        out.push_back(cfg::tokenize("do task_" + std::to_string(i)));
    }
    return out;
}

}  // namespace agenp::srv
