// PDP-as-a-service (DESIGN.md section 8): a concurrent serving layer over
// one AutonomousManagedSystem.
//
// Architecture:
//
//   submit() ──▶ bounded MPMC queue ──▶ fixed thread pool ──▶ Decision
//                (reject Overloaded       │ cache lookup (srv/cache.hpp)
//                 when full)              │ miss: PDP membership solve
//                                         ▼
//                                  DecisionMonitor (ring-bounded history,
//                                  feeds the PAdaP feedback loop)
//
// Locking discipline:
//  - `state_mu_` (ProfiledSharedMutex "srv.model"): workers take it shared
//    while reading the model/context/policy repository and running the
//    PEP; update_model() takes it exclusive, so model adoption never races
//    a decision. PIP sources and the PEP effector run under the shared
//    lock from multiple workers concurrently and must themselves be
//    thread-safe.
//  - `monitor_mu_` (ProfiledMutex "srv.monitor"): serializes
//    DecisionMonitor record/feedback (short critical section; the
//    expensive membership solve happens outside it).
//  - `queue_mu_` (util::Mutex): protects the request queue and the
//    in-flight count; pairs with the workers' condition variable.
//
// Backpressure: submit() never blocks. When the queue is at capacity the
// request is rejected immediately with Outcome::Overloaded — the caller
// learns it must shed load, rather than every caller slowing down.
// Deadlines: a request whose deadline passes while queued is answered
// Outcome::Expired without paying for a solve.
//
// Observability (DESIGN.md section 7): every request gets a monotone id.
// A summary of each request (outcome, queue/solve/total latency, cache
// hit, model version) lands in a lock-free FlightRecorder ring. When
// request tracing is configured (TraceOptions), each request carries a
// TraceContext through queue wait -> cache probe -> PDP -> membership ->
// solver; the full span tree is kept only for requests slower than the
// tail threshold (plus optional 1-in-N samples) and is exportable as
// Chrome trace-event JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "agenp/ams.hpp"
#include "asg/memo.hpp"
#include "obs/lockprof.hpp"
#include "obs/reqtrace.hpp"
#include "srv/cache.hpp"
#include "srv/flight.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::srv {

class AuditLog;

// Tail-based request-trace capture policy. Tracing records spans for
// every request while active (a handful of timestamps), but keeps the
// tree only when it turns out to matter: the request was slower than the
// threshold, or it was picked by deterministic 1-in-N sampling. With both
// knobs at zero no TraceContext is ever allocated.
struct TraceOptions {
    std::uint64_t slow_threshold_us = 0;  // keep trees slower than this (0 = off)
    std::size_t sample_every = 0;         // also keep every Nth request (0 = off)
    std::size_t max_captured = 32;        // bounded store; oldest dropped

    [[nodiscard]] bool active() const { return slow_threshold_us > 0 || sample_every > 0; }
};

struct ServiceOptions {
    std::size_t threads = 4;
    std::size_t queue_capacity = 1024;
    bool use_cache = true;
    CacheOptions cache;
    // Grounding memo on the cache-miss path (asg/memo.hpp): repeated
    // grammar fragments ground once and decisive solver verdicts are
    // recalled per (parse tree, context, model version). Decisions are
    // identical with it on or off; disable to measure or to bound memory.
    bool use_memo = true;
    asg::MemoOptions memo;
    // Deadline applied to requests submitted without their own; zero means
    // no deadline.
    std::chrono::microseconds default_timeout{0};
    TraceOptions trace;
    std::size_t flight_capacity = FlightRecorder::kDefaultCapacity;
    // Request-id sequencing: ids are id_offset + k * id_stride for
    // k = 1, 2, ... The defaults yield 1, 2, 3, ...; the AmsRouter gives
    // replica i offset=i, stride=N so ids stay unique across replicas.
    std::uint64_t id_offset = 0;
    std::uint64_t id_stride = 1;
    // Optional decision audit sink (srv/audit.hpp). Not owned; must
    // outlive the service. Every finished request — including Overloaded
    // and Expired rejections — is offered to it, so the audit line count
    // equals the submitted count when sampling is off.
    AuditLog* audit = nullptr;
};

enum class Outcome {
    Permit,
    Deny,
    Overloaded,  // rejected at submit: queue full or service stopping
    Expired,     // deadline passed before a worker picked the request up
};

std::string_view outcome_name(Outcome outcome);

struct Decision {
    static constexpr std::size_t kNoIndex = ~std::size_t{0};

    Outcome outcome = Outcome::Deny;
    bool cache_hit = false;
    std::uint64_t model_version = 0;
    std::uint64_t latency_us = 0;  // submit -> completion, queue wait included
    // Request id: monotone per service, correlates the decision with its
    // flight record and any captured trace.
    std::uint64_t trace_id = 0;
    // Monitor sequence number for give_feedback(); kNoIndex when the
    // request never reached the PDP (Overloaded / Expired).
    std::size_t monitor_index = kNoIndex;

    [[nodiscard]] bool permitted() const { return outcome == Outcome::Permit; }
};

struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // decided (Permit or Deny)
    std::uint64_t permitted = 0;
    std::uint64_t denied = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t expired = 0;
    std::uint64_t traces_captured = 0;
    std::size_t queue_depth = 0;
    CacheStats cache;
    asg::MemoStats memo;  // zeros when use_memo is off
};

// A span tree the tail sampler decided to keep.
struct CapturedTrace {
    std::string reason;  // "slow" or "sample"
    obs::TraceContext trace;

    [[nodiscard]] std::uint64_t trace_id() const { return trace.trace_id(); }
};

class DecisionService {
public:
    // `ams` must outlive the service. The service serializes all its own
    // accesses to the AMS; other threads must not touch the AMS directly
    // while the service runs except through update_model().
    explicit DecisionService(framework::AutonomousManagedSystem& ams, ServiceOptions options = {});
    ~DecisionService();

    DecisionService(const DecisionService&) = delete;
    DecisionService& operator=(const DecisionService&) = delete;

    // Per-submit options for callers that need more than a deadline (the
    // TCP transport and the router). `on_complete` is invoked exactly once
    // — from the completing worker thread, or inline in submit() for an
    // immediate Overloaded rejection — after the future has been resolved.
    // `client_id` tags the request's flight record and trace with the
    // transport connection it arrived on (0 = not connection-bound).
    struct SubmitOptions {
        std::chrono::microseconds timeout{0};
        std::uint64_t client_id = 0;
        std::function<void(const Decision&)> on_complete;
    };

    // Enqueues one request; the future resolves to its Decision. Never
    // blocks: a full queue resolves the future immediately as Overloaded.
    std::future<Decision> submit(cfg::TokenString request,
                                 std::chrono::microseconds timeout = std::chrono::microseconds{0});
    std::future<Decision> submit(cfg::TokenString request, SubmitOptions submit_options);

    std::vector<std::future<Decision>> submit_batch(std::vector<cfg::TokenString> requests);

    // Blocks until every accepted request has completed.
    void drain();

    // Forwards ground truth to the monitor (thread-safe); false when the
    // index was evicted from the bounded history.
    bool give_feedback(std::size_t monitor_index, bool should_permit);

    // Runs `fn` with exclusive access to the AMS — no decision in flight,
    // none starting. Use for adoption/import/refresh; decisions cached
    // under the old model version invalidate lazily via version stamping.
    void update_model(const std::function<void()>& fn);

    [[nodiscard]] ServiceStats snapshot_stats() const;
    // Current queue depth only — cheaper than snapshot_stats() for the
    // router's per-submit replica choice.
    [[nodiscard]] std::size_t queue_depth() const;
    [[nodiscard]] const DecisionCache& cache() const { return cache_; }
    // Mutable access exists for state restore (AmsRouter::restore_state)
    // only; everything in-band goes through lookup/insert on the workers.
    [[nodiscard]] DecisionCache& cache() { return cache_; }
    // Null when use_memo is off.
    [[nodiscard]] const asg::GroundingMemo* grounding_memo() const { return memo_.get(); }
    [[nodiscard]] const ServiceOptions& options() const { return options_; }

    // Recent-request ring (always on; see srv/flight.hpp).
    [[nodiscard]] const FlightRecorder& flight() const { return flight_; }

    // Span trees retained by the tail sampler, oldest first.
    [[nodiscard]] std::vector<CapturedTrace> captured_traces() const;
    // All captured trees merged into one Chrome trace-event JSON document
    // (one tid lane per request).
    [[nodiscard]] std::string captured_traces_json() const;

private:
    struct Task {
        cfg::TokenString tokens;
        std::promise<Decision> promise;
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point deadline;  // max() = none
        std::uint64_t trace_id = 0;
        std::uint64_t client_id = 0;  // transport connection id; 0 = none
        std::function<void(const Decision&)> on_complete;
        std::unique_ptr<obs::TraceContext> trace;  // null unless tracing this request
        std::size_t root_span = 0;
        std::size_t queue_span = 0;
        std::uint64_t queue_us = 0;  // submit -> worker dequeue
        std::uint64_t solve_us = 0;  // cache-miss membership solve
    };

    void worker_loop();
    Decision process(Task& task);
    void finish(Decision& decision, Task& task, Outcome outcome);
    void maybe_capture(Task& task, std::uint64_t total_us);

    framework::AutonomousManagedSystem& ams_;
    ServiceOptions options_;
    DecisionCache cache_;
    // Owned grounding memo, installed on the AMS's PDP for the service's
    // lifetime; epoch-stamped from update_model under the model write lock.
    std::unique_ptr<asg::GroundingMemo> memo_;
    FlightRecorder flight_;

    obs::ProfiledSharedMutex state_mu_{"srv.model"};
    obs::ProfiledMutex monitor_mu_{"srv.monitor"};

    mutable util::Mutex queue_mu_;
    util::CondVar queue_cv_;  // workers: work available or stopping
    util::CondVar drain_cv_;  // drain(): queue empty and idle
    std::deque<Task> queue_ GUARDED_BY(queue_mu_);
    std::size_t in_flight_ GUARDED_BY(queue_mu_) = 0;
    bool stopping_ GUARDED_BY(queue_mu_) = false;

    mutable util::Mutex traces_mu_;
    std::deque<CapturedTrace> captured_ GUARDED_BY(traces_mu_);

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> permitted_{0};
    std::atomic<std::uint64_t> denied_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> traces_captured_{0};

    std::vector<std::thread> workers_;
};

}  // namespace agenp::srv
