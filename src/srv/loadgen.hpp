// Closed-loop load generator for the decision service (DESIGN.md section
// 8), plus the built-in demo serving domain used by `agenp loadgen` and
// bench/bench_serve.
//
// Closed loop: each client thread submits one request, waits for its
// decision, then issues the next — so offered load adapts to service
// capacity and the latency numbers are honest end-to-end figures (queue
// wait included) rather than coordinated-omission artifacts of a fixed
// schedule the service can't keep up with.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "srv/service.hpp"

namespace agenp::srv {

struct LoadgenOptions {
    std::size_t clients = 4;              // concurrent closed-loop clients
    std::size_t requests_per_client = 250;
    std::uint64_t seed = 42;              // workload draw, per-client split
};

struct LoadgenReport {
    std::size_t requests = 0;
    std::size_t permitted = 0;
    std::size_t denied = 0;
    std::size_t overloaded = 0;
    std::size_t expired = 0;
    double seconds = 0;
    double throughput_rps = 0;
    // Latency quantiles come from an obs::Histogram the clients observe
    // into concurrently (bit-width buckets, interpolated quantiles), so
    // the collection path is lock-free and allocation-free.
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double hit_rate = 0;  // over this run only (stats delta)
    // Requests sent without a usable reply (TCP mode only: timeouts,
    // unparseable replies, dropped connections). Always 0 in-process.
    std::size_t dropped = 0;

    // Fills mean/p50/p95/p99 from a latency histogram snapshot — the one
    // quantile path shared by the in-process and TCP loops, and the same
    // estimator the server-side summaries use (Histogram::Snapshot::
    // quantile), so client- and server-reported percentiles agree.
    void fill_latency(const obs::Histogram::Snapshot& latency);

    // One-line JSON object with every field above.
    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] std::string render_text() const;
};

// Drives `service` from `options.clients` threads, each drawing uniformly
// at random from `workload`.
LoadgenReport run_loadgen(DecisionService& service, const std::vector<cfg::TokenString>& workload,
                          const LoadgenOptions& options = {});

// Same closed loop over TCP (`agenp loadgen --connect`): each client
// thread opens one connection to an `agenp serve --listen` server and
// sends `{"id":N,"decide":...}` lines in lockstep, so latency is honest
// client-observed round-trip time. Outcomes and cache hits are read from
// the replies; replies that never arrive count as `dropped`.
LoadgenReport run_loadgen_tcp(const std::string& host, std::uint16_t port,
                              const std::vector<cfg::TokenString>& workload,
                              const LoadgenOptions& options = {});

// The demo serving domain: `request -> "do" task_i` for i in
// [0, distinct_tasks), where task_i requires clearance (i % 5) + 1 and the
// PIP reports a fixed maxloa(3) — so ~3/5 of the workload is permitted and
// every decision needs a real membership solve on a cache miss.
//
// `context_weight` sets how heavy that solve is: the PIP adds load(1..w)
// facts and the root annotation joins them (stress(X,Y) :- load(X),
// load(Y)), so each miss grounds O(w^2) rules — standing in for the fat
// context programs of a production deployment. The default makes a miss
// one to two orders of magnitude dearer than a cache hit.
inline constexpr std::size_t kDemoContextWeight = 24;

asg::AnswerSetGrammar demo_grammar(std::size_t distinct_tasks,
                                   std::size_t context_weight = kDemoContextWeight);
framework::AutonomousManagedSystem make_demo_ams(std::size_t distinct_tasks,
                                                 std::size_t context_weight = kDemoContextWeight);
std::vector<cfg::TokenString> demo_workload(std::size_t distinct_tasks);

}  // namespace agenp::srv
