// TCP transport for the decision service (DESIGN.md section 10; the wire
// format is specified in docs/PROTOCOL.md).
//
// TcpServer is a single-threaded poll(2) event loop in front of an
// AmsRouter. The loop thread owns every socket: it accepts, reads,
// frames newline-delimited requests, and writes replies. Decisions
// themselves run on the router's worker pools — the loop never blocks on
// a solve. A worker's completion callback serializes the reply, drops it
// into the connection's outbox under a small mutex, and wakes the loop
// through a self-pipe; the loop moves outboxes into per-connection write
// buffers and flushes them with non-blocking writes.
//
// Robustness rules (each has a counter in TransportStats and a
// `srv.conn.*` metric):
//  - a line longer than max_line_bytes gets a bad_request reply and the
//    connection is closed after the reply flushes;
//  - a client that reads slower than it submits is disconnected when its
//    write buffer exceeds max_write_buffer_bytes;
//  - a connection idle longer than idle_timeout — no request read, no
//    reply written, nothing in flight or still queued in its outbox —
//    is closed;
//  - a half-closed connection (client shutdown(SHUT_WR)) still receives
//    every reply for requests already read, then is closed.
//
// shutdown() drains gracefully: stop accepting, stop reading, discard
// buffered-but-unprocessed input, let in-flight decisions complete
// (router drain), flush replies until drain_timeout, then close.
//
// dispatch_line is the one front door shared by `agenp serve` stdin mode
// and this transport, so a line behaves identically on both (including
// `!stats` / `!flight` / `!trace` control lines).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "srv/router.hpp"
#include "srv/wire.hpp"

namespace agenp::srv {

// How a line that is neither a JSON object nor a `!` control line is
// treated.
enum class LineMode {
    Text,  // stdin REPL: the line is a request; the reply is the outcome name
    Json,  // TCP: anything but JSON / control is a bad_request error reply
};

struct DispatchResult {
    bool deferred = false;     // the reply arrives later through `reply`
    bool bad_request = false;  // the immediate reply is a bad_request error
    std::string immediate;     // non-empty: reply now (newline not included)
};

// Routes one input line:
//   `!...`  -> control(line); replied immediately (may be multi-line)
//   `{...}` -> wire request: ping answers immediately, a decision is
//              submitted to the router and `reply` is called exactly once
//              with the serialized response (possibly from a worker
//              thread, possibly inline for an immediate rejection)
//   other   -> Text mode: deferred plain-text outcome-name reply;
//              Json mode: immediate bad_request error
// Empty lines produce neither a deferred nor an immediate reply. Invalid
// UTF-8 is answered with a bad_request error in either mode.
DispatchResult dispatch_line(AmsRouter& router, std::string_view line, LineMode mode,
                             std::uint64_t client_id,
                             const std::function<std::string(std::string_view)>& control,
                             std::function<void(std::string)> reply);

struct TransportOptions {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; read back via TcpServer::port()
    std::size_t max_connections = 256;
    // Longest accepted request line, terminator included.
    std::size_t max_line_bytes = kDefaultMaxLineBytes;
    // Per-connection outbound backlog cap; crossing it disconnects the
    // (slow) client rather than buffering without bound.
    std::size_t max_write_buffer_bytes = 256 * 1024;
    // Close connections with nothing in flight that have been silent this
    // long. Zero disables the idle check.
    std::chrono::milliseconds idle_timeout{0};
    // shutdown(): how long to keep flushing replies for in-flight
    // requests before force-closing sockets.
    std::chrono::milliseconds drain_timeout{5000};
};

struct TransportStats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t active = 0;  // currently open connections
    std::uint64_t lines_in = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t slow_client_disconnects = 0;
    std::uint64_t idle_disconnects = 0;
    std::uint64_t oversized_disconnects = 0;
};

std::string transport_stats_json(const TransportStats& stats);

class TcpServer {
public:
    // Binds and listens immediately — throws std::runtime_error when the
    // address is unavailable — then serves on one background loop thread.
    // `control` handles `!`-prefixed lines (empty = control lines get a
    // bad_request reply). The router must outlive the server.
    TcpServer(AmsRouter& router, TransportOptions options,
              std::function<std::string(std::string_view)> control = {});
    ~TcpServer();  // implies shutdown()

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    // The bound port (resolves an ephemeral request for port 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    // Graceful drain (see file comment). Idempotent; returns once the
    // loop thread has exited and every socket is closed.
    void shutdown();

    [[nodiscard]] TransportStats stats() const;

private:
    struct Connection;
    struct Impl;

    std::uint16_t port_ = 0;
    std::unique_ptr<Impl> impl_;
};

// Minimal blocking client for the same wire protocol: used by
// `agenp loadgen --connect`, the protocol round-trip tests, and the CI
// smoke. One instance serves one thread.
class TcpClient {
public:
    // Connects (IPv4; `host` is a dotted quad or a resolvable name).
    // Throws std::runtime_error on failure.
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    // Writes `line` plus a terminating newline; throws on a broken pipe.
    void send_line(std::string_view line);

    // Next reply line (CR/LF stripped), or nullopt on EOF / timeout.
    std::optional<std::string> recv_line(
        std::chrono::milliseconds timeout = std::chrono::milliseconds{10000});

    // Half-close: no more requests, but replies still flow back.
    void shutdown_write();

    [[nodiscard]] int fd() const { return fd_; }

private:
    int fd_ = -1;
    std::string buf_;  // bytes received but not yet returned as lines
};

}  // namespace agenp::srv
