#include "srv/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cfg/grammar.hpp"
#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"
#include "util/errors.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::srv {

DispatchResult dispatch_line(AmsRouter& router, std::string_view line, LineMode mode,
                             std::uint64_t client_id,
                             const std::function<std::string(std::string_view)>& control,
                             std::function<void(std::string)> reply) {
    DispatchResult out;
    if (line.empty()) return out;
    if (!valid_utf8(line)) {
        out.bad_request = true;
        out.immediate = wire_error_json(std::nullopt, "bad_request", "line is not valid UTF-8");
        return out;
    }
    if (line.front() == '!') {
        if (control) {
            out.immediate = control(line);
        } else {
            out.bad_request = true;
            out.immediate =
                wire_error_json(std::nullopt, "bad_request", "control lines are not enabled");
        }
        return out;
    }
    if (mode == LineMode::Json || line.front() == '{') {
        std::string error;
        std::optional<std::uint64_t> id;
        std::optional<WireRequest> request = parse_wire_request(line, &error, &id);
        if (!request) {
            out.bad_request = true;
            out.immediate = wire_error_json(id, "bad_request", error);
            return out;
        }
        if (!request->op.empty()) {  // the only op today is ping
            out.immediate = wire_ping_json(
                request->has_id ? std::optional<std::uint64_t>(request->id) : std::nullopt,
                router.replicas(), router.model_version());
            return out;
        }
        DecisionService::SubmitOptions submit_options;
        submit_options.timeout = std::chrono::microseconds(request->timeout_ms * 1000);
        submit_options.client_id = client_id;
        WireRequest echoed = *request;
        submit_options.on_complete = [echoed, reply = std::move(reply)](const Decision& decision) {
            reply(wire_decision_json(echoed, decision));
        };
        router.submit(cfg::tokenize(request->decide), std::move(submit_options));
        out.deferred = true;
        return out;
    }
    DecisionService::SubmitOptions submit_options;
    submit_options.client_id = client_id;
    submit_options.on_complete = [reply = std::move(reply)](const Decision& decision) {
        reply(std::string(outcome_name(decision.outcome)));
    };
    router.submit(cfg::tokenize(line), std::move(submit_options));
    out.deferred = true;
    return out;
}

std::string transport_stats_json(const TransportStats& stats) {
    std::string out = "{";
    out += "\"accepted\":" + std::to_string(stats.accepted);
    out += ",\"closed\":" + std::to_string(stats.closed);
    out += ",\"active\":" + std::to_string(stats.active);
    out += ",\"lines_in\":" + std::to_string(stats.lines_in);
    out += ",\"bytes_in\":" + std::to_string(stats.bytes_in);
    out += ",\"bytes_out\":" + std::to_string(stats.bytes_out);
    out += ",\"bad_requests\":" + std::to_string(stats.bad_requests);
    out += ",\"slow_client_disconnects\":" + std::to_string(stats.slow_client_disconnects);
    out += ",\"idle_disconnects\":" + std::to_string(stats.idle_disconnects);
    out += ",\"oversized_disconnects\":" + std::to_string(stats.oversized_disconnects);
    out += "}";
    return out;
}

namespace {

void set_nonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// One accepted socket. The loop thread owns fd / read_buf / write_buf /
// flags; worker completion callbacks only touch the outbox (under
// outbox_mu) and the pending counter. The callback holds a shared_ptr, so
// a Connection outlives its socket until the last in-flight reply lands.
struct TcpServer::Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string read_buf;
    std::string write_buf;
    std::chrono::steady_clock::time_point last_activity;
    bool read_closed = false;       // no more reads (EOF, oversize, drain)
    bool kill_after_flush = false;  // close once write_buf is flushed
    std::atomic<std::size_t> pending{0};  // submitted, reply not yet in outbox

    obs::ProfiledMutex outbox_mu{"srv.conn.outbox"};
    std::vector<std::string> outbox GUARDED_BY(outbox_mu);  // replies from workers
    bool closed GUARDED_BY(outbox_mu) = false;
};

struct TcpServer::Impl {
    AmsRouter& router;
    TransportOptions options;
    std::function<std::string(std::string_view)> control;

    int listen_fd = -1;
    int wake_r = -1;  // self-pipe: workers wake the poll loop
    int wake_w = -1;
    std::uint16_t port = 0;
    std::thread loop;
    std::atomic<bool> stopping{false};
    util::Mutex shutdown_mu;
    bool shut_down GUARDED_BY(shutdown_mu) = false;

    std::vector<std::shared_ptr<Connection>> conns;  // loop thread only
    std::uint64_t next_conn_id = 1;

    struct AtomicStats {
        std::atomic<std::uint64_t> accepted{0};
        std::atomic<std::uint64_t> closed{0};
        std::atomic<std::uint64_t> active{0};
        std::atomic<std::uint64_t> lines_in{0};
        std::atomic<std::uint64_t> bytes_in{0};
        std::atomic<std::uint64_t> bytes_out{0};
        std::atomic<std::uint64_t> bad_requests{0};
        std::atomic<std::uint64_t> slow{0};
        std::atomic<std::uint64_t> idle{0};
        std::atomic<std::uint64_t> oversized{0};
    } stats;

    // Cached metric handles (null when metrics are disabled).
    obs::Counter* m_accepted = nullptr;
    obs::Counter* m_closed = nullptr;
    obs::Counter* m_lines_in = nullptr;
    obs::Counter* m_bad_requests = nullptr;
    obs::Counter* m_slow = nullptr;
    obs::Counter* m_idle = nullptr;
    obs::Counter* m_oversized = nullptr;
    obs::Gauge* m_active = nullptr;

    Impl(AmsRouter& router_in, TransportOptions options_in,
         std::function<std::string(std::string_view)> control_in)
        : router(router_in), options(std::move(options_in)), control(std::move(control_in)) {
        if (options.max_connections == 0) options.max_connections = 1;
        if (options.max_line_bytes == 0) options.max_line_bytes = kDefaultMaxLineBytes;
        if (options.max_write_buffer_bytes == 0) options.max_write_buffer_bytes = 1;
        if (obs::metrics_enabled()) {
            auto& m = obs::metrics();
            m_accepted = &m.counter("srv.conn.accepted");
            m_closed = &m.counter("srv.conn.closed");
            m_lines_in = &m.counter("srv.conn.lines_in");
            m_bad_requests = &m.counter("srv.conn.bad_requests");
            m_slow = &m.counter("srv.conn.slow_disconnects");
            m_idle = &m.counter("srv.conn.idle_disconnects");
            m_oversized = &m.counter("srv.conn.oversized_disconnects");
            m_active = &m.gauge("srv.conn.active");
        }
    }

    ~Impl() {
        if (listen_fd >= 0) ::close(listen_fd);
        if (wake_r >= 0) ::close(wake_r);
        if (wake_w >= 0) ::close(wake_w);
    }

    void open_listener() {
        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd < 0) throw std::runtime_error("socket: " + util::errno_string());
        int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options.port);
        if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
            throw std::runtime_error("bad bind address: " + options.bind_address);
        }
        if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            throw std::runtime_error("bind " + options.bind_address + ":" +
                                     std::to_string(options.port) + ": " + util::errno_string());
        }
        if (::listen(listen_fd, 64) != 0) {
            throw std::runtime_error("listen: " + util::errno_string());
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
        port = ntohs(bound.sin_port);
        set_nonblocking(listen_fd);

        int pipefd[2];
        if (::pipe(pipefd) != 0) throw std::runtime_error("pipe: " + util::errno_string());
        wake_r = pipefd[0];
        wake_w = pipefd[1];
        set_nonblocking(wake_r);
        set_nonblocking(wake_w);
    }

    void wake() {
        char b = 1;
        // A full pipe means a wakeup is already pending — that's enough.
        [[maybe_unused]] ssize_t n = ::write(wake_w, &b, 1);
    }

    void drain_wake() {
        char buf[64];
        while (::read(wake_r, buf, sizeof buf) > 0) {
        }
    }

    void close_conn(const std::shared_ptr<Connection>& conn) {
        if (conn->fd < 0) return;
        {
            obs::ProfiledMutexLock lock(conn->outbox_mu);
            conn->closed = true;
            conn->outbox.clear();
        }
        ::close(conn->fd);
        conn->fd = -1;
        stats.closed.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t active = stats.active.fetch_sub(1, std::memory_order_relaxed) - 1;
        if (m_closed != nullptr) m_closed->add(1);
        if (m_active != nullptr) m_active->set(static_cast<std::int64_t>(active));
    }

    void reap() {
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const std::shared_ptr<Connection>& c) { return c->fd < 0; }),
                    conns.end());
    }

    // Appends one reply line; enforces the slow-client backlog cap.
    void queue_output(const std::shared_ptr<Connection>& conn, std::string_view line) {
        if (conn->fd < 0) return;
        conn->write_buf.append(line);
        conn->write_buf.push_back('\n');
        if (conn->write_buf.size() > options.max_write_buffer_bytes) {
            stats.slow.fetch_add(1, std::memory_order_relaxed);
            if (m_slow != nullptr) m_slow->add(1);
            close_conn(conn);
        }
    }

    void flush(const std::shared_ptr<Connection>& conn) {
        while (conn->fd >= 0 && !conn->write_buf.empty()) {
            ssize_t n =
                ::send(conn->fd, conn->write_buf.data(), conn->write_buf.size(), MSG_NOSIGNAL);
            if (n > 0) {
                stats.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                          std::memory_order_relaxed);
                // A delivered reply is activity: without this, a request
                // slower than idle_timeout gets its connection idle-closed
                // the moment (or before) the client sees the answer.
                conn->last_activity = std::chrono::steady_clock::now();
                conn->write_buf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            close_conn(conn);
            return;
        }
    }

    void oversized(const std::shared_ptr<Connection>& conn) {
        stats.oversized.fetch_add(1, std::memory_order_relaxed);
        if (m_oversized != nullptr) m_oversized->add(1);
        queue_output(conn,
                     wire_error_json(std::nullopt, "bad_request", "line exceeds maximum length"));
        conn->read_buf.clear();
        conn->read_closed = true;
        conn->kill_after_flush = true;
    }

    void handle_line(const std::shared_ptr<Connection>& conn, std::string_view line) {
        stats.lines_in.fetch_add(1, std::memory_order_relaxed);
        if (m_lines_in != nullptr) m_lines_in->add(1);
        if (line.empty()) return;
        conn->pending.fetch_add(1, std::memory_order_relaxed);
        DispatchResult result = dispatch_line(
            router, line, LineMode::Json, conn->id, control,
            [this, conn](std::string reply) {
                {
                    obs::ProfiledMutexLock lock(conn->outbox_mu);
                    if (!conn->closed) conn->outbox.push_back(std::move(reply));
                }
                conn->pending.fetch_sub(1, std::memory_order_release);
                wake();
            });
        if (!result.deferred) conn->pending.fetch_sub(1, std::memory_order_relaxed);
        if (result.bad_request) {
            stats.bad_requests.fetch_add(1, std::memory_order_relaxed);
            if (m_bad_requests != nullptr) m_bad_requests->add(1);
        }
        if (!result.immediate.empty()) queue_output(conn, result.immediate);
    }

    void process_read_buf(const std::shared_ptr<Connection>& conn) {
        while (conn->fd >= 0 && !conn->read_closed) {
            std::size_t pos = conn->read_buf.find('\n');
            if (pos == std::string::npos) {
                if (conn->read_buf.size() >= options.max_line_bytes) oversized(conn);
                return;
            }
            if (pos + 1 > options.max_line_bytes) {
                oversized(conn);
                return;
            }
            std::string line = conn->read_buf.substr(0, pos);
            conn->read_buf.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            handle_line(conn, line);
        }
    }

    void read_from(const std::shared_ptr<Connection>& conn) {
        char buf[4096];
        while (conn->fd >= 0 && !conn->read_closed) {
            ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
            if (n > 0) {
                stats.bytes_in.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
                conn->last_activity = std::chrono::steady_clock::now();
                conn->read_buf.append(buf, static_cast<std::size_t>(n));
                process_read_buf(conn);
                if (static_cast<std::size_t>(n) < sizeof buf) return;
                continue;
            }
            if (n == 0) {  // half-close: replies still flush, then we close
                conn->read_closed = true;
                conn->read_buf.clear();
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            close_conn(conn);  // reset / hard error
            return;
        }
    }

    void accept_new() {
        while (true) {
            int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;  // EAGAIN or transient accept error: try next wakeup
            }
            if (conns.size() >= options.max_connections) {
                std::string reply =
                    wire_error_json(std::nullopt, "overloaded", "too many connections");
                reply.push_back('\n');
                [[maybe_unused]] ssize_t n = ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
                ::close(fd);
                continue;
            }
            set_nonblocking(fd);
            set_nodelay(fd);
            auto conn = std::make_shared<Connection>();
            conn->fd = fd;
            conn->id = next_conn_id++;
            conn->last_activity = std::chrono::steady_clock::now();
            conns.push_back(std::move(conn));
            stats.accepted.fetch_add(1, std::memory_order_relaxed);
            std::uint64_t active = stats.active.fetch_add(1, std::memory_order_relaxed) + 1;
            if (m_accepted != nullptr) m_accepted->add(1);
            if (m_active != nullptr) m_active->set(static_cast<std::int64_t>(active));
        }
    }

    // Moves completed replies into write buffers, flushes, and applies the
    // close state machine.
    void service_connections() {
        std::vector<std::string> ready;
        for (auto& conn : conns) {
            if (conn->fd < 0) continue;
            ready.clear();
            {
                obs::ProfiledMutexLock lock(conn->outbox_mu);
                ready.swap(conn->outbox);
            }
            for (const std::string& reply : ready) queue_output(conn, reply);
            flush(conn);
            if (conn->fd < 0) continue;
            if (conn->kill_after_flush && conn->write_buf.empty()) {
                close_conn(conn);
                continue;
            }
            if (conn->read_closed && conn->write_buf.empty() &&
                conn->pending.load(std::memory_order_acquire) == 0) {
                // pending hit zero after the outbox push (release/acquire on
                // pending), so one last empty-outbox check is authoritative;
                // with read_closed no new submit can repopulate it. Close
                // outside the lock — close_conn takes outbox_mu itself.
                bool outbox_empty;
                {
                    obs::ProfiledMutexLock lock(conn->outbox_mu);
                    outbox_empty = conn->outbox.empty();
                }
                if (outbox_empty) close_conn(conn);
            }
        }
        reap();
    }

    void check_idle() {
        if (options.idle_timeout.count() <= 0) return;
        auto now = std::chrono::steady_clock::now();
        for (auto& conn : conns) {
            if (conn->fd < 0 || conn->read_closed) continue;
            if (conn->pending.load(std::memory_order_acquire) != 0) continue;
            if (!conn->write_buf.empty()) continue;
            // A completed reply may be sitting in the outbox (pending is
            // decremented after the push) waiting for the next
            // service_connections() pass; closing now would drop it. The
            // acquire load on pending orders this check after the push.
            bool outbox_empty;
            {
                obs::ProfiledMutexLock lock(conn->outbox_mu);
                outbox_empty = conn->outbox.empty();
            }
            if (!outbox_empty) continue;
            if (now - conn->last_activity >= options.idle_timeout) {
                stats.idle.fetch_add(1, std::memory_order_relaxed);
                if (m_idle != nullptr) m_idle->add(1);
                close_conn(conn);
            }
        }
        reap();
    }

    void graceful_drain() {
        ::close(listen_fd);
        listen_fd = -1;
        for (auto& conn : conns) {
            if (conn->fd < 0) continue;
            // Stop reading; buffered-but-unprocessed input is discarded.
            conn->read_closed = true;
            conn->read_buf.clear();
        }
        // Let every accepted decision complete. After this no completion
        // callback is outstanding, so outboxes are final.
        router.drain();
        auto deadline = std::chrono::steady_clock::now() + options.drain_timeout;
        while (true) {
            service_connections();
            bool any = false;
            for (auto& conn : conns) {
                if (conn->fd >= 0 && !conn->write_buf.empty()) any = true;
            }
            if (!any) break;
            auto now = std::chrono::steady_clock::now();
            if (now >= deadline) break;
            std::vector<pollfd> pfds;
            for (auto& conn : conns) {
                if (conn->fd >= 0 && !conn->write_buf.empty()) {
                    pfds.push_back({conn->fd, POLLOUT, 0});
                }
            }
            auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   static_cast<int>(std::min<long long>(remaining, 100)));
        }
        for (auto& conn : conns) close_conn(conn);
        reap();
    }

    int poll_timeout_ms() const {
        if (options.idle_timeout.count() <= 0) return -1;
        auto ms = options.idle_timeout.count();
        return static_cast<int>(std::clamp<long long>(ms, 1, 1000));
    }

    void run() {
        std::vector<pollfd> pfds;
        std::vector<std::shared_ptr<Connection>> polled;
        while (!stopping.load(std::memory_order_acquire)) {
            pfds.clear();
            polled.clear();
            pfds.push_back({wake_r, POLLIN, 0});
            pfds.push_back({listen_fd, POLLIN, 0});
            for (auto& conn : conns) {
                short events = 0;
                if (!conn->read_closed) events |= POLLIN;
                if (!conn->write_buf.empty()) events |= POLLOUT;
                if (events == 0) continue;  // waiting on workers; wake pipe covers it
                pfds.push_back({conn->fd, events, 0});
                polled.push_back(conn);
            }
            int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), poll_timeout_ms());
            if (rc < 0 && errno != EINTR) break;
            if (pfds[0].revents != 0) drain_wake();
            if (pfds[1].revents != 0) accept_new();
            for (std::size_t i = 2; i < pfds.size(); ++i) {
                auto& conn = polled[i - 2];
                if (conn->fd < 0) continue;
                if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_from(conn);
            }
            service_connections();
            check_idle();
        }
        graceful_drain();
    }
};

TcpServer::TcpServer(AmsRouter& router, TransportOptions options,
                     std::function<std::string(std::string_view)> control)
    : impl_(std::make_unique<Impl>(router, std::move(options), std::move(control))) {
    impl_->open_listener();  // throws on bind failure; Impl dtor closes fds
    port_ = impl_->port;
    impl_->loop = std::thread([impl = impl_.get()] { impl->run(); });
}

TcpServer::~TcpServer() { shutdown(); }

void TcpServer::shutdown() {
    if (impl_ == nullptr) return;
    util::MutexLock lock(impl_->shutdown_mu);
    if (impl_->shut_down) return;
    impl_->shut_down = true;
    impl_->stopping.store(true, std::memory_order_release);
    impl_->wake();
    if (impl_->loop.joinable()) impl_->loop.join();
}

TransportStats TcpServer::stats() const {
    const Impl::AtomicStats& s = impl_->stats;
    TransportStats out;
    out.accepted = s.accepted.load(std::memory_order_relaxed);
    out.closed = s.closed.load(std::memory_order_relaxed);
    out.active = s.active.load(std::memory_order_relaxed);
    out.lines_in = s.lines_in.load(std::memory_order_relaxed);
    out.bytes_in = s.bytes_in.load(std::memory_order_relaxed);
    out.bytes_out = s.bytes_out.load(std::memory_order_relaxed);
    out.bad_requests = s.bad_requests.load(std::memory_order_relaxed);
    out.slow_client_disconnects = s.slow.load(std::memory_order_relaxed);
    out.idle_disconnects = s.idle.load(std::memory_order_relaxed);
    out.oversized_disconnects = s.oversized.load(std::memory_order_relaxed);
    return out;
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0) {
        throw std::runtime_error("cannot resolve " + host + ": " + ::gai_strerror(rc));
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw std::runtime_error("cannot connect to " + host + ":" + service + ": " +
                                 util::errno_string());
    }
    set_nodelay(fd);
    fd_ = fd;
}

TcpClient::~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send_line(std::string_view line) {
    std::string out(line);
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
        ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        throw std::runtime_error("send: " + util::errno_string());
    }
}

std::optional<std::string> TcpClient::recv_line(std::chrono::milliseconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
        std::size_t pos = buf_.find('\n');
        if (pos != std::string::npos) {
            std::string line = buf_.substr(0, pos);
            buf_.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return line;
        }
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
        pollfd pfd{fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining, 60000)));
        if (rc < 0) {
            if (errno == EINTR) continue;
            return std::nullopt;
        }
        if (rc == 0) return std::nullopt;
        char tmp[4096];
        ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
        if (n > 0) {
            buf_.append(tmp, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) return std::nullopt;  // EOF
        if (errno != EINTR) return std::nullopt;
    }
}

void TcpClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace agenp::srv
