// Flight recorder: a fixed-size lock-free ring of recent request
// summaries (DESIGN.md section 7).
//
// The serving layer records one compact, string-free summary per request
// — id, outcome, per-phase latencies, cache hit/miss, model version — so
// an operator can always ask "what did the last N requests look like?"
// without having enabled tracing beforehand. `agenp serve` dumps it on
// demand via the `!flight` control line.
//
// Concurrency: record() is lock-free. Each slot is a tiny seqlock built
// entirely from atomics: the writer claims a sequence number with one
// fetch_add, marks the slot odd (write in progress), stores the payload
// with relaxed atomics, then publishes by storing the even sequence. A
// reader that observes an odd or changed sequence discards the slot
// instead of blocking. All payload fields are std::atomic, so there is no
// data race for TSan to object to — the sequence check only guards
// against mixing fields of two different records.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace agenp::srv {

struct FlightRecord {
    std::uint64_t id = 0;      // request id; monotone in record order
    std::uint64_t client = 0;  // transport connection id; 0 = in-process
    std::uint64_t model_version = 0;
    std::uint64_t queue_us = 0;  // submit -> worker dequeue
    std::uint64_t solve_us = 0;  // cache-miss membership solve; 0 on hit
    std::uint64_t total_us = 0;  // submit -> completion
    std::uint8_t outcome = 0;    // srv::Outcome, narrowed
    bool cache_hit = false;
};

class FlightRecorder {
public:
    static constexpr std::size_t kDefaultCapacity = 256;

    // Capacity is rounded up to a power of two (minimum 2).
    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    // Lock-free; overwrites the oldest slot once the ring is full.
    void record(const FlightRecord& record);

    // Consistent records currently retained, oldest first (by id).
    [[nodiscard]] std::vector<FlightRecord> snapshot() const;

    [[nodiscard]] std::uint64_t total_recorded() const {
        return next_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

    // One JSON object per line, oldest first.
    [[nodiscard]] std::string render_json_lines() const;

private:
    struct Slot {
        std::atomic<std::uint64_t> seq{0};  // 0 = never written; odd = writing
        std::atomic<std::uint64_t> id{0};
        std::atomic<std::uint64_t> client{0};
        std::atomic<std::uint64_t> model_version{0};
        std::atomic<std::uint64_t> queue_us{0};
        std::atomic<std::uint64_t> solve_us{0};
        std::atomic<std::uint64_t> total_us{0};
        std::atomic<std::uint8_t> outcome{0};
        std::atomic<bool> cache_hit{false};
    };

    std::atomic<std::uint64_t> next_{0};  // sequence numbers handed to writers
    std::vector<Slot> slots_;
    std::uint64_t mask_ = 0;
};

std::string flight_record_json(const FlightRecord& record);

}  // namespace agenp::srv
