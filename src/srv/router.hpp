// AmsRouter: multi-AMS sharding behind one submit() front door
// (DESIGN.md section 10).
//
// A single DecisionService serializes model updates against decisions on
// one `srv.model` lock and funnels every monitor append through one
// `srv.monitor` mutex. The router removes those single-instance ceilings
// by running N independent AMS replicas, each wrapped in its own
// DecisionService with its own cache, flight ring, and locks.
//
// Routing: requests are placed by a 64-bit FNV-1a hash of the request
// text — the same request always lands on the same replica, so each
// replica's decision cache stays hot for its slice of the keyspace
// (affinity). When the primary replica's queue is at capacity the router
// falls back to the first other replica with room, scanning round-robin
// from a rotating start so spill load spreads evenly; a request is only
// rejected Overloaded when every replica is saturated. The
// `routed_affinity` / `routed_fallback` counters make the split visible.
//
// Request ids stay unique and globally ordered-ish across replicas:
// replica i issues ids i + k*N (ServiceOptions id_offset/id_stride), so
// merged flight snapshots interleave without collisions.
//
// Model updates: update_model(fn) applies `fn` to every replica's AMS in
// turn, each under that replica's exclusive model lock, then verifies all
// replicas report the same model version. Replicas never exchange state —
// agreement holds as long as all model changes go through the router,
// which snapshot_stats() surfaces as `versions_agree`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "srv/service.hpp"
#include "store/snapshot.hpp"

namespace agenp::srv {

// What restore_state() managed to bring back, for the startup log line
// and SERVE_STATS_JSON.
struct StateRestoreReport {
    bool model_restored = false;
    std::uint64_t model_version = 0;
    std::size_t policies_restored = 0;
    std::size_t entries_restored = 0;
    std::size_t entries_skipped = 0;  // snapshot exceeded the cache budget
    std::string warning;              // non-fatal (e.g. unparseable model)
};

struct RouterOptions {
    std::size_t replicas = 1;
    // Template applied to every replica's DecisionService. id_offset and
    // id_stride are overwritten per replica (offset=i, stride=replicas).
    ServiceOptions service;
};

struct ReplicaStats {
    std::size_t queue_depth = 0;
    std::uint64_t model_version = 0;
    ServiceStats service;
};

struct RouterStats {
    std::vector<ReplicaStats> replicas;
    ServiceStats total;  // field-wise sum over replicas
    std::uint64_t routed_affinity = 0;
    std::uint64_t routed_fallback = 0;
    // All replicas report the same model version. False means a model
    // change bypassed the router (or an update is racing this snapshot).
    bool versions_agree = true;
    std::uint64_t model_version = 0;  // replica 0's (== all when agreed)
};

class AmsRouter {
public:
    using AmsFactory = std::function<std::unique_ptr<framework::AutonomousManagedSystem>()>;

    // Calls `factory` once per replica; each replica gets a fresh AMS so
    // replicas share no mutable state. `options.replicas` is clamped to
    // at least 1.
    AmsRouter(const AmsFactory& factory, RouterOptions options = {});

    AmsRouter(const AmsRouter&) = delete;
    AmsRouter& operator=(const AmsRouter&) = delete;

    // Routes to the hash-affine replica, spilling round-robin to a
    // replica with queue room when the primary is saturated. Same
    // contract as DecisionService::submit — never blocks.
    std::future<Decision> submit(cfg::TokenString request,
                                 DecisionService::SubmitOptions submit_options = {});

    // The hash-affine (primary) replica index for this request — what
    // submit() picks when nothing is saturated.
    [[nodiscard]] std::size_t replica_for(const cfg::TokenString& request) const;

    // Applies `fn` to every replica's AMS, each under that replica's
    // exclusive model lock, then records per-replica versions. Returns
    // replica 0's resulting model version.
    std::uint64_t update_model(const std::function<void(framework::AutonomousManagedSystem&)>& fn);

    // Blocks until every replica has completed all accepted requests.
    void drain();

    // --- warm restarts (src/store) ---

    // The full serving state as one snapshot: replica 0's model + policy
    // repository (replicas agree as long as updates go through the
    // router) plus every replica's cache entries. Reads the AMS under its
    // model lock, so it is safe against concurrent update_model().
    [[nodiscard]] store::SnapshotData export_state();

    // Restores a snapshot into this (freshly built) router: model and
    // policies broadcast to every replica under its model lock, cache
    // entries re-partitioned by request-hash over the *current* replica
    // count (a snapshot taken under --replicas 2 restores cleanly under
    // --replicas 3). Restored entries keep their model-version stamps, so
    // entries persisted under a superseded model lazily invalidate on
    // first touch exactly as they would have in memory.
    StateRestoreReport restore_state(const store::SnapshotData& data);

    [[nodiscard]] RouterStats snapshot_stats() const;

    // All replicas' flight rings merged, sorted by request id.
    [[nodiscard]] std::vector<FlightRecord> flight_snapshot() const;

    // All replicas' tail-captured traces (replica order, oldest first
    // within a replica) and the merged Chrome trace-event document.
    [[nodiscard]] std::vector<CapturedTrace> captured_traces() const;
    [[nodiscard]] std::string captured_traces_json() const;

    [[nodiscard]] std::size_t replicas() const { return services_.size(); }
    [[nodiscard]] DecisionService& service(std::size_t index) { return *services_[index]; }
    [[nodiscard]] const DecisionService& service(std::size_t index) const {
        return *services_[index];
    }
    [[nodiscard]] std::uint64_t model_version() const {
        return versions_[0]->load(std::memory_order_relaxed);
    }

private:
    std::vector<std::unique_ptr<framework::AutonomousManagedSystem>> ams_;
    std::vector<std::unique_ptr<DecisionService>> services_;
    // Cached per-replica model versions, refreshed by update_model(). The
    // AMSes themselves must not be read here while serving: workers write
    // nothing, but reading AMS state outside the service's lock would
    // race a concurrent update_model(). Atomics, not GUARDED_BY: readers
    // (model_version(), ping) are lock-free by design and a torn read is
    // impossible; versions_agree in snapshot_stats() covers staleness.
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> versions_;
    std::atomic<std::uint64_t> routed_affinity_{0};
    std::atomic<std::uint64_t> routed_fallback_{0};
    std::atomic<std::size_t> rr_{0};  // rotating fallback scan start
    std::vector<obs::Gauge*> depth_gauges_;  // srv.router.queue_depth.<i>; empty if metrics off
};

}  // namespace agenp::srv
