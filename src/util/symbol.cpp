#include "util/symbol.hpp"

#include <array>
#include <atomic>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "obs/lockprof.hpp"
#include "util/thread_annotations.hpp"

namespace agenp::util {
namespace {

// Process-wide intern table, sharded 16 ways by string hash so concurrent
// interning (the serving layer re-tokenizes and re-parses context text on
// every cache miss, from every worker thread) stripes across 16 mutexes
// instead of serializing on one. The profiler names all shard locks
// "symbol.intern", so obs::locks() reports their aggregate contention.
//
// Id layout: a Symbol id is (local_index << kShardBits) | shard, which
// keeps ids unique across shards and makes lookup() a pure index
// computation. Shard 0's slot 0 is pre-seeded with "" so the default
// Symbol (id 0) stays the empty symbol.
//
// Storage: each shard appends strings into fixed-size chunks whose
// addresses never move, published through atomic chunk pointers plus a
// release-stored count — so lookup() (the solver-side hot path) reads the
// text without taking the shard mutex at all.
constexpr std::size_t kShardBits = 4;
constexpr std::size_t kShards = 1 << kShardBits;            // 16
constexpr std::uint32_t kShardMask = kShards - 1;
constexpr std::size_t kChunkBits = 13;
constexpr std::size_t kChunkSize = 1 << kChunkBits;         // 8192 symbols
constexpr std::size_t kMaxChunks = 1 << 12;                 // 33M symbols/shard

struct Shard {
    obs::ProfiledMutex mu{"symbol.intern"};
    // Keys view into the chunk slots below (stable addresses).
    std::unordered_map<std::string_view, std::uint32_t> index GUARDED_BY(mu);
    std::uint32_t count GUARDED_BY(mu) = 0;   // slots filled
    std::atomic<std::uint32_t> published{0};  // release-stored copy of count
    // Chunk pointers are atomics so lookup() can read them lock-free;
    // only slot() (under mu) ever stores them.
    std::array<std::atomic<std::string*>, kMaxChunks> chunks{};

    std::string& slot(std::uint32_t local) REQUIRES(mu) {
        std::size_t chunk_index = local >> kChunkBits;
        std::string* chunk = chunks[chunk_index].load(std::memory_order_acquire);
        if (chunk == nullptr) {
            chunk = new std::string[kChunkSize];
            chunks[chunk_index].store(chunk, std::memory_order_release);
        }
        return chunk[local & (kChunkSize - 1)];
    }
};

struct InternTable {
    Shard shards[kShards];

    InternTable() {
        // Pre-seed id 0 = "" in shard 0 (intern() special-cases "" so it
        // never lands in another shard under a different id). The lock is
        // uncontendable here but keeps the GUARDED_BY contract uniform.
        Shard& s = shards[0];
        obs::ProfiledMutexLock lock(s.mu);
        s.slot(0) = "";
        s.index.emplace(std::string_view(s.slot(0)), 0);
        s.count = 1;
        s.published.store(1, std::memory_order_release);
    }

    std::uint32_t intern(std::string_view text) {
        if (text.empty()) return 0;
        auto shard_id = static_cast<std::uint32_t>(std::hash<std::string_view>{}(text)) & kShardMask;
        Shard& s = shards[shard_id];
        obs::ProfiledMutexLock lock(s.mu);
        if (auto it = s.index.find(text); it != s.index.end()) {
            return (it->second << kShardBits) | shard_id;
        }
        std::uint32_t local = s.count;
        if (local >= kMaxChunks * kChunkSize) {
            throw std::length_error("symbol intern shard full");
        }
        std::string& stored = s.slot(local);
        stored = std::string(text);
        s.index.emplace(std::string_view(stored), local);
        s.count = local + 1;
        s.published.store(s.count, std::memory_order_release);
        return (local << kShardBits) | shard_id;
    }

    std::string_view lookup(std::uint32_t id) {
        Shard& s = shards[id & kShardMask];
        std::uint32_t local = id >> kShardBits;
        // Acquire on `published` synchronizes with the release in intern(),
        // so every slot below it is fully constructed; no mutex needed.
        if (local >= s.published.load(std::memory_order_acquire)) return {};
        std::string* chunk = s.chunks[local >> kChunkBits].load(std::memory_order_acquire);
        return chunk[local & (kChunkSize - 1)];
    }

    std::size_t size() const {
        std::size_t total = 0;
        for (const Shard& s : shards) total += s.published.load(std::memory_order_acquire);
        return total;
    }
};

InternTable& table() {
    // Intentionally leaked: symbols are looked up from static destructors.
    static InternTable* t = new InternTable;
    return *t;
}

}  // namespace

Symbol::Symbol(std::string_view text) : id_(table().intern(text)) {}

std::string_view Symbol::str() const { return table().lookup(id_); }

std::size_t interned_symbol_count() { return table().size(); }

}  // namespace agenp::util
