#include "util/symbol.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace agenp::util {
namespace {

// Process-wide intern table. Guarded by a mutex: interning happens during
// parsing/setup, not in solver inner loops, so contention is irrelevant.
struct InternTable {
    std::mutex mu;
    std::deque<std::string> storage;  // deque: stable addresses on growth
    std::unordered_map<std::string_view, std::uint32_t> index;

    InternTable() {
        storage.emplace_back("");  // id 0 is the empty symbol
        index.emplace(storage.back(), 0);
    }

    std::uint32_t intern(std::string_view text) {
        std::lock_guard<std::mutex> lock(mu);
        if (auto it = index.find(text); it != index.end()) return it->second;
        storage.emplace_back(text);
        auto id = static_cast<std::uint32_t>(storage.size() - 1);
        index.emplace(storage.back(), id);
        return id;
    }

    std::string_view lookup(std::uint32_t id) {
        std::lock_guard<std::mutex> lock(mu);
        return storage[id];
    }
};

InternTable& table() {
    static InternTable t;
    return t;
}

}  // namespace

Symbol::Symbol(std::string_view text) : id_(table().intern(text)) {}

std::string_view Symbol::str() const { return table().lookup(id_); }

}  // namespace agenp::util
