// Clang Thread Safety Analysis annotation macros (DESIGN.md section 12).
//
// These expand to clang's `capability` attribute family when compiling
// with clang and to nothing everywhere else, so gcc builds see plain
// C++. The CI `thread-safety` job compiles all of src/ with
// -Werror=thread-safety -Werror=thread-safety-beta, turning every
// violated GUARDED_BY / REQUIRES contract into a build failure.
//
// Conventions for new code (see DESIGN.md section 12 for the full table):
//  - Every mutex that guards anything is an annotated capability type:
//    util::Mutex for plain internal locks, obs::ProfiledMutex /
//    obs::ProfiledSharedMutex when the lock should show up in /lockz.
//  - Every field written under a lock carries GUARDED_BY(that_lock);
//    pointers whose *pointee* the lock guards add PT_GUARDED_BY.
//  - Private helpers that assume the caller holds a lock are annotated
//    REQUIRES(lock) and named *_locked.
//  - Lock with the scoped types (util::MutexLock, obs::ProfiledMutexLock,
//    obs::ProfiledWriteLock, obs::ProfiledReadLock) — std::lock_guard and
//    friends carry no annotations, so the analysis cannot see through
//    them.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define AGENP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AGENP_THREAD_ANNOTATION_(x)
#endif

#define CAPABILITY(x) AGENP_THREAD_ANNOTATION_(capability(x))

#define SCOPED_CAPABILITY AGENP_THREAD_ANNOTATION_(scoped_lockable)

#define GUARDED_BY(x) AGENP_THREAD_ANNOTATION_(guarded_by(x))

#define PT_GUARDED_BY(x) AGENP_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) AGENP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) AGENP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) AGENP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) AGENP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) AGENP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) AGENP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) AGENP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) AGENP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) AGENP_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) AGENP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) AGENP_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) AGENP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) AGENP_THREAD_ANNOTATION_(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) AGENP_THREAD_ANNOTATION_(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) AGENP_THREAD_ANNOTATION_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS AGENP_THREAD_ANNOTATION_(no_thread_safety_analysis)
