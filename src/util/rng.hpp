// Deterministic random number generation.
//
// Every stochastic component (workload generators, ML baselines, noise
// injection) draws from a seeded SplitMix64 stream so that tests and
// benchmark tables are bit-for-bit reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace agenp::util {

// SplitMix64: tiny, fast, passes BigCrush for this usage; chosen over
// std::mt19937 because its output is specified independently of the
// standard library implementation.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
        auto range = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % range);
    }

    // Uniform double in [0, 1).
    double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    bool bernoulli(double p) { return uniform01() < p; }

    // Uniformly chosen element of a non-empty vector.
    template <typename T>
    const T& choice(const std::vector<T>& items) {
        return items[static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
    }

    // Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    // Derives an independent stream; used to give each trial its own seed.
    Rng split() { return Rng(next()); }

private:
    std::uint64_t state_;
};

}  // namespace agenp::util
