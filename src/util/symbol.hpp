// Interned symbols.
//
// Every identifier that flows through the ASP/CFG/ASG layers (predicate
// names, constants, grammar symbols, attribute names) is interned once into
// a process-wide table and afterwards handled as a 32-bit id. This makes
// term comparison, hashing and substitution O(1) and keeps the grounder's
// inner loops allocation-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace agenp::util {

// Opaque handle to an interned string. Two Symbols compare equal iff the
// strings they intern are identical.
class Symbol {
public:
    Symbol() = default;  // the empty symbol, interned as ""

    // Interns `text` (idempotent) and returns its handle.
    explicit Symbol(std::string_view text);

    // The interned text. Valid for the lifetime of the process.
    [[nodiscard]] std::string_view str() const;

    [[nodiscard]] std::uint32_t id() const { return id_; }

    friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
    friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
    // Orders by id — stable within a process but arbitrary (ids interleave
    // across intern shards); use str() when a human-facing order matters.
    friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

private:
    std::uint32_t id_ = 0;
};

// Total symbols interned so far across all shards (the intern table is
// sharded 16 ways by string hash; see symbol.cpp).
std::size_t interned_symbol_count();

}  // namespace agenp::util

template <>
struct std::hash<agenp::util::Symbol> {
    std::size_t operator()(agenp::util::Symbol s) const noexcept {
        return std::hash<std::uint32_t>{}(s.id());
    }
};
