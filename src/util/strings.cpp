#include "util/strings.hpp"

#include <cctype>

namespace agenp::util {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(sep, start);
        if (end == std::string_view::npos) end = text.size();
        if (end > start) out.emplace_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::vector<std::string> split_ws(std::string_view text) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
        std::size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
        if (i > start) out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) text.remove_prefix(1);
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) text.remove_suffix(1);
    return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool is_variable_name(std::string_view text) {
    if (text.empty()) return false;
    char c = text.front();
    return c == '_' || std::isupper(static_cast<unsigned char>(c));
}

bool is_integer(std::string_view text) {
    if (text.empty()) return false;
    std::size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
    if (i == text.size()) return false;
    for (; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
    }
    return true;
}

std::uint64_t fnv1a_hash(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace agenp::util
