// Small string helpers shared across parsers and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agenp::util {

// Splits on `sep`, dropping empty pieces.
std::vector<std::string> split(std::string_view text, char sep);

// Splits on runs of whitespace.
std::vector<std::string> split_ws(std::string_view text);

std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);

// True if `text` is a lexical ASP variable: leading uppercase or '_'.
bool is_variable_name(std::string_view text);

// True if `text` parses as a (possibly negative) decimal integer.
bool is_integer(std::string_view text);

// FNV-1a, 64-bit. One hash family shared by the decision cache, the
// router's replica placement, and the audit log's request_hash field, so
// equal request texts carry the same identity everywhere.
std::uint64_t fnv1a_hash(std::string_view text);

}  // namespace agenp::util
