// ASCII table rendering for benchmark reports.
//
// The benchmark binaries print the same rows/series the paper reports; this
// helper keeps all of them visually consistent.
#pragma once

#include <string>
#include <vector>

namespace agenp::util {

class Table {
public:
    explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

    void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    // Convenience: formats each cell with to_string-ish conversion.
    template <typename... Cells>
    void add(const Cells&... cells) {
        add_row({cell_to_string(cells)...});
    }

    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    static std::string cell_to_string(const std::string& s) { return s; }
    static std::string cell_to_string(const char* s) { return s; }
    static std::string cell_to_string(double v);
    template <typename T>
    static std::string cell_to_string(const T& v) {
        return std::to_string(v);
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace agenp::util
