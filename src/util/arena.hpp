// Bump-pointer arena allocator (rspamd mem_pool idiom): allocations come
// from large chunks, individual objects are never freed, and `reset()`
// recycles every chunk for the next request. The grounder routes its
// per-request scratch (pending-rule buffers, dedupe buckets, match spans)
// through one thread-local arena so a cache-miss grounding does O(chunks)
// mallocs instead of O(atoms).
//
// Lifetime rule (DESIGN.md §13): anything that outlives the request —
// memo fragments, GroundProgram contents, interned symbols — must be
// deep-copied into ordinary heap values before the arena resets. Arena
// pointers are only valid between one `reset()` and the next.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace agenp::util {

class Arena {
public:
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunk_bytes_(chunk_bytes < kMinChunkBytes ? kMinChunkBytes : chunk_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    // Returns `size` bytes aligned to `align` (a power of two; alignments
    // beyond alignof(max_align_t) are honored by aligning the pointer, not
    // just the chunk offset). Requests larger than the chunk size get a
    // dedicated chunk.
    void* alloc(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
        if (size == 0) size = 1;
        std::size_t offset = current_ == nullptr ? 0 : aligned_offset(align);
        if (current_ == nullptr || offset + size > current_->size) {
            grow(size + align);
            offset = aligned_offset(align);
        }
        cursor_ = offset + size;
        bytes_allocated_ += size;
        return current_->data + offset;
    }

    template <typename T>
    T* alloc_array(std::size_t count) {
        return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
    }

    // Recycles every chunk: subsequent allocations reuse the memory already
    // obtained from malloc. Outstanding arena pointers become invalid (in
    // ASan builds the recycled memory is re-poisoned until re-allocated).
    void reset() {
        chunk_index_ = 0;
        current_ = chunks_.empty() ? nullptr : chunks_[0].get();
        cursor_ = 0;
        bytes_allocated_ = 0;
        ++resets_;
    }

    // Frees every chunk back to malloc.
    void release() {
        chunks_.clear();
        chunk_index_ = 0;
        current_ = nullptr;
        cursor_ = 0;
        bytes_allocated_ = 0;
    }

    [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }
    [[nodiscard]] std::size_t bytes_reserved() const {
        std::size_t total = 0;
        for (const auto& chunk : chunks_) total += chunk->size;
        return total;
    }
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
    [[nodiscard]] std::uint64_t resets() const { return resets_; }

private:
    static constexpr std::size_t kMinChunkBytes = 1024;

    struct Chunk {
        std::size_t size = 0;
        alignas(std::max_align_t) unsigned char data[1];  // over-allocated
    };
    struct ChunkDeleter {
        void operator()(Chunk* chunk) const { ::operator delete(static_cast<void*>(chunk)); }
    };
    using ChunkPtr = std::unique_ptr<Chunk, ChunkDeleter>;

    static ChunkPtr make_chunk(std::size_t size) {
        void* raw = ::operator new(sizeof(Chunk) + size);
        auto* chunk = static_cast<Chunk*>(raw);
        chunk->size = size;
        return ChunkPtr(chunk);
    }

    // Smallest offset >= cursor_ whose pointer into the current chunk is
    // `align`-aligned (the chunk base itself is only max_align-aligned).
    [[nodiscard]] std::size_t aligned_offset(std::size_t align) const {
        auto base = reinterpret_cast<std::uintptr_t>(current_->data);
        return ((base + cursor_ + (align - 1)) & ~(align - 1)) - base;
    }

    void grow(std::size_t at_least) {
        // Reuse the next already-reserved chunk when it is big enough;
        // otherwise splice in a fresh one (oversized requests get a
        // dedicated chunk) so later reserved chunks stay reachable.
        std::size_t want = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
        std::size_t next = current_ == nullptr ? 0 : chunk_index_ + 1;
        if (next >= chunks_.size() || chunks_[next]->size < want) {
            chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next), make_chunk(want));
        }
        chunk_index_ = next;
        current_ = chunks_[chunk_index_].get();
        cursor_ = 0;
    }

    std::size_t chunk_bytes_;
    std::vector<ChunkPtr> chunks_;
    std::size_t chunk_index_ = 0;
    Chunk* current_ = nullptr;
    std::size_t cursor_ = 0;
    std::size_t bytes_allocated_ = 0;
    std::uint64_t resets_ = 0;
};

// std-compatible allocator over an Arena. Deallocate is a no-op, so
// containers built with it must not outlive the next `reset()`.
template <typename T>
class ArenaAllocator {
public:
    using value_type = T;

    explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

    T* allocate(std::size_t n) { return arena_->alloc_array<T>(n); }
    void deallocate(T*, std::size_t) noexcept {}

    [[nodiscard]] Arena* arena() const noexcept { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U>& other) const noexcept {
        return arena_ == other.arena();
    }
    template <typename U>
    bool operator!=(const ArenaAllocator<U>& other) const noexcept {
        return arena_ != other.arena();
    }

private:
    Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

// RAII request scope: resets the arena on entry so scratch from the
// previous request is recycled, and again on exit so arena pointers can't
// leak past the scope in debug builds.
class ArenaScope {
public:
    explicit ArenaScope(Arena& arena) : arena_(arena) { arena_.reset(); }
    ~ArenaScope() { arena_.reset(); }
    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

private:
    Arena& arena_;
};

// The per-thread grounding arena: one per worker thread, reset per
// grounding request (see asp::ground). Thread-local, so no locking.
inline Arena& grounding_arena() {
    thread_local Arena arena;
    return arena;
}

}  // namespace agenp::util
