// Thread-safe errno formatting (clang-tidy concurrency-mt-unsafe bans
// strerror(): it may return a pointer into static storage that another
// thread's strerror() call rewrites mid-read).
//
// Header-only so low-level libraries (agenp_obs, agenp_store) can use it
// without linking agenp_util, which depends on them.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>

namespace agenp::util {

namespace detail {
// strerror_r has two flavors: glibc's GNU variant returns char* (which
// may or may not be `buf`), POSIX returns int (0 on success, message in
// `buf`). Overloading on the result type picks the right adapter at
// compile time for whichever the libc provides.
inline const char* strerror_adapt(const char* result, const char* /*buf*/) { return result; }
inline const char* strerror_adapt(int result, const char* buf) {
    return result == 0 ? buf : "Unknown error";
}
}  // namespace detail

// The message for `err` (an errno value), like std::strerror but safe to
// call from any thread.
inline std::string errno_string(int err) {
    char buf[256];
    buf[0] = '\0';
    return detail::strerror_adapt(strerror_r(err, buf, sizeof buf), buf);
}

// Convenience for the common `...: strerror(errno)` message tail.
inline std::string errno_string() { return errno_string(errno); }

}  // namespace agenp::util
