// Annotated wrappers over std::mutex / std::condition_variable
// (DESIGN.md section 12).
//
// std::mutex is not a thread-safety capability, so fields guarded by one
// are invisible to clang's -Wthread-safety. util::Mutex is the drop-in
// replacement for internal locks that should be *checked* but not
// *profiled* (registry impls, queue handoffs, ticker wakeups); locks on
// hot serving paths use obs::ProfiledMutex instead, which is both a
// capability and a /lockz row.
//
// util::CondVar pairs with util::Mutex. wait()/wait_for() take the Mutex
// directly and are annotated REQUIRES(mu): the capability is held at
// entry and at exit, and the analysis deliberately does not see the
// unlock/relock inside the wait. Predicate overloads are omitted on
// purpose — a predicate lambda reading GUARDED_BY fields defeats the
// analysis, so callers write the `while (!ready) cv.wait(mu);` loop out.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace agenp::util {

class CondVar;

class CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    std::mutex mu_;
};

// std::lock_guard equivalent that the analysis can see through.
class SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mu) REQUIRES(mu) {
        std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    template <class Rep, class Period>
    std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
        REQUIRES(mu) {
        std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
        std::cv_status status = cv_.wait_for(lock, timeout);
        lock.release();
        return status;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace agenp::util
