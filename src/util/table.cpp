#include "util/table.hpp"

#include <cstdio>

namespace agenp::util {

std::string Table::cell_to_string(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

std::string Table::render() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (auto w : widths) rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    std::string out = rule + render_row(header_) + rule;
    for (const auto& row : rows_) out += render_row(row);
    out += rule;
    return out;
}

}  // namespace agenp::util
