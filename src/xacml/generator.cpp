#include "xacml/generator.hpp"

#include <set>

namespace agenp::xacml {

Schema healthcare_schema() {
    Schema s;
    s.attributes.push_back(
        AttributeDef::categorical("role", Category::Subject, {"doctor", "nurse", "admin", "guest"}));
    s.attributes.push_back(
        AttributeDef::categorical("dept", Category::Subject, {"cardio", "radio", "er"}));
    s.attributes.push_back(
        AttributeDef::categorical("action", Category::Action, {"read", "write", "delete"}));
    s.attributes.push_back(
        AttributeDef::categorical("resource", Category::Resource, {"record", "report"}));
    s.attributes.push_back(AttributeDef::numeric_range("hour", Category::Environment, 0, 5));
    return s;
}

Schema coalition_schema() {
    Schema s;
    s.attributes.push_back(
        AttributeDef::categorical("partner", Category::Subject, {"us", "uk", "local"}));
    s.attributes.push_back(AttributeDef::numeric_range("trust", Category::Subject, 0, 4));
    s.attributes.push_back(
        AttributeDef::categorical("kind", Category::Resource, {"image", "audio", "document"}));
    s.attributes.push_back(AttributeDef::numeric_range("quality", Category::Resource, 0, 4));
    return s;
}

namespace {

AttributeValue random_domain_value(const AttributeDef& def, util::Rng& rng) {
    if (def.numeric) return AttributeValue::of(rng.uniform(def.min, def.max));
    return AttributeValue::of(def.values[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(def.values.size()) - 1))]);
}

// A conjunctive target over distinct random attributes; numeric attributes
// get threshold matches, categorical ones equality.
Target random_target(const Schema& schema, int conjuncts, util::Rng& rng) {
    Target t;
    std::set<std::size_t> used;
    int attempts = 0;
    while (static_cast<int>(t.all_of.size()) < conjuncts && ++attempts < 100) {
        auto a = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(schema.size()) - 1));
        if (!used.insert(a).second) continue;
        const auto& def = schema.attributes[a];
        Match m;
        m.attribute = a;
        if (def.numeric) {
            m.op = rng.bernoulli(0.5) ? Match::Op::Le : Match::Op::Ge;
            m.value = AttributeValue::of(rng.uniform(def.min + 1, def.max - 1));
        } else {
            m.op = Match::Op::Eq;
            m.value = random_domain_value(def, rng);
        }
        t.all_of.push_back(m);
    }
    return t;
}

}  // namespace

XacmlPolicy default_permit_family(const Schema& schema, const PolicyFamilyOptions& options) {
    util::Rng rng(options.seed);
    XacmlPolicy p;
    p.id = "default-permit-" + std::to_string(options.seed);
    p.alg = CombiningAlg::DenyOverrides;
    for (int i = 0; i < options.deny_rules; ++i) {
        XacmlRule r;
        r.id = "deny" + std::to_string(i);
        r.effect = Effect::Deny;
        r.target = random_target(schema, options.matches_per_rule, rng);
        p.rules.push_back(std::move(r));
    }
    if (options.catch_all_permit) {
        XacmlRule r;
        r.id = "permit-all";
        r.effect = Effect::Permit;
        p.rules.push_back(std::move(r));  // empty target: applies to everything
    }
    return p;
}

XacmlPolicy first_applicable_family(const Schema& schema, const PolicyFamilyOptions& options) {
    util::Rng rng(options.seed);
    XacmlPolicy p;
    p.id = "first-applicable-" + std::to_string(options.seed);
    p.alg = CombiningAlg::FirstApplicable;
    for (int i = 0; i < options.deny_rules * 2; ++i) {
        XacmlRule r;
        r.id = "rule" + std::to_string(i);
        r.effect = i % 2 == 0 ? Effect::Deny : Effect::Permit;
        r.target = random_target(schema, options.matches_per_rule, rng);
        p.rules.push_back(std::move(r));
    }
    if (options.catch_all_permit) {
        XacmlRule r;
        r.id = "permit-all";
        r.effect = Effect::Permit;
        p.rules.push_back(std::move(r));
    }
    return p;
}

std::vector<Request> sample_requests(const Schema& schema, std::size_t n, util::Rng& rng) {
    std::vector<Request> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_request(schema, rng));
    return out;
}

void inject_noise(std::vector<LogEntry>& log, const NoiseOptions& options) {
    util::Rng rng(options.seed);
    for (auto& entry : log) {
        if (options.not_applicable_prob > 0 && rng.bernoulli(options.not_applicable_prob)) {
            entry.decision = Decision::NotApplicable;
            continue;
        }
        if (options.flip_prob > 0 && rng.bernoulli(options.flip_prob)) {
            if (entry.decision == Decision::Permit) {
                entry.decision = Decision::Deny;
            } else if (entry.decision == Decision::Deny) {
                entry.decision = Decision::Permit;
            }
        }
    }
}

}  // namespace agenp::xacml
