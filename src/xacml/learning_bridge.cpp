#include "xacml/learning_bridge.hpp"

#include <algorithm>
#include <set>

#include "asg/membership.hpp"

namespace agenp::xacml {
namespace {

bool is_var_attribute(const BridgeOptions& options, const std::string& name) {
    return std::find(options.var_attributes.begin(), options.var_attributes.end(), name) !=
           options.var_attributes.end();
}

std::string attr_nonterminal(const AttributeDef& def) { return "attr_" + def.name; }

}  // namespace

Bridge make_bridge(const Schema& schema, const BridgeOptions& options) {
    Bridge bridge;
    bridge.schema = schema;
    bridge.options = options;

    // Root production: request -> attr_a1 ... attr_an.
    cfg::Production root;
    root.lhs = util::Symbol("request");
    for (const auto& def : schema.attributes) {
        root.rhs.push_back(cfg::GSym::nonterm(attr_nonterminal(def)));
    }
    bridge.grammar.set_start(root.lhs);
    bridge.grammar.add_production(std::move(root));

    // One production per attribute value, annotated with its fact.
    for (const auto& def : schema.attributes) {
        auto add_value = [&](const AttributeValue& v) {
            cfg::Production p;
            p.lhs = util::Symbol(attr_nonterminal(def));
            p.rhs.push_back(cfg::GSym::term(def.name + "=" + v.to_string()));
            asp::Program annotation;
            asp::Term arg = v.numeric ? asp::Term::integer(v.number) : asp::Term::constant(v.text);
            annotation.add_fact(asp::Atom(util::Symbol(def.name), {arg}));
            bridge.grammar.add_production(std::move(p), std::move(annotation));
        };
        if (def.numeric) {
            for (std::int64_t x = def.min; x <= def.max; ++x) add_value(AttributeValue::of(x));
        } else {
            for (const auto& v : def.values) add_value(AttributeValue::of(v));
        }
    }

    // Mode bias over the root production.
    ilp::ModeBias bias;
    bias.max_body_atoms = options.max_body_atoms;
    bias.max_comparisons = options.max_comparisons;
    bias.max_vars = options.max_vars;
    for (std::size_t i = 0; i < schema.attributes.size(); ++i) {
        const auto& def = schema.attributes[i];
        int annotation = static_cast<int>(i) + 1;
        if (def.numeric) {
            bias.body.push_back(
                ilp::ModeAtom(def.name, {ilp::ArgSpec::var(def.name)}, annotation));
            bias.comparisons.push_back(
                ilp::ComparisonMode(def.name, {asp::Comparison::Op::Le, asp::Comparison::Op::Ge}));
            for (std::int64_t x = def.min; x <= def.max; ++x) {
                bias.add_constant(def.name, asp::Term::integer(x));
            }
        } else if (is_var_attribute(options, def.name)) {
            bias.body.push_back(
                ilp::ModeAtom(def.name, {ilp::ArgSpec::var(def.name)}, annotation));
        } else {
            bias.body.push_back(
                ilp::ModeAtom(def.name, {ilp::ArgSpec::constant(def.name)}, annotation));
            for (const auto& v : def.values) {
                bias.add_constant(def.name, asp::Term::constant(v));
            }
        }
    }
    for (const auto& extra : options.extra_body_atoms) bias.body.push_back(extra);
    for (const auto& extra : options.extra_comparisons) bias.comparisons.push_back(extra);
    for (const auto& [pool, terms] : options.extra_constants) {
        auto& dest = bias.constants[pool];
        dest.insert(dest.end(), terms.begin(), terms.end());
    }

    bridge.space = ilp::generate_space(bias, {0});

    // Target restriction: every kept candidate must mention each required
    // attribute's predicate.
    if (!options.required_attributes.empty()) {
        auto mentions = [](const asp::Rule& rule, const std::string& pred) {
            for (const auto& l : rule.body) {
                if (l.atom.predicate.str() == pred) return true;
            }
            return false;
        };
        std::vector<ilp::Candidate> kept;
        for (auto& c : bridge.space.candidates) {
            bool ok = true;
            for (const auto& attr : options.required_attributes) {
                if (!mentions(c.rule, attr)) {
                    ok = false;
                    break;
                }
            }
            if (ok) kept.push_back(std::move(c));
        }
        bridge.space.candidates = std::move(kept);
    }
    return bridge;
}

cfg::TokenString request_tokens(const Schema& schema, const Request& request) {
    cfg::TokenString tokens;
    tokens.reserve(schema.size());
    for (std::size_t i = 0; i < schema.size(); ++i) {
        tokens.emplace_back(schema.attributes[i].name + "=" + request.values[i].to_string());
    }
    return tokens;
}

ilp::LearningTask make_task(const Bridge& bridge, const std::vector<LogEntry>& log, NaHandling na) {
    ilp::LearningTask task;
    task.initial = bridge.grammar;
    task.space = bridge.space;
    std::set<std::pair<std::string, bool>> seen;
    for (const auto& entry : log) {
        bool positive;
        switch (entry.decision) {
            case Decision::Permit:
                positive = true;
                break;
            case Decision::Deny:
                positive = false;
                break;
            case Decision::NotApplicable:
                if (na == NaHandling::Drop) continue;
                positive = false;
                break;
            default:
                continue;
        }
        auto tokens = request_tokens(bridge.schema, entry.request);
        if (!seen.insert({cfg::detokenize(tokens), positive}).second) continue;
        auto& bucket = positive ? task.positive : task.negative;
        bucket.emplace_back(std::move(tokens), bridge.options.background);
    }
    return task;
}

ilp::LearnResult learn_policy(const Bridge& bridge, const std::vector<LogEntry>& log, NaHandling na,
                              const ilp::LearnOptions& options) {
    return ilp::learn(make_task(bridge, log, na), options);
}

namespace {

// Human-readable condition for one constraint literal/comparison set.
std::string render_constraint(const asp::Rule& rule) {
    std::vector<std::string> parts;
    // Variable -> attribute-name mapping from annotated literals.
    std::map<std::string, std::string> var_attr;
    for (const auto& l : rule.body) {
        const auto& atom = l.atom;
        std::string pred(atom.predicate.str());
        if (atom.args.size() == 1 && atom.args[0].is_variable()) {
            var_attr[std::string(atom.args[0].symbol().str())] = pred;
            continue;  // condition comes from the comparison
        }
        if (atom.args.size() == 1) {
            parts.push_back((l.positive ? "" : "not ") + pred + "=" + atom.args[0].to_string());
            continue;
        }
        // Multi-arg (background) literals keep functional notation; a
        // trailing variable that feeds a comparison keeps its name so the
        // comparison reads through it.
        asp::Atom shown = atom;
        shown.annotation = asp::kUnannotated;
        parts.push_back((l.positive ? "" : "not ") + shown.to_string());
    }
    for (const auto& c : rule.builtins) {
        std::string lhs = c.lhs.is_variable() && var_attr.contains(std::string(c.lhs.symbol().str()))
                              ? var_attr.at(std::string(c.lhs.symbol().str()))
                              : c.lhs.to_string();
        parts.push_back(lhs + " " + asp::Comparison::op_to_string(c.op) + " " + c.rhs.to_string());
    }
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += " and ";
        out += parts[i];
    }
    return out.empty() ? "true" : out;
}

}  // namespace

std::string render_learned_policy(const Bridge& bridge, const ilp::Hypothesis& hypothesis) {
    (void)bridge;
    std::string out;
    int i = 0;
    for (const auto& [rule, production] : hypothesis) {
        (void)production;
        out += "  rule d" + std::to_string(i++) + ": Deny if " + render_constraint(rule) + "\n";
    }
    out += "  rule permit-all: Permit otherwise\n";
    return out;
}

XacmlPolicy to_xacml(const Bridge& bridge, const ilp::Hypothesis& hypothesis) {
    XacmlPolicy policy;
    policy.id = "learned";
    policy.alg = CombiningAlg::DenyOverrides;
    int i = 0;
    for (const auto& [rule, production] : hypothesis) {
        (void)production;
        XacmlRule deny;
        deny.id = "learned-deny" + std::to_string(i++);
        deny.effect = Effect::Deny;
        std::map<std::string, std::size_t> var_attr;  // variable name -> attribute index
        for (const auto& l : rule.body) {
            int attr = bridge.schema.index_of(l.atom.predicate.str());
            if (attr < 0 || l.atom.args.size() != 1) continue;  // background literal: skip
            const auto& arg = l.atom.args[0];
            if (arg.is_variable()) {
                var_attr[std::string(arg.symbol().str())] = static_cast<std::size_t>(attr);
                continue;
            }
            Match m;
            m.attribute = static_cast<std::size_t>(attr);
            m.op = l.positive ? Match::Op::Eq : Match::Op::Ne;
            m.value = arg.is_integer() ? AttributeValue::of(arg.int_value())
                                       : AttributeValue::of(std::string(arg.symbol().str()));
            deny.target.all_of.push_back(m);
        }
        for (const auto& c : rule.builtins) {
            if (!c.lhs.is_variable() || !c.rhs.is_integer()) continue;
            auto it = var_attr.find(std::string(c.lhs.symbol().str()));
            if (it == var_attr.end()) continue;
            Match m;
            m.attribute = it->second;
            switch (c.op) {
                case asp::Comparison::Op::Le: m.op = Match::Op::Le; break;
                case asp::Comparison::Op::Lt: m.op = Match::Op::Lt; break;
                case asp::Comparison::Op::Ge: m.op = Match::Op::Ge; break;
                case asp::Comparison::Op::Gt: m.op = Match::Op::Gt; break;
                case asp::Comparison::Op::Eq: m.op = Match::Op::Eq; break;
                case asp::Comparison::Op::Ne: m.op = Match::Op::Ne; break;
            }
            m.value = AttributeValue::of(c.rhs.int_value());
            deny.target.all_of.push_back(m);
        }
        policy.rules.push_back(std::move(deny));
    }
    XacmlRule permit;
    permit.id = "permit-all";
    permit.effect = Effect::Permit;
    policy.rules.push_back(std::move(permit));
    return policy;
}

double agreement(const Bridge& bridge, const asg::AnswerSetGrammar& learned,
                 const XacmlPolicy& truth, const std::vector<Request>& requests) {
    if (requests.empty()) return 1.0;
    std::size_t agree = 0;
    for (const auto& r : requests) {
        bool truth_permits = evaluate(truth, r) == Decision::Permit;
        bool learned_permits = asg::in_language(learned, request_tokens(bridge.schema, r),
                                                bridge.options.background);
        if (truth_permits == learned_permits) ++agree;
    }
    return static_cast<double>(agree) / static_cast<double>(requests.size());
}

}  // namespace agenp::xacml
