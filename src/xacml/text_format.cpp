#include "xacml/text_format.hpp"

#include <map>

#include "util/strings.hpp"

namespace agenp::xacml {
namespace {

std::string category_keyword(Category c) { return category_name(c); }

Category parse_category(const std::string& word) {
    if (word == "subject") return Category::Subject;
    if (word == "resource") return Category::Resource;
    if (word == "action") return Category::Action;
    if (word == "environment") return Category::Environment;
    throw FormatError("unknown attribute category '" + word + "'");
}

std::string op_symbol(Match::Op op) {
    switch (op) {
        case Match::Op::Eq: return "=";
        case Match::Op::Ne: return "!=";
        case Match::Op::Lt: return "<";
        case Match::Op::Le: return "<=";
        case Match::Op::Gt: return ">";
        case Match::Op::Ge: return ">=";
    }
    return "?";
}

// Parses "attr<op>value" with the longest operator first.
Match parse_match(const std::string& token, const Schema& schema) {
    static const std::pair<const char*, Match::Op> kOps[] = {
        {"!=", Match::Op::Ne}, {"<=", Match::Op::Le}, {">=", Match::Op::Ge},
        {"<", Match::Op::Lt},  {">", Match::Op::Gt},  {"=", Match::Op::Eq},
    };
    for (const auto& [symbol, op] : kOps) {
        auto pos = token.find(symbol);
        if (pos == std::string::npos) continue;
        std::string attr = token.substr(0, pos);
        std::string value = token.substr(pos + std::string(symbol).size());
        int index = schema.index_of(attr);
        if (index < 0) throw FormatError("unknown attribute '" + attr + "'");
        Match m;
        m.attribute = static_cast<std::size_t>(index);
        m.op = op;
        const auto& def = schema.attributes[m.attribute];
        if (def.numeric) {
            if (!util::is_integer(value)) {
                throw FormatError("attribute '" + attr + "' is numeric, got '" + value + "'");
            }
            m.value = AttributeValue::of(std::stoll(value));
        } else {
            m.value = AttributeValue::of(value);
        }
        return m;
    }
    throw FormatError("expected attr<op>value, got '" + token + "'");
}

Target parse_target(const std::vector<std::string>& words, std::size_t from, const Schema& schema) {
    Target t;
    if (from < words.size() && words[from] == "any") return t;
    for (std::size_t i = from; i < words.size(); ++i) t.all_of.push_back(parse_match(words[i], schema));
    return t;
}

std::string target_to_text(const Target& t, const Schema& schema) {
    if (t.all_of.empty()) return "any";
    std::string out;
    for (std::size_t i = 0; i < t.all_of.size(); ++i) {
        if (i > 0) out += ' ';
        const auto& m = t.all_of[i];
        out += schema.attributes[m.attribute].name + op_symbol(m.op) + m.value.to_string();
    }
    return out;
}

}  // namespace

std::string schema_to_text(const Schema& schema, const std::string& name) {
    std::string out = "schema " + name + "\n";
    for (const auto& a : schema.attributes) {
        out += "  attr " + a.name + " " + category_keyword(a.category);
        if (a.numeric) {
            out += " numeric " + std::to_string(a.min) + " " + std::to_string(a.max);
        } else {
            out += " categorical";
            for (const auto& v : a.values) out += " " + v;
        }
        out += "\n";
    }
    return out;
}

Schema parse_schema(std::string_view text) {
    Schema schema;
    bool seen_header = false;
    for (const auto& raw : util::split(text, '\n')) {
        auto line = util::trim(raw);
        if (line.empty() || util::starts_with(line, "#")) continue;
        auto words = util::split_ws(line);
        if (words[0] == "schema") {
            seen_header = true;
            continue;
        }
        if (words[0] != "attr") throw FormatError("expected 'attr', got '" + words[0] + "'");
        if (words.size() < 4) throw FormatError("attr needs: attr <name> <category> <kind> ...");
        if (words[3] == "numeric") {
            if (words.size() != 6) throw FormatError("numeric attr needs min and max");
            schema.attributes.push_back(AttributeDef::numeric_range(
                words[1], parse_category(words[2]), std::stoll(words[4]), std::stoll(words[5])));
        } else if (words[3] == "categorical") {
            std::vector<std::string> values(words.begin() + 4, words.end());
            if (values.empty()) throw FormatError("categorical attr needs at least one value");
            schema.attributes.push_back(
                AttributeDef::categorical(words[1], parse_category(words[2]), std::move(values)));
        } else {
            throw FormatError("attr kind must be numeric or categorical, got '" + words[3] + "'");
        }
    }
    if (!seen_header || schema.attributes.empty()) throw FormatError("empty or headerless schema");
    return schema;
}

std::string policy_to_text(const XacmlPolicy& policy, const Schema& schema) {
    std::string out = "policy " + (policy.id.empty() ? "unnamed" : policy.id) + " " +
                      combining_name(policy.alg) + "\n";
    out += "  target " + target_to_text(policy.target, schema) + "\n";
    for (const auto& r : policy.rules) {
        out += "  rule " + (r.id.empty() ? "r" : r.id) + " " +
               (r.effect == Effect::Permit ? "permit" : "deny") + " " +
               target_to_text(r.target, schema) + "\n";
    }
    return out;
}

XacmlPolicy parse_policy(std::string_view text, const Schema& schema) {
    XacmlPolicy policy;
    bool seen_header = false;
    for (const auto& raw : util::split(text, '\n')) {
        auto line = util::trim(raw);
        if (line.empty() || util::starts_with(line, "#")) continue;
        auto words = util::split_ws(line);
        if (words[0] == "policy") {
            if (words.size() != 3) throw FormatError("policy needs: policy <id> <combining-alg>");
            policy.id = words[1];
            if (words[2] == "deny-overrides") {
                policy.alg = CombiningAlg::DenyOverrides;
            } else if (words[2] == "permit-overrides") {
                policy.alg = CombiningAlg::PermitOverrides;
            } else if (words[2] == "first-applicable") {
                policy.alg = CombiningAlg::FirstApplicable;
            } else {
                throw FormatError("unknown combining algorithm '" + words[2] + "'");
            }
            seen_header = true;
        } else if (words[0] == "target") {
            policy.target = parse_target(words, 1, schema);
        } else if (words[0] == "rule") {
            if (words.size() < 3) throw FormatError("rule needs: rule <id> <permit|deny> <target>");
            XacmlRule rule;
            rule.id = words[1];
            if (words[2] == "permit") {
                rule.effect = Effect::Permit;
            } else if (words[2] == "deny") {
                rule.effect = Effect::Deny;
            } else {
                throw FormatError("rule effect must be permit or deny, got '" + words[2] + "'");
            }
            rule.target = parse_target(words, 3, schema);
            policy.rules.push_back(std::move(rule));
        } else {
            throw FormatError("unexpected line in policy: " + std::string(line));
        }
    }
    if (!seen_header) throw FormatError("missing 'policy' header");
    return policy;
}

std::string request_to_text(const Request& request, const Schema& schema) {
    return "request " + request.to_string(schema);
}

Request parse_request(std::string_view text, const Schema& schema) {
    auto words = util::split_ws(text);
    std::size_t from = !words.empty() && words[0] == "request" ? 1 : 0;
    std::map<std::string, std::string> values;
    for (std::size_t i = from; i < words.size(); ++i) {
        auto eq = words[i].find('=');
        if (eq == std::string::npos) throw FormatError("expected attr=value, got '" + words[i] + "'");
        values[words[i].substr(0, eq)] = words[i].substr(eq + 1);
    }
    Request r;
    for (const auto& def : schema.attributes) {
        auto it = values.find(def.name);
        if (it == values.end()) throw FormatError("request is missing attribute '" + def.name + "'");
        if (def.numeric) {
            if (!util::is_integer(it->second)) {
                throw FormatError("attribute '" + def.name + "' is numeric, got '" + it->second + "'");
            }
            r.values.push_back(AttributeValue::of(std::stoll(it->second)));
        } else {
            r.values.push_back(AttributeValue::of(it->second));
        }
        values.erase(it);
    }
    if (!values.empty()) {
        throw FormatError("request names unknown attribute '" + values.begin()->first + "'");
    }
    return r;
}

}  // namespace agenp::xacml
