// Bridge between the XACML world and the ASG learner (Section IV.C).
//
// Requests are rendered as token strings ("role=doctor dept=er ..."); a
// schema-derived ASG parses them and annotates each attribute child with a
// fact (role(doctor), hour(3), ...). Learning recovers root-production
// constraints — each one a conjunctive deny region — from request/decision
// logs; learned hypotheses translate back into XACML deny rules for
// Fig 3-style reporting and PCP quality analysis.
#pragma once

#include "ilp/learner.hpp"
#include "xacml/generator.hpp"

namespace agenp::xacml {

struct BridgeOptions {
    int max_body_atoms = 2;
    int max_comparisons = 1;
    int max_vars = 2;
    // Attributes exposed as typed variables (joinable with background
    // predicates); categorical attributes default to constant slots.
    std::vector<std::string> var_attributes;
    // Background knowledge added to every example's context (the
    // overfitting mitigation of Section IV.C).
    asp::Program background;
    // Extra hypothesis-space atoms, e.g. over background predicates.
    std::vector<ilp::ModeAtom> extra_body_atoms;
    std::vector<ilp::ComparisonMode> extra_comparisons;
    // Extra constant pools (type name -> terms), merged into the bias.
    std::map<asp::Symbol, std::vector<asp::Term>> extra_constants;
    // Target restriction (Fig 3b Policy 2 mitigation): keep only candidates
    // mentioning ALL of these attributes.
    std::vector<std::string> required_attributes;
};

struct Bridge {
    Schema schema;
    BridgeOptions options;
    asg::AnswerSetGrammar grammar;
    ilp::HypothesisSpace space;
};

Bridge make_bridge(const Schema& schema, const BridgeOptions& options = {});

// "role=doctor dept=er action=read resource=record hour=3"
cfg::TokenString request_tokens(const Schema& schema, const Request& request);

enum class NaHandling {
    Drop,    // the paper's recommended filtering
    AsDeny,  // the Fig 3b Policy 3 failure mode: irrelevant responses taken as decisions
};

// Builds the Definition-3 task from a decision log. Permit -> positive,
// Deny -> negative. Duplicate (string, label) pairs are deduped.
ilp::LearningTask make_task(const Bridge& bridge, const std::vector<LogEntry>& log,
                            NaHandling na = NaHandling::Drop);

// Runs the learner on a log.
ilp::LearnResult learn_policy(const Bridge& bridge, const std::vector<LogEntry>& log,
                              NaHandling na = NaHandling::Drop, const ilp::LearnOptions& options = {});

// Fig 3-style rendering: one "Deny if ..." line per learned constraint plus
// the default-permit closing line.
std::string render_learned_policy(const Bridge& bridge, const ilp::Hypothesis& hypothesis);

// Translates a learned hypothesis back into an executable XACML policy
// (deny-overrides, catch-all permit). Constraints that use joins beyond
// attribute literals + one comparison fall back to a best-effort box.
XacmlPolicy to_xacml(const Bridge& bridge, const ilp::Hypothesis& hypothesis);

// Fraction of `requests` where the learned grammar's accept/reject agrees
// with `truth`'s Permit/non-Permit.
double agreement(const Bridge& bridge, const asg::AnswerSetGrammar& learned,
                 const XacmlPolicy& truth, const std::vector<Request>& requests);

}  // namespace agenp::xacml
