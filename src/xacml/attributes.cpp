#include "xacml/attributes.hpp"

#include <stdexcept>

namespace agenp::xacml {

std::string category_name(Category c) {
    switch (c) {
        case Category::Subject: return "subject";
        case Category::Resource: return "resource";
        case Category::Action: return "action";
        case Category::Environment: return "environment";
    }
    return "?";
}

int Schema::index_of(std::string_view name) const {
    for (std::size_t i = 0; i < attributes.size(); ++i) {
        if (attributes[i].name == name) return static_cast<int>(i);
    }
    return -1;
}

double Schema::request_space_size() const {
    double total = 1;
    for (const auto& a : attributes) total *= static_cast<double>(a.domain_size());
    return total;
}

std::string Request::to_string(const Schema& schema) const {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ' ';
        out += schema.attributes[i].name + "=" + values[i].to_string();
    }
    return out;
}

Request sample_request(const Schema& schema, util::Rng& rng) {
    Request r;
    r.values.reserve(schema.size());
    for (const auto& a : schema.attributes) {
        if (a.numeric) {
            r.values.push_back(AttributeValue::of(rng.uniform(a.min, a.max)));
        } else {
            r.values.push_back(AttributeValue::of(a.values[static_cast<std::size_t>(
                rng.uniform(0, static_cast<std::int64_t>(a.values.size()) - 1))]));
        }
    }
    return r;
}

std::vector<Request> enumerate_requests(const Schema& schema, std::size_t limit) {
    if (schema.request_space_size() > static_cast<double>(limit)) {
        throw std::runtime_error("request space too large to enumerate");
    }
    std::vector<Request> out;
    Request current;
    current.values.resize(schema.size());

    // Odometer over attribute domains.
    std::vector<std::size_t> counter(schema.size(), 0);
    while (true) {
        for (std::size_t i = 0; i < schema.size(); ++i) {
            const auto& a = schema.attributes[i];
            current.values[i] = a.numeric
                                    ? AttributeValue::of(a.min + static_cast<std::int64_t>(counter[i]))
                                    : AttributeValue::of(a.values[counter[i]]);
        }
        out.push_back(current);
        std::size_t pos = 0;
        while (pos < schema.size()) {
            if (++counter[pos] < schema.attributes[pos].domain_size()) break;
            counter[pos] = 0;
            ++pos;
        }
        if (pos == schema.size()) break;
    }
    return out;
}

}  // namespace agenp::xacml
