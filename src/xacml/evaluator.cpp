#include "xacml/evaluator.hpp"

namespace agenp::xacml {

Decision evaluate(const XacmlPolicy& policy, const Request& request) {
    if (!policy.target.applies(request)) return Decision::NotApplicable;

    bool saw_permit = false;
    bool saw_deny = false;
    for (const auto& rule : policy.rules) {
        if (!rule.target.applies(request)) continue;
        switch (policy.alg) {
            case CombiningAlg::FirstApplicable:
                return rule.effect == Effect::Permit ? Decision::Permit : Decision::Deny;
            case CombiningAlg::DenyOverrides:
                if (rule.effect == Effect::Deny) return Decision::Deny;
                saw_permit = true;
                break;
            case CombiningAlg::PermitOverrides:
                if (rule.effect == Effect::Permit) return Decision::Permit;
                saw_deny = true;
                break;
        }
    }
    if (saw_permit) return Decision::Permit;
    if (saw_deny) return Decision::Deny;
    return Decision::NotApplicable;
}

std::vector<LogEntry> evaluate_batch(const XacmlPolicy& policy, const std::vector<Request>& requests) {
    std::vector<LogEntry> log;
    log.reserve(requests.size());
    for (const auto& r : requests) log.push_back({r, evaluate(policy, r)});
    return log;
}

}  // namespace agenp::xacml
