#include "xacml/policy.hpp"

namespace agenp::xacml {

std::string effect_name(Effect e) { return e == Effect::Permit ? "Permit" : "Deny"; }

std::string decision_name(Decision d) {
    switch (d) {
        case Decision::Permit: return "Permit";
        case Decision::Deny: return "Deny";
        case Decision::NotApplicable: return "NotApplicable";
        case Decision::Indeterminate: return "Indeterminate";
    }
    return "?";
}

std::string combining_name(CombiningAlg a) {
    switch (a) {
        case CombiningAlg::DenyOverrides: return "deny-overrides";
        case CombiningAlg::PermitOverrides: return "permit-overrides";
        case CombiningAlg::FirstApplicable: return "first-applicable";
    }
    return "?";
}

namespace {

std::string op_text(Match::Op op) {
    switch (op) {
        case Match::Op::Eq: return "=";
        case Match::Op::Ne: return "!=";
        case Match::Op::Lt: return "<";
        case Match::Op::Le: return "<=";
        case Match::Op::Gt: return ">";
        case Match::Op::Ge: return ">=";
    }
    return "?";
}

}  // namespace

bool Match::matches(const Request& request) const {
    const AttributeValue& v = request.values[attribute];
    if (v.numeric != value.numeric) return false;
    if (v.numeric) {
        switch (op) {
            case Op::Eq: return v.number == value.number;
            case Op::Ne: return v.number != value.number;
            case Op::Lt: return v.number < value.number;
            case Op::Le: return v.number <= value.number;
            case Op::Gt: return v.number > value.number;
            case Op::Ge: return v.number >= value.number;
        }
        return false;
    }
    // Categorical attributes support only (in)equality.
    switch (op) {
        case Op::Eq: return v.text == value.text;
        case Op::Ne: return v.text != value.text;
        default: return false;
    }
}

std::string Match::to_string(const Schema& schema) const {
    return schema.attributes[attribute].name + op_text(op) + value.to_string();
}

bool Target::applies(const Request& request) const {
    for (const auto& m : all_of) {
        if (!m.matches(request)) return false;
    }
    return true;
}

std::string Target::to_string(const Schema& schema) const {
    if (all_of.empty()) return "any";
    std::string out;
    for (std::size_t i = 0; i < all_of.size(); ++i) {
        if (i > 0) out += " and ";
        out += all_of[i].to_string(schema);
    }
    return out;
}

std::string XacmlRule::to_string(const Schema& schema) const {
    return "rule " + id + ": " + effect_name(effect) + " if " + target.to_string(schema);
}

std::string XacmlPolicy::to_string(const Schema& schema) const {
    std::string out = "policy " + id + " (" + combining_name(alg) + ", target: " +
                      target.to_string(schema) + ")\n";
    for (const auto& r : rules) out += "  " + r.to_string(schema) + "\n";
    return out;
}

}  // namespace agenp::xacml
