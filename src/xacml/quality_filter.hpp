// Low-quality example filtering (Section IV.C): the paper's mitigation for
// noisy example datasets is to filter them in advance using formal
// definitions of "low quality" adapted from policy-quality work [14], [31].
//
// Implemented definitions:
//  - irrelevant response: NotApplicable/Indeterminate decisions (not proper
//    decisions of a specified policy);
//  - inconsistent responses: identical requests with conflicting
//    Permit/Deny decisions — resolved by majority vote, dropped on ties;
//  - redundancy: exact duplicate (request, decision) entries.
#pragma once

#include "xacml/evaluator.hpp"

namespace agenp::xacml {

struct FilterStats {
    std::size_t irrelevant_removed = 0;
    std::size_t inconsistent_removed = 0;
    std::size_t duplicates_removed = 0;

    [[nodiscard]] std::size_t total_removed() const {
        return irrelevant_removed + inconsistent_removed + duplicates_removed;
    }
};

std::vector<LogEntry> filter_low_quality(const std::vector<LogEntry>& log, const Schema& schema,
                                         FilterStats* stats = nullptr);

}  // namespace agenp::xacml
