#include "xacml/quality_filter.hpp"

#include <map>

namespace agenp::xacml {

std::vector<LogEntry> filter_low_quality(const std::vector<LogEntry>& log, const Schema& schema,
                                         FilterStats* stats) {
    FilterStats local;

    // Group by rendered request; count Permit/Deny votes.
    struct Votes {
        std::size_t permit = 0;
        std::size_t deny = 0;
        const LogEntry* first = nullptr;
    };
    std::map<std::string, Votes> groups;
    for (const auto& entry : log) {
        if (entry.decision != Decision::Permit && entry.decision != Decision::Deny) {
            ++local.irrelevant_removed;
            continue;
        }
        auto key = entry.request.to_string(schema);
        auto& v = groups[key];
        if (!v.first) v.first = &entry;
        (entry.decision == Decision::Permit ? v.permit : v.deny) += 1;
    }

    std::vector<LogEntry> out;
    for (const auto& [key, v] : groups) {
        (void)key;
        std::size_t total = v.permit + v.deny;
        if (v.permit == v.deny) {
            // Tie between conflicting responses: unrecoverable, drop all.
            local.inconsistent_removed += total;
            continue;
        }
        bool permit = v.permit > v.deny;
        std::size_t majority = permit ? v.permit : v.deny;
        local.inconsistent_removed += total - majority;  // losing votes
        local.duplicates_removed += majority - 1;        // copies beyond the kept one
        out.push_back({v.first->request, permit ? Decision::Permit : Decision::Deny});
    }

    if (stats) *stats = local;
    return out;
}

}  // namespace agenp::xacml
