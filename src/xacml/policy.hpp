// Miniature XACML policies: targets, rules, combining algorithms.
#pragma once

#include "xacml/attributes.hpp"

namespace agenp::xacml {

enum class Effect { Permit, Deny };
enum class Decision { Permit, Deny, NotApplicable, Indeterminate };

std::string effect_name(Effect e);
std::string decision_name(Decision d);

struct Match {
    std::size_t attribute = 0;  // index into the schema
    enum class Op { Eq, Ne, Lt, Le, Gt, Ge } op = Op::Eq;
    AttributeValue value;

    [[nodiscard]] bool matches(const Request& request) const;
    [[nodiscard]] std::string to_string(const Schema& schema) const;
};

// Conjunctive target; empty = applies to everything.
struct Target {
    std::vector<Match> all_of;

    [[nodiscard]] bool applies(const Request& request) const;
    [[nodiscard]] std::string to_string(const Schema& schema) const;
};

struct XacmlRule {
    std::string id;
    Target target;
    Effect effect = Effect::Permit;

    [[nodiscard]] std::string to_string(const Schema& schema) const;
};

enum class CombiningAlg { DenyOverrides, PermitOverrides, FirstApplicable };

std::string combining_name(CombiningAlg a);

struct XacmlPolicy {
    std::string id;
    Target target;
    std::vector<XacmlRule> rules;
    CombiningAlg alg = CombiningAlg::FirstApplicable;

    [[nodiscard]] std::string to_string(const Schema& schema) const;
};

}  // namespace agenp::xacml
