// Synthetic XACML workload generator.
//
// Substitutes for the AT&T conformance dataset the paper used (DESIGN.md
// section 2): ground-truth policies drawn from structured families plus
// request samplers produce the same kind of request/decision logs, including
// the failure-mode variants of Fig 3b (sparse logs, underspecified targets,
// NotApplicable noise).
#pragma once

#include "xacml/evaluator.hpp"

namespace agenp::xacml {

// A small healthcare-flavoured schema (role/department/action/resource/
// hour) whose request space is fully enumerable, so learned policies can be
// checked for semantic equivalence exactly.
Schema healthcare_schema();

// A coalition data-sharing schema (partner/trust/kind/quality).
Schema coalition_schema();

struct PolicyFamilyOptions {
    int deny_rules = 3;            // number of deny rules
    int matches_per_rule = 2;      // conjuncts per deny target
    bool catch_all_permit = true;  // false leaves a NotApplicable region
    std::uint64_t seed = 1;
};

// "Default permit + k conjunctive deny rules" (deny-overrides). The permit
// set's complement is a union of boxes, which is exactly the shape a
// constraint-only ASG hypothesis expresses — the Fig 3a setting.
XacmlPolicy default_permit_family(const Schema& schema, const PolicyFamilyOptions& options);

// First-applicable with interleaved permit/deny rules; harder shapes.
XacmlPolicy first_applicable_family(const Schema& schema, const PolicyFamilyOptions& options);

std::vector<Request> sample_requests(const Schema& schema, std::size_t n, util::Rng& rng);

struct NoiseOptions {
    double flip_prob = 0.0;            // Permit<->Deny flips
    double not_applicable_prob = 0.0;  // decision replaced by NotApplicable
    std::uint64_t seed = 7;
};

void inject_noise(std::vector<LogEntry>& log, const NoiseOptions& options);

}  // namespace agenp::xacml
