// Textual (de)serialization for mini-XACML policies, schemas and requests.
//
// A real deployment exchanges policies as documents; this compact format is
// the library's stand-in for XACML/XML so policies can live in files, move
// between AMSs, and be fed to the CLI. Round-trips with the evaluator's
// structures.
//
//   schema healthcare
//     attr role subject categorical doctor nurse admin guest
//     attr hour environment numeric 0 5
//
//   policy default-permit deny-overrides
//     target any
//     rule deny0 deny role=guest resource=record
//     rule deny1 deny action=delete hour<2
//     rule permit-all permit any
//
//   request role=doctor dept=er action=read resource=record hour=3
#pragma once

#include <stdexcept>

#include "xacml/policy.hpp"

namespace agenp::xacml {

struct FormatError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

std::string schema_to_text(const Schema& schema, const std::string& name = "schema");
Schema parse_schema(std::string_view text);

// Policies need the schema to resolve attribute names.
std::string policy_to_text(const XacmlPolicy& policy, const Schema& schema);
XacmlPolicy parse_policy(std::string_view text, const Schema& schema);

std::string request_to_text(const Request& request, const Schema& schema);
Request parse_request(std::string_view text, const Schema& schema);

}  // namespace agenp::xacml
