// The XACML PDP: evaluates requests against a policy under its combining
// algorithm.
#pragma once

#include "xacml/policy.hpp"

namespace agenp::xacml {

// Single-policy evaluation. NotApplicable when the policy target or every
// rule target misses.
Decision evaluate(const XacmlPolicy& policy, const Request& request);

// Decision log entry: the unit of the learning dataset ("logs of past
// decisions", Section IV.C).
struct LogEntry {
    Request request;
    Decision decision = Decision::NotApplicable;
};

// Evaluates a batch of requests.
std::vector<LogEntry> evaluate_batch(const XacmlPolicy& policy, const std::vector<Request>& requests);

}  // namespace agenp::xacml
