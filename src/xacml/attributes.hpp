// Miniature XACML attribute model (Section IV.C).
//
// Requests carry attribute values across the four XACML categories; a
// Schema fixes the attribute universe so synthetic policy/request
// generators, the ASG learning bridge, and the explainability search all
// agree on the space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace agenp::xacml {

enum class Category { Subject, Resource, Action, Environment };

std::string category_name(Category c);

struct AttributeValue {
    bool numeric = false;
    std::int64_t number = 0;
    std::string text;

    static AttributeValue of(std::int64_t n) { return {true, n, {}}; }
    static AttributeValue of(std::string s) { return {false, 0, std::move(s)}; }

    [[nodiscard]] std::string to_string() const { return numeric ? std::to_string(number) : text; }

    friend bool operator==(const AttributeValue& a, const AttributeValue& b) {
        if (a.numeric != b.numeric) return false;
        return a.numeric ? a.number == b.number : a.text == b.text;
    }
};

struct AttributeDef {
    std::string name;
    Category category = Category::Subject;
    bool numeric = false;
    std::vector<std::string> values;  // categorical domain
    std::int64_t min = 0, max = 0;    // numeric domain (inclusive)

    static AttributeDef categorical(std::string n, Category c, std::vector<std::string> vals) {
        AttributeDef d;
        d.name = std::move(n);
        d.category = c;
        d.values = std::move(vals);
        return d;
    }
    static AttributeDef numeric_range(std::string n, Category c, std::int64_t lo, std::int64_t hi) {
        AttributeDef d;
        d.name = std::move(n);
        d.category = c;
        d.numeric = true;
        d.min = lo;
        d.max = hi;
        return d;
    }

    // Number of distinct values in the domain.
    [[nodiscard]] std::size_t domain_size() const {
        return numeric ? static_cast<std::size_t>(max - min + 1) : values.size();
    }
};

struct Schema {
    std::vector<AttributeDef> attributes;

    [[nodiscard]] std::size_t size() const { return attributes.size(); }
    [[nodiscard]] int index_of(std::string_view name) const;

    // Total number of distinct requests.
    [[nodiscard]] double request_space_size() const;
};

// A request: one value per schema attribute (parallel vectors).
struct Request {
    std::vector<AttributeValue> values;

    [[nodiscard]] std::string to_string(const Schema& schema) const;
};

// Uniform random request.
Request sample_request(const Schema& schema, util::Rng& rng);

// Enumerates the full request space (use only when request_space_size() is
// small; throws std::runtime_error beyond `limit`).
std::vector<Request> enumerate_requests(const Schema& schema, std::size_t limit = 200000);

}  // namespace agenp::xacml
