#include "asp/program.hpp"

namespace agenp::asp {

bool Program::is_ground() const {
    for (const auto& r : rules_) {
        if (!r.is_ground()) return false;
    }
    return true;
}

std::string Program::to_string() const {
    std::string out;
    for (const auto& r : rules_) {
        out += r.to_string();
        out += '\n';
    }
    return out;
}

}  // namespace agenp::asp
