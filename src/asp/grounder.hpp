// Semi-naive bottom-up grounder.
//
// Instantiates a safe non-ground program over its Herbrand base, producing a
// GroundProgram for the solver. Negative literals whose atom can never be
// derived are simplified away; constraints are instantiated alongside
// deriving rules.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "asp/ground_program.hpp"
#include "asp/program.hpp"

namespace agenp::asp {

struct GroundingError : std::runtime_error {
    using std::runtime_error::runtime_error;

    GroundingError(const std::string& what, std::vector<analysis::Diagnostic> diags)
        : std::runtime_error(what), diagnostics(std::move(diags)) {}

    // Structured findings behind the message: unsafe rules carry one ASP001
    // diagnostic per offending variable, with the rule index and text, so
    // callers can report rule + variable + location instead of a blind
    // string.
    std::vector<analysis::Diagnostic> diagnostics;
};

struct GroundingLimits {
    // Hard caps guarding against accidental grounding explosion; exceeded
    // limits raise GroundingError rather than exhausting memory.
    std::size_t max_atoms = 200000;
    std::size_t max_rules = 1000000;
};

// Grounds `program`. Throws GroundingError on unsafe rules or blown limits.
GroundProgram ground(const Program& program, const GroundingLimits& limits = {});

}  // namespace agenp::asp
