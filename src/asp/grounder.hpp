// Semi-naive bottom-up grounder.
//
// Instantiates a safe non-ground program over its Herbrand base, producing a
// GroundProgram for the solver. Negative literals whose atom can never be
// derived are simplified away; constraints are instantiated alongside
// deriving rules.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "asp/ground_program.hpp"
#include "asp/program.hpp"

namespace agenp::asp {

struct GroundingError : std::runtime_error {
    using std::runtime_error::runtime_error;

    GroundingError(const std::string& what, std::vector<analysis::Diagnostic> diags)
        : std::runtime_error(what), diagnostics(std::move(diags)) {}

    // Structured findings behind the message: unsafe rules carry one ASP001
    // diagnostic per offending variable, with the rule index and text, so
    // callers can report rule + variable + location instead of a blind
    // string.
    std::vector<analysis::Diagnostic> diagnostics;
};

struct GroundingLimits {
    // Hard caps guarding against accidental grounding explosion; exceeded
    // limits raise GroundingError rather than exhausting memory.
    std::size_t max_atoms = 200000;
    std::size_t max_rules = 1000000;
};

// Grounds `program`. Throws GroundingError on unsafe rules or blown limits.
GroundProgram ground(const Program& program, const GroundingLimits& limits = {});

// A ground rule still in atom (not interned-id) form. The grounding memo
// stores fragments this way so their atoms can be relocated into a new
// namespace before interning into a solver program.
struct AtomRule {
    std::optional<Atom> head;
    std::vector<Atom> pos;
    std::vector<Atom> neg;

    friend bool operator==(const AtomRule& a, const AtomRule& b) {
        return a.head == b.head && a.pos == b.pos && a.neg == b.neg;
    }
};

struct SeededGrounding {
    // Deduplicated rule instances produced by `program` (the seeds are NOT
    // re-emitted — the caller already owns whatever derives them). Negative
    // literals whose atom is underivable (given program + seeds) are
    // already simplified away.
    std::vector<AtomRule> rules;
    // Heads derived beyond the seeds, in derivation order.
    std::vector<Atom> new_atoms;
};

// Grounds `program` against a set of externally derived ground atoms: the
// seeds participate in positive-body matching and count as derivable for
// negative-literal simplification, but are not emitted as rules. This is
// the compositional entry point used by the asg grounding memo, where the
// seeds are the relocated derived atoms of already-grounded child
// fragments. Throws like `ground`.
SeededGrounding ground_seeded(const Program& program, const std::vector<Atom>& seeds,
                              const GroundingLimits& limits = {});

}  // namespace agenp::asp
