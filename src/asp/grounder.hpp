// Semi-naive bottom-up grounder.
//
// Instantiates a safe non-ground program over its Herbrand base, producing a
// GroundProgram for the solver. Negative literals whose atom can never be
// derived are simplified away; constraints are instantiated alongside
// deriving rules.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "asp/ground_program.hpp"
#include "asp/program.hpp"

namespace agenp::asp {

struct GroundingError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct GroundingLimits {
    // Hard caps guarding against accidental grounding explosion; exceeded
    // limits raise GroundingError rather than exhausting memory.
    std::size_t max_atoms = 200000;
    std::size_t max_rules = 1000000;
};

// Grounds `program`. Throws GroundingError on unsafe rules or blown limits.
GroundProgram ground(const Program& program, const GroundingLimits& limits = {});

}  // namespace agenp::asp
