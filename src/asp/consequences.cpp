#include "asp/consequences.hpp"

#include <algorithm>

namespace agenp::asp {

Consequences compute_consequences(const GroundProgram& program, const ConsequenceOptions& options) {
    Consequences out;
    SolveOptions solve_options;
    solve_options.max_models = options.max_models;
    solve_options.max_decisions = options.max_decisions;
    auto result = solve(program, solve_options);
    if (result.models.empty()) {
        out.exact = !result.exhausted;
        return out;
    }
    out.satisfiable = true;
    // Models arrive sorted (extract_model walks atom ids in order).
    std::vector<AtomId> brave = result.models[0];
    std::vector<AtomId> cautious = result.models[0];
    for (std::size_t i = 1; i < result.models.size(); ++i) {
        const auto& m = result.models[i];
        std::vector<AtomId> u, inter;
        std::set_union(brave.begin(), brave.end(), m.begin(), m.end(), std::back_inserter(u));
        std::set_intersection(cautious.begin(), cautious.end(), m.begin(), m.end(),
                              std::back_inserter(inter));
        brave = std::move(u);
        cautious = std::move(inter);
    }
    out.brave = std::move(brave);
    out.cautious = std::move(cautious);
    out.exact = !result.exhausted &&
                (options.max_models == 0 || result.models.size() < options.max_models);
    return out;
}

bool bravely_holds(const GroundProgram& program, const Atom& atom,
                   const ConsequenceOptions& options) {
    AtomId id = program.find(atom);
    if (id == kNoHead) return false;
    auto c = compute_consequences(program, options);
    return std::binary_search(c.brave.begin(), c.brave.end(), id);
}

bool cautiously_holds(const GroundProgram& program, const Atom& atom,
                      const ConsequenceOptions& options) {
    AtomId id = program.find(atom);
    auto c = compute_consequences(program, options);
    if (!c.satisfiable) return false;
    if (id == kNoHead) return false;
    return std::binary_search(c.cautious.begin(), c.cautious.end(), id);
}

}  // namespace agenp::asp
