// Normal rules and constraints (the ASP fragment of Section II.A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asp/atom.hpp"

namespace agenp::asp {

// `h :- b1, ..., bn, not c1, ..., not cm, t1 ⊙ t2, ...`
// A missing head makes the rule a constraint.
struct Rule {
    std::optional<Atom> head;
    std::vector<Literal> body;
    std::vector<Comparison> builtins;

    Rule() = default;

    static Rule fact(Atom h) {
        Rule r;
        r.head = std::move(h);
        return r;
    }
    static Rule normal(Atom h, std::vector<Literal> b, std::vector<Comparison> c = {}) {
        Rule r;
        r.head = std::move(h);
        r.body = std::move(b);
        r.builtins = std::move(c);
        return r;
    }
    static Rule constraint(std::vector<Literal> b, std::vector<Comparison> c = {}) {
        Rule r;
        r.body = std::move(b);
        r.builtins = std::move(c);
        return r;
    }

    [[nodiscard]] bool is_constraint() const { return !head.has_value(); }
    [[nodiscard]] bool is_fact() const { return head.has_value() && body.empty() && builtins.empty(); }

    [[nodiscard]] bool is_ground() const;
    void collect_variables(std::vector<Symbol>& out) const;

    // A rule is safe when every variable occurring in the head, in a negative
    // literal, or in a builtin appears in some positive body literal (a
    // variable bound by `V = ground-expr` also counts as safe).
    [[nodiscard]] bool is_safe() const;

    // The variables violating safety, deduplicated in order of first
    // occurrence; empty iff is_safe(). Feeds the ASP001 diagnostics of the
    // grounder and the static analyzer.
    [[nodiscard]] std::vector<Symbol> unsafe_variables() const;

    // Number of literals counting the head; used as the hypothesis cost in
    // the ILP learner.
    [[nodiscard]] int size() const {
        return static_cast<int>(body.size() + builtins.size()) + (head ? 1 : 0);
    }

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Rule& a, const Rule& b) {
        return a.head == b.head && a.body == b.body && a.builtins == b.builtins;
    }

    // Structural hash (head, body literals in order, builtins in order);
    // feeds the grounding memo's context fingerprint.
    [[nodiscard]] std::size_t hash() const;
};

}  // namespace agenp::asp
