#include "asp/stratify.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace agenp::asp {
namespace {

// Key: (predicate symbol, annotation). Distinct annotations are distinct
// predicates for dependency purposes, matching the solver's view.
using PredKey = std::pair<Symbol, int>;

struct Graph {
    std::set<PredKey> nodes;
    // edge -> is_negative (an edge is negative if ANY dependency between the
    // pair is through negation)
    std::map<std::pair<PredKey, PredKey>, bool> edges;
};

Graph build_graph(const Program& program) {
    Graph g;
    for (const auto& rule : program.rules()) {
        if (!rule.head) continue;  // constraints never derive; they cannot create recursion
        PredKey head{rule.head->predicate, rule.head->annotation};
        g.nodes.insert(head);
        for (const auto& lit : rule.body) {
            PredKey dep{lit.atom.predicate, lit.atom.annotation};
            g.nodes.insert(dep);
            auto key = std::make_pair(dep, head);  // head depends on dep
            auto [it, inserted] = g.edges.emplace(key, !lit.positive);
            if (!inserted && !lit.positive) it->second = true;
        }
    }
    return g;
}

}  // namespace

int StratificationInfo::stratum_of(Symbol predicate) const {
    for (const auto& [sym, s] : strata) {
        if (sym == predicate) return s;
    }
    return -1;
}

StratificationInfo analyze_stratification(const Program& program) {
    Graph g = build_graph(program);
    StratificationInfo info;

    // Bellman-Ford-style stratum assignment: stratum(head) >= stratum(dep),
    // strictly greater across negation. The program is stratified iff the
    // constraints stabilize; a negative cycle forces unbounded growth, which
    // surfaces as more than |nodes|+1 sweeps.
    std::map<PredKey, int> stratum;
    for (const auto& n : g.nodes) stratum[n] = 0;
    std::size_t n = g.nodes.size();
    bool changed = true;
    std::size_t iterations = 0;
    while (changed) {
        changed = false;
        std::set<PredKey> bumped;
        bool overran = ++iterations > n + 1;
        for (const auto& [edge, negative] : g.edges) {
            const auto& [dep, head] = edge;
            int need = stratum[dep] + (negative ? 1 : 0);
            if (stratum[head] < need) {
                stratum[head] = need;
                bumped.insert(head);
                changed = true;
            }
        }
        if (overran) {
            // Any node still climbing after |nodes|+1 sweeps sits on a
            // negation cycle or downstream of one.
            info.stratified = false;
            std::set<Symbol> cycle;  // by-name dedup, sorted by symbol
            for (const auto& key : bumped) cycle.insert(key.first);
            info.negative_cycle.assign(cycle.begin(), cycle.end());
            std::sort(info.negative_cycle.begin(), info.negative_cycle.end(),
                      [](Symbol a, Symbol b) { return a.str() < b.str(); });
            return info;
        }
    }
    info.stratified = true;
    for (const auto& [key, s] : stratum) info.strata.emplace_back(key.first, s);
    return info;
}

bool is_stratified(const Program& program) { return analyze_stratification(program).stratified; }

}  // namespace agenp::asp
