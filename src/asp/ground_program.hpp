// Ground (variable-free) programs in the solver's integer representation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/atom.hpp"

namespace agenp::asp {

using AtomId = std::int32_t;
inline constexpr AtomId kNoHead = -1;  // marks a constraint

struct GroundRule {
    AtomId head = kNoHead;
    std::vector<AtomId> pos;  // positive body atoms
    std::vector<AtomId> neg;  // negated body atoms

    [[nodiscard]] bool is_constraint() const { return head == kNoHead; }
};

// Interned ground atoms + rules over their ids. Ground rules are deduped on
// insertion.
class GroundProgram {
public:
    // Interns `atom` (must be ground) and returns its id.
    AtomId intern(const Atom& atom);

    // Returns the id of `atom` or kNoHead when never interned.
    [[nodiscard]] AtomId find(const Atom& atom) const;

    // Adds a rule; pos/neg are normalized (sorted, deduped) and structurally
    // identical rules are dropped.
    void add_rule(GroundRule rule);

    [[nodiscard]] const Atom& atom(AtomId id) const { return atoms_[static_cast<std::size_t>(id)]; }
    [[nodiscard]] std::size_t atom_count() const { return atoms_.size(); }
    [[nodiscard]] const std::vector<GroundRule>& rules() const { return rules_; }

    [[nodiscard]] std::string to_string() const;

private:
    std::vector<Atom> atoms_;
    std::unordered_map<Atom, AtomId> index_;
    std::vector<GroundRule> rules_;
    // Order-insensitive dedupe: hash over (head, sorted pos, sorted neg)
    // to candidate rule slots, compared structurally on collision. Avoids
    // materializing a key string per rule (the old scheme's main malloc
    // churn on the miss path).
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> rule_index_;
};

}  // namespace agenp::asp
