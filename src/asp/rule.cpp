#include "asp/rule.hpp"

#include <algorithm>

namespace agenp::asp {

bool Rule::is_ground() const {
    if (head && !head->is_ground()) return false;
    for (const auto& l : body) {
        if (!l.atom.is_ground()) return false;
    }
    for (const auto& c : builtins) {
        if (!c.lhs.is_ground() || !c.rhs.is_ground()) return false;
    }
    return true;
}

void Rule::collect_variables(std::vector<Symbol>& out) const {
    if (head) head->collect_variables(out);
    for (const auto& l : body) l.atom.collect_variables(out);
    for (const auto& c : builtins) {
        c.lhs.collect_variables(out);
        c.rhs.collect_variables(out);
    }
}

namespace {

// Variables bound by a positive body literal or a `V = ground-expr` binder.
std::vector<Symbol> bound_variables(const Rule& rule) {
    std::vector<Symbol> bound;
    for (const auto& l : rule.body) {
        if (l.positive) l.atom.collect_variables(bound);
    }
    // `V = expr` binds V when every variable of expr is already bound by a
    // positive literal. Chained binders are resolved by iterating to a
    // fixpoint.
    auto is_bound = [&](Symbol v) { return std::find(bound.begin(), bound.end(), v) != bound.end(); };
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& c : rule.builtins) {
            if (c.op != Comparison::Op::Eq) continue;
            if (c.lhs.is_variable() && !is_bound(c.lhs.symbol())) {
                std::vector<Symbol> rhs_vars;
                c.rhs.collect_variables(rhs_vars);
                if (std::all_of(rhs_vars.begin(), rhs_vars.end(), is_bound)) {
                    bound.push_back(c.lhs.symbol());
                    changed = true;
                }
            }
        }
    }
    return bound;
}

// Variables that must be bound for the rule to be safe: head variables,
// negative-literal variables, and builtin variables.
std::vector<Symbol> needed_variables(const Rule& rule) {
    std::vector<Symbol> need;
    if (rule.head) rule.head->collect_variables(need);
    for (const auto& l : rule.body) {
        if (!l.positive) l.atom.collect_variables(need);
    }
    for (const auto& c : rule.builtins) {
        c.lhs.collect_variables(need);
        c.rhs.collect_variables(need);
    }
    return need;
}

}  // namespace

bool Rule::is_safe() const {
    auto bound = bound_variables(*this);
    auto need = needed_variables(*this);
    return std::all_of(need.begin(), need.end(), [&](Symbol v) {
        return std::find(bound.begin(), bound.end(), v) != bound.end();
    });
}

std::vector<Symbol> Rule::unsafe_variables() const {
    auto bound = bound_variables(*this);
    std::vector<Symbol> out;
    for (Symbol v : needed_variables(*this)) {
        if (std::find(bound.begin(), bound.end(), v) != bound.end()) continue;
        if (std::find(out.begin(), out.end(), v) != out.end()) continue;
        out.push_back(v);
    }
    return out;
}

std::size_t Rule::hash() const {
    auto mix = [](std::size_t h, std::size_t v) {
        return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    };
    std::size_t h = head ? mix(0x517cc1b727220a95ull, head->hash()) : 0x2545f4914f6cdd1dull;
    for (const auto& l : body) {
        h = mix(h, l.atom.hash());
        h = mix(h, l.positive ? 1u : 2u);
    }
    for (const auto& c : builtins) h = mix(h, c.hash());
    return h;
}

std::string Rule::to_string() const {
    std::string out;
    if (head) out += head->to_string();
    if (!body.empty() || !builtins.empty()) {
        out += head ? " :- " : ":- ";
        bool first = true;
        for (const auto& l : body) {
            if (!first) out += ", ";
            out += l.to_string();
            first = false;
        }
        for (const auto& c : builtins) {
            if (!first) out += ", ";
            out += c.to_string();
            first = false;
        }
    }
    out += '.';
    return out;
}

}  // namespace agenp::asp
