#include "asp/rule.hpp"

#include <algorithm>

namespace agenp::asp {

bool Rule::is_ground() const {
    if (head && !head->is_ground()) return false;
    for (const auto& l : body) {
        if (!l.atom.is_ground()) return false;
    }
    for (const auto& c : builtins) {
        if (!c.lhs.is_ground() || !c.rhs.is_ground()) return false;
    }
    return true;
}

void Rule::collect_variables(std::vector<Symbol>& out) const {
    if (head) head->collect_variables(out);
    for (const auto& l : body) l.atom.collect_variables(out);
    for (const auto& c : builtins) {
        c.lhs.collect_variables(out);
        c.rhs.collect_variables(out);
    }
}

bool Rule::is_safe() const {
    std::vector<Symbol> bound;
    for (const auto& l : body) {
        if (l.positive) l.atom.collect_variables(bound);
    }
    // `V = expr` binds V when every variable of expr is already bound by a
    // positive literal. One pass suffices for the common "V = constant" and
    // "V = F(bound...)" binders; chained binders are re-checked below.
    auto is_bound = [&](Symbol v) { return std::find(bound.begin(), bound.end(), v) != bound.end(); };
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& c : builtins) {
            if (c.op != Comparison::Op::Eq) continue;
            if (c.lhs.is_variable() && !is_bound(c.lhs.symbol())) {
                std::vector<Symbol> rhs_vars;
                c.rhs.collect_variables(rhs_vars);
                if (std::all_of(rhs_vars.begin(), rhs_vars.end(), is_bound)) {
                    bound.push_back(c.lhs.symbol());
                    changed = true;
                }
            }
        }
    }

    std::vector<Symbol> need;
    if (head) head->collect_variables(need);
    for (const auto& l : body) {
        if (!l.positive) l.atom.collect_variables(need);
    }
    for (const auto& c : builtins) {
        c.lhs.collect_variables(need);
        c.rhs.collect_variables(need);
    }
    return std::all_of(need.begin(), need.end(), is_bound);
}

std::string Rule::to_string() const {
    std::string out;
    if (head) out += head->to_string();
    if (!body.empty() || !builtins.empty()) {
        out += head ? " :- " : ":- ";
        bool first = true;
        for (const auto& l : body) {
            if (!first) out += ", ";
            out += l.to_string();
            first = false;
        }
        for (const auto& c : builtins) {
            if (!first) out += ", ";
            out += c.to_string();
            first = false;
        }
    }
    out += '.';
    return out;
}

}  // namespace agenp::asp
