// An ASP program: an ordered collection of normal rules and constraints.
#pragma once

#include <string>
#include <vector>

#include "asp/rule.hpp"

namespace agenp::asp {

class Program {
public:
    Program() = default;
    explicit Program(std::vector<Rule> rules) : rules_(std::move(rules)) {}

    void add(Rule rule) { rules_.push_back(std::move(rule)); }
    void add_fact(Atom atom) { rules_.push_back(Rule::fact(std::move(atom))); }
    void append(const Program& other) {
        rules_.insert(rules_.end(), other.rules_.begin(), other.rules_.end());
    }

    [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
    [[nodiscard]] std::vector<Rule>& rules() { return rules_; }
    [[nodiscard]] bool empty() const { return rules_.empty(); }
    [[nodiscard]] std::size_t size() const { return rules_.size(); }

    [[nodiscard]] bool is_ground() const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Program& a, const Program& b) { return a.rules_ == b.rules_; }

private:
    std::vector<Rule> rules_;
};

}  // namespace agenp::asp
