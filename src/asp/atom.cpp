#include "asp/atom.hpp"

namespace agenp::asp {

bool Atom::is_ground() const {
    for (const auto& t : args) {
        if (!t.is_ground()) return false;
    }
    return true;
}

void Atom::collect_variables(std::vector<Symbol>& out) const {
    for (const auto& t : args) t.collect_variables(out);
}

std::string Atom::to_string() const {
    std::string out(predicate.str());
    if (!args.empty()) {
        out += '(';
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (i > 0) out += ',';
            out += args[i].to_string();
        }
        out += ')';
    }
    if (annotation != kUnannotated) {
        out += '@';
        out += std::to_string(annotation);
    }
    return out;
}

bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate) return a.predicate.str() < b.predicate.str();
    if (a.annotation != b.annotation) return a.annotation < b.annotation;
    return a.args < b.args;
}

std::size_t Atom::hash() const {
    std::size_t h = std::hash<Symbol>{}(predicate) ^ (static_cast<std::size_t>(annotation) << 1);
    for (const auto& t : args) h ^= t.hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
}

std::string Literal::to_string() const {
    return positive ? atom.to_string() : "not " + atom.to_string();
}

std::size_t Comparison::hash() const {
    std::size_t h = static_cast<std::size_t>(op) * 0x9e3779b97f4a7c15ull;
    h ^= lhs.hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    h ^= rhs.hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
}

std::string Comparison::op_to_string(Op op) {
    switch (op) {
        case Op::Eq: return "=";
        case Op::Ne: return "!=";
        case Op::Lt: return "<";
        case Op::Le: return "<=";
        case Op::Gt: return ">";
        case Op::Ge: return ">=";
    }
    return "?";
}

std::string Comparison::to_string() const {
    return lhs.to_string() + " " + op_to_string(op) + " " + rhs.to_string();
}

namespace {

bool is_arith_functor(Symbol s) {
    auto v = s.str();
    return v == "+" || v == "-" || v == "*" || v == "/";
}

}  // namespace

std::optional<Term> evaluate_arithmetic(const Term& term) {
    if (!term.is_ground()) return std::nullopt;
    if (!term.is_compound() || !is_arith_functor(term.symbol())) return term;
    if (term.args().size() != 2) return std::nullopt;
    auto lhs = evaluate_arithmetic(term.args()[0]);
    auto rhs = evaluate_arithmetic(term.args()[1]);
    if (!lhs || !rhs || !lhs->is_integer() || !rhs->is_integer()) return std::nullopt;
    std::int64_t a = lhs->int_value();
    std::int64_t b = rhs->int_value();
    auto op = term.symbol().str();
    if (op == "+") return Term::integer(a + b);
    if (op == "-") return Term::integer(a - b);
    if (op == "*") return Term::integer(a * b);
    if (b == 0) return std::nullopt;
    return Term::integer(a / b);
}

std::optional<bool> Comparison::evaluate() const {
    auto l = evaluate_arithmetic(lhs);
    auto r = evaluate_arithmetic(rhs);
    if (!l || !r) return std::nullopt;
    if (l->is_integer() && r->is_integer()) {
        std::int64_t a = l->int_value();
        std::int64_t b = r->int_value();
        switch (op) {
            case Op::Eq: return a == b;
            case Op::Ne: return a != b;
            case Op::Lt: return a < b;
            case Op::Le: return a <= b;
            case Op::Gt: return a > b;
            case Op::Ge: return a >= b;
        }
    }
    switch (op) {
        case Op::Eq: return *l == *r;
        case Op::Ne: return *l != *r;
        case Op::Lt: return *l < *r;
        case Op::Le: return *l < *r || *l == *r;
        case Op::Gt: return *r < *l;
        case Op::Ge: return *r < *l || *l == *r;
    }
    return std::nullopt;
}

}  // namespace agenp::asp
