// Predicate-level dependency analysis.
//
// A program is stratified when no cycle in its predicate dependency graph
// passes through negation; stratified programs have exactly one answer set,
// which lets the ILP learner treat per-parse-tree programs as deterministic
// and use its set-cover fast path.
#pragma once

#include <vector>

#include "asp/program.hpp"

namespace agenp::asp {

struct StratificationInfo {
    bool stratified = false;
    // Stratum per predicate symbol id (only meaningful when stratified).
    // Predicates not mentioned get stratum 0.
    std::vector<std::pair<Symbol, int>> strata;
};

StratificationInfo analyze_stratification(const Program& program);

// Convenience: true iff `program` is stratified.
bool is_stratified(const Program& program);

}  // namespace agenp::asp
