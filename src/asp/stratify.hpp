// Predicate-level dependency analysis.
//
// A program is stratified when no cycle in its predicate dependency graph
// passes through negation; stratified programs have exactly one answer set,
// which lets the ILP learner treat per-parse-tree programs as deterministic
// and use its set-cover fast path.
#pragma once

#include <vector>

#include "asp/program.hpp"

namespace agenp::asp {

struct StratificationInfo {
    bool stratified = false;
    // Stratum per predicate symbol id (only meaningful when stratified).
    // Predicates not mentioned get stratum 0.
    std::vector<std::pair<Symbol, int>> strata;
    // When !stratified: predicates whose stratum failed to stabilize —
    // those on a negation cycle plus everything downstream of one.
    // Deduplicated, ordered by predicate name for reporting stability.
    std::vector<Symbol> negative_cycle;

    // Stratum of `predicate`, or -1 when the predicate does not occur in
    // the analyzed program. Lookup is by symbol, so results are identical
    // however the intern table assigned ids.
    [[nodiscard]] int stratum_of(Symbol predicate) const;
};

StratificationInfo analyze_stratification(const Program& program);

// Convenience: true iff `program` is stratified.
bool is_stratified(const Program& program);

}  // namespace agenp::asp
