#include "asp/solver.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::asp {
namespace {

enum class Val : std::int8_t { Unknown, True, False };

// Accumulated locally during the search (plain size_t, no atomics on the
// hot path) and flushed once per solve() call.
void publish_stats(const SolverStats& s) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    static obs::Counter& solves = m.counter("asp.solver.solves");
    static obs::Counter& decisions = m.counter("asp.solver.decisions");
    static obs::Counter& conflicts = m.counter("asp.solver.conflicts");
    static obs::Counter& propagations = m.counter("asp.solver.propagations");
    static obs::Counter& backtracks = m.counter("asp.solver.backtracks");
    static obs::Counter& stability = m.counter("asp.solver.stability_checks");
    static obs::Counter& models = m.counter("asp.solver.models");
    solves.add(1);
    decisions.add(s.decisions);
    conflicts.add(s.conflicts);
    propagations.add(s.propagations);
    backtracks.add(s.backtracks);
    stability.add(s.stability_checks);
    models.add(s.models);
}

class SolverImpl {
public:
    explicit SolverImpl(const GroundProgram& gp) : gp_(gp) { build(); }

    SolveResult run(const SolveOptions& options) {
        obs::ScopedSpan span("asp.solve", "asp");
        static obs::Histogram& time_hist = obs::metrics().histogram("asp.solver.time_us");
        obs::ScopedTimer timer(time_hist);
        SolveResult result = search(options);
        result.stats = stats_;
        result.stats.models = result.models.size();
        publish_stats(result.stats);
        return result;
    }

private:
    SolveResult search(const SolveOptions& options) {
        SolveResult result;
        if (!initial_propagate()) return result;  // conflict at root: unsatisfiable

        // Chronological DFS over atom assignments. Propagation prunes; the
        // stability check filters supported-but-unfounded assignments.
        struct Decision {
            std::size_t trail_mark;
            AtomId atom;
            bool tried_true;
        };
        std::vector<Decision> decisions;

        while (true) {
            if (conflict_) {
                ++stats_.conflicts;
                // Backtrack to the deepest decision with an untried branch.
                while (!decisions.empty() && decisions.back().tried_true) {
                    undo_to(decisions.back().trail_mark);
                    decisions.pop_back();
                    ++stats_.backtracks;
                }
                if (decisions.empty()) return result;
                auto& d = decisions.back();
                undo_to(d.trail_mark);
                d.tried_true = true;
                conflict_ = false;
                queue_.clear();
                qhead_ = 0;
                if (!assign(d.atom, Val::True) || !propagate()) conflict_ = true;
                continue;
            }

            if (assigned_ == natoms_) {
                ++stats_.stability_checks;
                if (is_stable()) {
                    result.models.push_back(extract_model());
                    if (options.max_models != 0 && result.models.size() >= options.max_models) {
                        return result;
                    }
                }
                conflict_ = true;  // force backtracking to continue enumeration
                continue;
            }

            if (++stats_.decisions > options.max_decisions) {
                result.exhausted = true;
                return result;
            }
            AtomId atom = pick_branch_atom();
            decisions.push_back({trail_.size(), atom, false});
            if (!assign(atom, Val::False) || !propagate()) conflict_ = true;
        }
    }

private:
    enum class Ev : std::uint8_t { Value, RemDec, Block, SupDec };
    struct Event {
        Ev type;
        std::int32_t index;
    };

    void build() {
        natoms_ = gp_.atom_count();
        const auto& rules = gp_.rules();
        nrules_ = rules.size();
        occ_pos_.resize(natoms_);
        occ_neg_.resize(natoms_);
        defs_.resize(natoms_);
        val_.assign(natoms_, Val::Unknown);
        remaining_.resize(nrules_);
        blocked_.assign(nrules_, 0);
        support_.assign(natoms_, 0);
        for (std::size_t r = 0; r < nrules_; ++r) {
            const auto& rule = rules[r];
            remaining_[r] = static_cast<int>(rule.pos.size() + rule.neg.size());
            for (auto a : rule.pos) occ_pos_[static_cast<std::size_t>(a)].push_back(static_cast<int>(r));
            for (auto a : rule.neg) occ_neg_[static_cast<std::size_t>(a)].push_back(static_cast<int>(r));
            if (rule.head != kNoHead) {
                defs_[static_cast<std::size_t>(rule.head)].push_back(static_cast<int>(r));
                ++support_[static_cast<std::size_t>(rule.head)];
            }
        }
        // Branch order: most-occurring atoms first (cheap VSIDS stand-in).
        branch_order_.resize(natoms_);
        std::iota(branch_order_.begin(), branch_order_.end(), 0);
        std::vector<std::size_t> score(natoms_, 0);
        for (std::size_t a = 0; a < natoms_; ++a) {
            score[a] = occ_pos_[a].size() + occ_neg_[a].size() + defs_[a].size();
        }
        std::stable_sort(branch_order_.begin(), branch_order_.end(),
                         [&](AtomId x, AtomId y) { return score[static_cast<std::size_t>(x)] > score[static_cast<std::size_t>(y)]; });
    }

    bool initial_propagate() {
        for (std::size_t a = 0; a < natoms_; ++a) {
            if (support_[a] == 0 && !assign(static_cast<AtomId>(a), Val::False)) return false;
        }
        for (std::size_t r = 0; r < nrules_; ++r) {
            if (remaining_[r] == 0 && !check_rule(static_cast<int>(r))) return false;
        }
        return propagate();
    }

    bool assign(AtomId a, Val v) {
        auto idx = static_cast<std::size_t>(a);
        if (val_[idx] != Val::Unknown) return val_[idx] == v;
        val_[idx] = v;
        ++assigned_;
        trail_.push_back({Ev::Value, a});
        queue_.push_back(a);
        return true;
    }

    bool propagate() {
        while (qhead_ < queue_.size()) {
            AtomId a = queue_[qhead_++];
            ++stats_.propagations;
            auto idx = static_cast<std::size_t>(a);
            if (val_[idx] == Val::True) {
                for (int r : occ_pos_[idx]) {
                    dec_remaining(r);
                    if (!check_rule(r)) return false;
                }
                for (int r : occ_neg_[idx]) {
                    if (!blocked_[static_cast<std::size_t>(r)] && !block(r)) return false;
                }
                // A true atom needs a support among its unblocked defs.
                if (support_[idx] == 0) return false;
                if (support_[idx] == 1 && !force_unique_support(a)) return false;
            } else {
                for (int r : occ_pos_[idx]) {
                    if (!blocked_[static_cast<std::size_t>(r)] && !block(r)) return false;
                }
                for (int r : occ_neg_[idx]) {
                    dec_remaining(r);
                    if (!check_rule(r)) return false;
                }
                // Head became false: its rules must not fire.
                for (int r : defs_[idx]) {
                    if (!check_rule(r)) return false;
                }
            }
        }
        return true;
    }

    void dec_remaining(int r) {
        --remaining_[static_cast<std::size_t>(r)];
        trail_.push_back({Ev::RemDec, r});
    }

    // Re-examines a rule after its counters or head changed. Fires the head
    // when the body is satisfied; forces the last unknown literal when the
    // rule must not fire (constraint, or head already false).
    bool check_rule(int r) {
        auto idx = static_cast<std::size_t>(r);
        if (blocked_[idx]) return true;
        const auto& rule = gp_.rules()[idx];
        if (remaining_[idx] == 0) {
            if (rule.head == kNoHead) return false;  // violated constraint
            return assign(rule.head, Val::True);
        }
        bool must_not_fire =
            rule.head == kNoHead || val_[static_cast<std::size_t>(rule.head)] == Val::False;
        if (must_not_fire && remaining_[idx] == 1) {
            // The single unknown literal must be falsified. (Any literal
            // that is assigned-but-unsatisfying would have blocked the rule.)
            for (auto a : rule.pos) {
                if (val_[static_cast<std::size_t>(a)] == Val::Unknown) return assign(a, Val::False);
            }
            for (auto a : rule.neg) {
                if (val_[static_cast<std::size_t>(a)] == Val::Unknown) return assign(a, Val::True);
            }
        }
        return true;
    }

    bool block(int r) {
        auto idx = static_cast<std::size_t>(r);
        blocked_[idx] = 1;
        trail_.push_back({Ev::Block, r});
        AtomId h = gp_.rules()[idx].head;
        if (h == kNoHead) return true;
        auto hidx = static_cast<std::size_t>(h);
        --support_[hidx];
        trail_.push_back({Ev::SupDec, h});
        if (support_[hidx] == 0) return assign(h, Val::False);
        if (support_[hidx] == 1 && val_[hidx] == Val::True) return force_unique_support(h);
        return true;
    }

    // `a` is true and has exactly one unblocked defining rule: that rule's
    // body must be satisfied.
    bool force_unique_support(AtomId a) {
        auto idx = static_cast<std::size_t>(a);
        for (int r : defs_[idx]) {
            auto ridx = static_cast<std::size_t>(r);
            if (blocked_[ridx]) continue;
            const auto& rule = gp_.rules()[ridx];
            for (auto p : rule.pos) {
                if (!assign(p, Val::True)) return false;
            }
            for (auto n : rule.neg) {
                if (!assign(n, Val::False)) return false;
            }
            return true;
        }
        return false;  // no unblocked def left; caller saw a stale count
    }

    void undo_to(std::size_t mark) {
        while (trail_.size() > mark) {
            Event e = trail_.back();
            trail_.pop_back();
            switch (e.type) {
                case Ev::Value:
                    val_[static_cast<std::size_t>(e.index)] = Val::Unknown;
                    --assigned_;
                    break;
                case Ev::RemDec:
                    ++remaining_[static_cast<std::size_t>(e.index)];
                    break;
                case Ev::Block:
                    blocked_[static_cast<std::size_t>(e.index)] = 0;
                    break;
                case Ev::SupDec:
                    ++support_[static_cast<std::size_t>(e.index)];
                    break;
            }
        }
        queue_.clear();
        qhead_ = 0;
    }

    AtomId pick_branch_atom() const {
        for (AtomId a : branch_order_) {
            if (val_[static_cast<std::size_t>(a)] == Val::Unknown) return a;
        }
        return 0;  // unreachable: callers check assigned_ < natoms_
    }

    // Least model of the reduct w.r.t. the current total assignment must
    // reproduce exactly the true atoms.
    bool is_stable() {
        const auto& rules = gp_.rules();
        std::vector<int> cnt(nrules_);
        std::vector<char> in_l(natoms_, 0);
        std::vector<char> eligible(nrules_, 0);
        std::vector<AtomId> work;
        for (std::size_t r = 0; r < nrules_; ++r) {
            const auto& rule = rules[r];
            if (rule.head == kNoHead) continue;
            bool ok = true;
            for (auto q : rule.neg) {
                if (val_[static_cast<std::size_t>(q)] != Val::False) {
                    ok = false;
                    break;
                }
            }
            if (!ok) continue;
            eligible[r] = 1;
            cnt[r] = static_cast<int>(rule.pos.size());
            if (cnt[r] == 0 && !in_l[static_cast<std::size_t>(rule.head)]) {
                in_l[static_cast<std::size_t>(rule.head)] = 1;
                work.push_back(rule.head);
            }
        }
        while (!work.empty()) {
            AtomId a = work.back();
            work.pop_back();
            for (int r : occ_pos_[static_cast<std::size_t>(a)]) {
                auto ridx = static_cast<std::size_t>(r);
                if (!eligible[ridx]) continue;
                if (--cnt[ridx] == 0) {
                    AtomId h = rules[ridx].head;
                    if (!in_l[static_cast<std::size_t>(h)]) {
                        in_l[static_cast<std::size_t>(h)] = 1;
                        work.push_back(h);
                    }
                }
            }
        }
        for (std::size_t a = 0; a < natoms_; ++a) {
            if (val_[a] == Val::True && !in_l[a]) return false;
        }
        return true;
    }

    Model extract_model() const {
        Model m;
        for (std::size_t a = 0; a < natoms_; ++a) {
            if (val_[a] == Val::True) m.push_back(static_cast<AtomId>(a));
        }
        return m;
    }

    const GroundProgram& gp_;
    std::size_t natoms_ = 0;
    std::size_t nrules_ = 0;
    std::vector<std::vector<int>> occ_pos_, occ_neg_, defs_;
    std::vector<Val> val_;
    std::vector<int> remaining_;
    std::vector<char> blocked_;
    std::vector<int> support_;
    std::vector<AtomId> branch_order_;
    std::vector<Event> trail_;
    std::vector<AtomId> queue_;
    std::size_t qhead_ = 0;
    std::size_t assigned_ = 0;
    SolverStats stats_;
    bool conflict_ = false;
};

}  // namespace

Solver::Solver(const GroundProgram& program) : program_(program) {}

SolveResult Solver::solve(const SolveOptions& options) { return SolverImpl(program_).run(options); }

bool Solver::satisfiable() { return solve({.max_models = 1}).satisfiable(); }

SolveResult solve(const GroundProgram& program, const SolveOptions& options) {
    return SolverImpl(program).run(options);
}

bool satisfiable(const GroundProgram& program) {
    return solve(program, {.max_models = 1}).satisfiable();
}

std::vector<std::string> model_to_strings(const GroundProgram& program, const Model& model) {
    std::vector<std::string> out;
    out.reserve(model.size());
    for (auto id : model) out.push_back(program.atom(id).to_string());
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace agenp::asp
