// Answer-set solver for ground normal programs with constraints.
//
// Architecture: completion-style unit propagation (rule-firing, blocking,
// support counting, constraint/last-literal forcing) with chronological
// backtracking; every total assignment that survives propagation is
// subjected to a stability check (least model of the reduct must equal the
// assignment's true set), which makes the solver sound and complete for
// arbitrary finite normal programs, including non-tight (loop-carrying)
// ones.
#pragma once

#include <cstdint>
#include <vector>

#include "asp/ground_program.hpp"

namespace agenp::asp {

// One answer set: the ids of the atoms that are true, sorted ascending.
using Model = std::vector<AtomId>;

struct SolveOptions {
    // Stop after this many answer sets (0 = unlimited enumeration).
    std::size_t max_models = 1;
    // Abort after this many branching decisions; exceeded budgets surface as
    // SolveResult::exhausted = true so callers can treat the program as
    // "unknown" rather than unsatisfiable.
    std::size_t max_decisions = 50'000'000;
};

// Search effort expended by one solve() call. Also published to the
// process-wide metrics registry under `asp.solver.*` (see obs/metrics.hpp).
struct SolverStats {
    std::size_t decisions = 0;         // branching choices made
    std::size_t conflicts = 0;         // dead ends hit (incl. rejected totals)
    std::size_t propagations = 0;      // literals processed by unit propagation
    std::size_t backtracks = 0;        // decisions undone
    std::size_t stability_checks = 0;  // total assignments tested for stability
    std::size_t models = 0;            // answer sets found (== models.size())
};

struct SolveResult {
    std::vector<Model> models;
    bool exhausted = false;  // decision budget ran out before the search completed
    SolverStats stats;

    [[nodiscard]] bool satisfiable() const { return !models.empty(); }
};

class Solver {
public:
    explicit Solver(const GroundProgram& program);

    SolveResult solve(const SolveOptions& options = {});

    // Convenience: true iff the program has at least one answer set.
    bool satisfiable();

private:
    struct Impl;
    const GroundProgram& program_;
};

// One-shot helpers.
SolveResult solve(const GroundProgram& program, const SolveOptions& options = {});
bool satisfiable(const GroundProgram& program);

// Renders a model as sorted atom strings (for tests and reports).
std::vector<std::string> model_to_strings(const GroundProgram& program, const Model& model);

}  // namespace agenp::asp
