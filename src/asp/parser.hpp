// Text parser for the ASP fragment.
//
// Syntax (one statement per '.', '%' starts a line comment):
//
//   p(a, 1).
//   q(X) :- p(X, Y), not r(X), Y >= 1, Z = Y + 1.
//   :- q(X), X = bad.
//   holds(route)@1.            % annotated atom (inside ASG blocks)
//
// Constants start lowercase (or are "quoted strings" / integers); variables
// start uppercase or with '_'. Arithmetic (+ - * /) is allowed inside
// comparison operands with the usual precedence.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "asp/program.hpp"

namespace agenp::asp {

struct ParseError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

// Parses a full program. Throws ParseError with line information on bad
// input.
Program parse_program(std::string_view text);

// Parses a single rule (the trailing '.' is optional here, for convenience
// in tests and mode declarations).
Rule parse_rule(std::string_view text);

// Parses a single (possibly annotated) atom.
Atom parse_atom(std::string_view text);

// Parses a single ground or non-ground term.
Term parse_term(std::string_view text);

}  // namespace agenp::asp
