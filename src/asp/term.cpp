#include "asp/term.hpp"

namespace agenp::asp {

Term Term::integer(std::int64_t value) {
    Term t;
    t.kind_ = Kind::Integer;
    t.int_value_ = value;
    return t;
}

Term Term::constant(Symbol name) {
    Term t;
    t.kind_ = Kind::Constant;
    t.symbol_ = name;
    return t;
}

Term Term::variable(Symbol name) {
    Term t;
    t.kind_ = Kind::Variable;
    t.symbol_ = name;
    return t;
}

Term Term::compound(Symbol functor, TermList args) {
    Term t;
    t.kind_ = Kind::Compound;
    t.symbol_ = functor;
    t.args_ = std::move(args);
    return t;
}

bool Term::is_ground() const {
    switch (kind_) {
        case Kind::Integer:
        case Kind::Constant:
            return true;
        case Kind::Variable:
            return false;
        case Kind::Compound:
            for (const auto& a : args_) {
                if (!a.is_ground()) return false;
            }
            return true;
    }
    return false;
}

void Term::collect_variables(std::vector<Symbol>& out) const {
    switch (kind_) {
        case Kind::Variable:
            out.push_back(symbol_);
            break;
        case Kind::Compound:
            for (const auto& a : args_) a.collect_variables(out);
            break;
        default:
            break;
    }
}

std::string Term::to_string() const {
    switch (kind_) {
        case Kind::Integer:
            return std::to_string(int_value_);
        case Kind::Constant:
        case Kind::Variable:
            return std::string(symbol_.str());
        case Kind::Compound: {
            // Binary arithmetic prints infix (and parenthesized) so that
            // to_string output re-parses; everything else is functional.
            auto f = symbol_.str();
            if (args_.size() == 2 && (f == "+" || f == "-" || f == "*" || f == "/")) {
                return "(" + args_[0].to_string() + " " + std::string(f) + " " +
                       args_[1].to_string() + ")";
            }
            std::string out(symbol_.str());
            out += '(';
            for (std::size_t i = 0; i < args_.size(); ++i) {
                if (i > 0) out += ',';
                out += args_[i].to_string();
            }
            out += ')';
            return out;
        }
    }
    return "?";
}

bool operator==(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
        case Term::Kind::Integer:
            return a.int_value_ == b.int_value_;
        case Term::Kind::Constant:
        case Term::Kind::Variable:
            return a.symbol_ == b.symbol_;
        case Term::Kind::Compound:
            return a.symbol_ == b.symbol_ && a.args_ == b.args_;
    }
    return false;
}

bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return static_cast<int>(a.kind_) < static_cast<int>(b.kind_);
    switch (a.kind_) {
        case Term::Kind::Integer:
            return a.int_value_ < b.int_value_;
        case Term::Kind::Constant:
        case Term::Kind::Variable:
            return a.symbol_.str() < b.symbol_.str();
        case Term::Kind::Compound:
            if (a.symbol_ != b.symbol_) return a.symbol_.str() < b.symbol_.str();
            return a.args_ < b.args_;
    }
    return false;
}

std::size_t Term::hash() const {
    std::size_t h = static_cast<std::size_t>(kind_) * 0x9e3779b97f4a7c15ULL;
    switch (kind_) {
        case Kind::Integer:
            h ^= std::hash<std::int64_t>{}(int_value_) + 0x9e3779b9 + (h << 6);
            break;
        case Kind::Constant:
        case Kind::Variable:
            h ^= std::hash<Symbol>{}(symbol_) + 0x9e3779b9 + (h << 6);
            break;
        case Kind::Compound:
            h ^= std::hash<Symbol>{}(symbol_) + 0x9e3779b9 + (h << 6);
            for (const auto& a : args_) h ^= a.hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
            break;
    }
    return h;
}

}  // namespace agenp::asp
