// First-order terms for the ASP fragment used by AGENP.
//
// The paper (Section II.A) restricts itself to normal rules and constraints;
// terms are integers, symbolic constants, variables, and compound terms
// (needed to express traces such as a@[1,2] after ASG instantiation and
// structured attribute values).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/symbol.hpp"

namespace agenp::asp {

using util::Symbol;

class Term;
using TermList = std::vector<Term>;

class Term {
public:
    enum class Kind { Integer, Constant, Variable, Compound };

    // Default-constructed term is the constant "".
    Term() : kind_(Kind::Constant) {}

    static Term integer(std::int64_t value);
    static Term constant(Symbol name);
    static Term constant(std::string_view name) { return constant(Symbol(name)); }
    static Term variable(Symbol name);
    static Term variable(std::string_view name) { return variable(Symbol(name)); }
    static Term compound(Symbol functor, TermList args);

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_integer() const { return kind_ == Kind::Integer; }
    [[nodiscard]] bool is_constant() const { return kind_ == Kind::Constant; }
    [[nodiscard]] bool is_variable() const { return kind_ == Kind::Variable; }
    [[nodiscard]] bool is_compound() const { return kind_ == Kind::Compound; }

    // Preconditions: matching kind().
    [[nodiscard]] std::int64_t int_value() const { return int_value_; }
    [[nodiscard]] Symbol symbol() const { return symbol_; }          // constant/variable name, compound functor
    [[nodiscard]] const TermList& args() const { return args_; }     // compound only

    [[nodiscard]] bool is_ground() const;
    void collect_variables(std::vector<Symbol>& out) const;

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Term& a, const Term& b);
    friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
    // Total order: by kind, then value; used for canonical sorting.
    friend bool operator<(const Term& a, const Term& b);

    [[nodiscard]] std::size_t hash() const;

private:
    Kind kind_;
    std::int64_t int_value_ = 0;
    Symbol symbol_;
    TermList args_;
};

}  // namespace agenp::asp

template <>
struct std::hash<agenp::asp::Term> {
    std::size_t operator()(const agenp::asp::Term& t) const noexcept { return t.hash(); }
};
