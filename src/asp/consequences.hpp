// Brave and cautious consequences of a ground program.
//
// brave(P)    = atoms true in SOME answer set;
// cautious(P) = atoms true in EVERY answer set (empty when P is unsat).
//
// The PCP uses these for ASG-level policy analysis: a candidate policy
// conflict exists when two decisions are bravely co-derivable; an
// invariant holds when it is a cautious consequence.
#pragma once

#include "asp/solver.hpp"

namespace agenp::asp {

struct ConsequenceOptions {
    // Enumeration budget; when hit, `exact` is false and the sets are the
    // union/intersection over the models seen so far.
    std::size_t max_models = 4096;
    std::size_t max_decisions = 50'000'000;
};

struct Consequences {
    std::vector<AtomId> brave;     // sorted
    std::vector<AtomId> cautious;  // sorted
    bool satisfiable = false;
    bool exact = true;
};

Consequences compute_consequences(const GroundProgram& program,
                                  const ConsequenceOptions& options = {});

// Convenience: is `atom` true in some / every answer set?
bool bravely_holds(const GroundProgram& program, const Atom& atom,
                   const ConsequenceOptions& options = {});
bool cautiously_holds(const GroundProgram& program, const Atom& atom,
                      const ConsequenceOptions& options = {});

}  // namespace agenp::asp
