#include "asp/ground_program.hpp"

#include <algorithm>

namespace agenp::asp {

AtomId GroundProgram::intern(const Atom& atom) {
    auto it = index_.find(atom);
    if (it != index_.end()) return it->second;
    auto id = static_cast<AtomId>(atoms_.size());
    atoms_.push_back(atom);
    index_.emplace(atom, id);
    return id;
}

AtomId GroundProgram::find(const Atom& atom) const {
    auto it = index_.find(atom);
    return it == index_.end() ? kNoHead : it->second;
}

namespace {

// Deduplicates in place while preserving first-occurrence order (rule bodies
// keep the order they were written in, which matters for readable output).
void dedupe_keep_order(std::vector<AtomId>& ids) {
    std::vector<AtomId> seen;
    std::size_t out = 0;
    for (auto id : ids) {
        if (std::find(seen.begin(), seen.end(), id) == seen.end()) {
            seen.push_back(id);
            ids[out++] = id;
        }
    }
    ids.resize(out);
}

std::vector<AtomId> sorted_ids(const std::vector<AtomId>& ids) {
    std::vector<AtomId> out = ids;
    std::sort(out.begin(), out.end());
    return out;
}

// Order-insensitive structural hash for rule deduplication.
std::uint64_t rule_hash(AtomId head, const std::vector<AtomId>& sorted_pos,
                        const std::vector<AtomId>& sorted_neg) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(head)) + 2);
    mix(0x706f73ull);  // pos / neg section separators
    for (auto id : sorted_pos) mix(static_cast<std::uint64_t>(id) + 1);
    mix(0x6e6567ull);
    for (auto id : sorted_neg) mix(static_cast<std::uint64_t>(id) + 1);
    return h;
}

}  // namespace

void GroundProgram::add_rule(GroundRule rule) {
    dedupe_keep_order(rule.pos);
    dedupe_keep_order(rule.neg);
    std::vector<AtomId> spos = sorted_ids(rule.pos);
    std::vector<AtomId> sneg = sorted_ids(rule.neg);
    std::uint64_t h = rule_hash(rule.head, spos, sneg);
    auto& slots = rule_index_[h];
    for (std::size_t slot : slots) {
        const GroundRule& existing = rules_[slot];
        if (existing.head == rule.head && sorted_ids(existing.pos) == spos &&
            sorted_ids(existing.neg) == sneg) {
            return;
        }
    }
    slots.push_back(rules_.size());
    rules_.push_back(std::move(rule));
}

std::string GroundProgram::to_string() const {
    std::string out;
    for (const auto& r : rules_) {
        if (r.head != kNoHead) out += atom(r.head).to_string();
        if (!r.pos.empty() || !r.neg.empty()) {
            out += r.head != kNoHead ? " :- " : ":- ";
            bool first = true;
            for (auto id : r.pos) {
                if (!first) out += ", ";
                out += atom(id).to_string();
                first = false;
            }
            for (auto id : r.neg) {
                if (!first) out += ", ";
                out += "not " + atom(id).to_string();
                first = false;
            }
        }
        out += ".\n";
    }
    return out;
}

}  // namespace agenp::asp
