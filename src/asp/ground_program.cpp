#include "asp/ground_program.hpp"

#include <algorithm>

namespace agenp::asp {

AtomId GroundProgram::intern(const Atom& atom) {
    auto it = index_.find(atom);
    if (it != index_.end()) return it->second;
    auto id = static_cast<AtomId>(atoms_.size());
    atoms_.push_back(atom);
    index_.emplace(atom, id);
    return id;
}

AtomId GroundProgram::find(const Atom& atom) const {
    auto it = index_.find(atom);
    return it == index_.end() ? kNoHead : it->second;
}

namespace {

// Deduplicates in place while preserving first-occurrence order (rule bodies
// keep the order they were written in, which matters for readable output).
void dedupe_keep_order(std::vector<AtomId>& ids) {
    std::vector<AtomId> seen;
    std::size_t out = 0;
    for (auto id : ids) {
        if (std::find(seen.begin(), seen.end(), id) == seen.end()) {
            seen.push_back(id);
            ids[out++] = id;
        }
    }
    ids.resize(out);
}

// Order-insensitive structural key for rule deduplication.
std::string rule_key(const GroundRule& r) {
    auto sorted = [](std::vector<AtomId> ids) {
        std::sort(ids.begin(), ids.end());
        return ids;
    };
    std::string key = std::to_string(r.head) + "|";
    for (auto id : sorted(r.pos)) key += std::to_string(id) + ",";
    key += "|";
    for (auto id : sorted(r.neg)) key += std::to_string(id) + ",";
    return key;
}

}  // namespace

void GroundProgram::add_rule(GroundRule rule) {
    dedupe_keep_order(rule.pos);
    dedupe_keep_order(rule.neg);
    std::string key = rule_key(rule);
    if (rule_index_.contains(key)) return;
    rule_index_.emplace(std::move(key), rules_.size());
    rules_.push_back(std::move(rule));
}

std::string GroundProgram::to_string() const {
    std::string out;
    for (const auto& r : rules_) {
        if (r.head != kNoHead) out += atom(r.head).to_string();
        if (!r.pos.empty() || !r.neg.empty()) {
            out += r.head != kNoHead ? " :- " : ":- ";
            bool first = true;
            for (auto id : r.pos) {
                if (!first) out += ", ";
                out += atom(id).to_string();
                first = false;
            }
            for (auto id : r.neg) {
                if (!first) out += ", ";
                out += "not " + atom(id).to_string();
                first = false;
            }
        }
        out += ".\n";
    }
    return out;
}

}  // namespace agenp::asp
