// Atoms, literals and builtin comparisons.
//
// An Atom may carry an ASG annotation (`a(1)@2` in the paper's notation):
// `annotation == k >= 1` refers to the k-th child of the production rule the
// annotation program is attached to; kUnannotated means the atom is local to
// the node itself. Annotations are resolved (folded into the predicate name)
// during ASG instantiation, so ground programs handed to the solver never
// carry them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asp/term.hpp"

namespace agenp::asp {

inline constexpr int kUnannotated = 0;

struct Atom {
    Symbol predicate;
    TermList args;
    int annotation = kUnannotated;

    Atom() = default;
    Atom(Symbol pred, TermList arguments, int ann = kUnannotated)
        : predicate(pred), args(std::move(arguments)), annotation(ann) {}
    Atom(std::string_view pred, TermList arguments, int ann = kUnannotated)
        : predicate(pred), args(std::move(arguments)), annotation(ann) {}

    [[nodiscard]] bool is_ground() const;
    void collect_variables(std::vector<Symbol>& out) const;
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Atom& a, const Atom& b) {
        return a.predicate == b.predicate && a.annotation == b.annotation && a.args == b.args;
    }
    friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
    friend bool operator<(const Atom& a, const Atom& b);

    [[nodiscard]] std::size_t hash() const;
};

// A (possibly negated) atom in a rule body. `positive == false` means
// negation as failure ("not a").
struct Literal {
    Atom atom;
    bool positive = true;

    Literal() = default;
    Literal(Atom a, bool pos) : atom(std::move(a)), positive(pos) {}
    static Literal pos(Atom a) { return Literal(std::move(a), true); }
    static Literal neg(Atom a) { return Literal(std::move(a), false); }

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Literal& a, const Literal& b) {
        return a.positive == b.positive && a.atom == b.atom;
    }
};

// Builtin comparison between two terms; terms may contain the arithmetic
// functors +, -, * and / which are evaluated over integers when ground.
struct Comparison {
    enum class Op { Eq, Ne, Lt, Le, Gt, Ge };

    Op op = Op::Eq;
    Term lhs;
    Term rhs;

    Comparison() = default;
    Comparison(Op o, Term l, Term r) : op(o), lhs(std::move(l)), rhs(std::move(r)) {}

    [[nodiscard]] std::string to_string() const;
    static std::string op_to_string(Op op);

    // Evaluates a ground comparison. Integer operands (after arithmetic
    // evaluation) compare numerically; other ground terms compare
    // structurally. Returns nullopt if either side is non-ground or
    // arithmetic hits a non-integer operand.
    [[nodiscard]] std::optional<bool> evaluate() const;

    friend bool operator==(const Comparison& a, const Comparison& b) {
        return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
    }

    [[nodiscard]] std::size_t hash() const;
};

// Evaluates arithmetic functors in a ground term, e.g. +(3,*(2,4)) -> 11.
// Non-arithmetic ground terms evaluate to themselves. Returns nullopt when
// an arithmetic functor has a non-integer argument or division by zero.
std::optional<Term> evaluate_arithmetic(const Term& term);

}  // namespace agenp::asp

template <>
struct std::hash<agenp::asp::Atom> {
    std::size_t operator()(const agenp::asp::Atom& a) const noexcept { return a.hash(); }
};
