#include "asp/grounder.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "asp/substitution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/arena.hpp"

namespace agenp::asp {
namespace {

// Order-sensitive structural hash of a pending instance; dedupe compares
// the full rule on collision, so the hash only has to spread.
std::uint64_t instance_hash(const AtomRule& rule) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(rule.head ? rule.head->hash() : 0x68656164ull);
    mix(0x706f73ull);
    for (const auto& a : rule.pos) mix(a.hash());
    mix(0x6e6567ull);
    for (const auto& a : rule.neg) mix(a.hash());
    return h;
}

// Atoms derived so far, indexed by predicate for matching. Per-predicate
// vectors carry two boundaries so the semi-naive rounds can address the
// "old" span [0, old_end) and the "delta" span [old_end, cur_end); atoms
// appended during the running round land beyond cur_end and form the next
// delta.
class DerivedAtoms {
public:
    bool contains(const Atom& a) const { return known_.contains(a); }

    // New atoms are staged and only appended to the per-predicate lists at
    // round boundaries: match_from holds raw pointers into those lists, so
    // appending mid-round would invalidate them. Returns true when the atom
    // was not already known.
    bool add(const Atom& a) {
        if (!known_.insert(a).second) return false;
        staging_.push_back(a);
        ++total_;
        return true;
    }

    [[nodiscard]] std::size_t total() const { return total_; }

    struct Span {
        const Atom* begin = nullptr;
        const Atom* end = nullptr;
    };

    enum class Range { Old, Delta, All };

    Span span(Symbol pred, Range range) const {
        auto it = lists_.find(pred.id());
        if (it == lists_.end()) return {};
        const auto& list = it->second;
        const auto& b = boundary(pred.id());
        switch (range) {
            case Range::Old:
                return {list.data(), list.data() + b.old_end};
            case Range::Delta:
                return {list.data() + b.old_end, list.data() + b.cur_end};
            case Range::All:
                return {list.data(), list.data() + b.cur_end};
        }
        return {};
    }

    // Closes the round: flushes staged atoms, then old <- previous
    // old+delta, delta <- the flushed atoms. Returns true if the new delta
    // is non-empty for any predicate.
    bool advance_round() {
        for (auto& a : staging_) lists_[a.predicate.id()].push_back(std::move(a));
        staging_.clear();
        bool any = false;
        for (auto& [pred, list] : lists_) {
            auto& b = boundaries_[pred];
            b.old_end = b.cur_end;
            b.cur_end = list.size();
            if (b.cur_end > b.old_end) any = true;
        }
        return any;
    }

private:
    struct Boundary {
        std::size_t old_end = 0;
        std::size_t cur_end = 0;
    };

    const Boundary& boundary(std::uint32_t pred) const {
        static const Boundary kEmpty;
        auto it = boundaries_.find(pred);
        return it == boundaries_.end() ? kEmpty : it->second;
    }

    std::unordered_set<Atom> known_;
    std::vector<Atom> staging_;
    std::unordered_map<std::uint32_t, std::vector<Atom>> lists_;
    std::unordered_map<std::uint32_t, Boundary> boundaries_;
    std::size_t total_ = 0;
};

class GrounderImpl {
public:
    GrounderImpl(const Program& program, const GroundingLimits& limits, util::Arena& arena)
        : program_(program),
          limits_(limits),
          arena_(arena),
          seen_rules_(0, std::hash<std::uint64_t>(), std::equal_to<>(), BucketAlloc(arena)),
          builtin_done_(util::ArenaAllocator<char>(arena)) {}

    GroundProgram run() {
        instantiate();
        return finalize();
    }

    SeededGrounding run_seeded(const std::vector<Atom>& seeds) {
        collect_new_ = true;
        for (const auto& a : seeds) derived_.add(a);
        instantiate();
        return finalize_seeded();
    }

private:
    void instantiate() {
        obs::ScopedSpan span("asp.ground", "asp");
        static obs::Histogram& time_hist = obs::metrics().histogram("asp.grounder.time_us");
        obs::ScopedTimer timer(time_hist);

        check_safety();

        // Round 0: rules with no positive body literals fire exactly once.
        for (const auto& rule : program_.rules()) {
            if (positive_count(rule) == 0) {
                Subst subst;
                finish_instance(rule, subst);
            }
        }

        // Semi-naive rounds: each instantiation must use at least one delta
        // atom in its positive body (pivot position j). Seeds (when present)
        // were staged before round 0 and join the first delta here.
        std::size_t rounds = 0;
        while (derived_.advance_round()) {
            ++rounds;
            for (const auto& rule : program_.rules()) {
                int pcount = positive_count(rule);
                for (int pivot = 0; pivot < pcount; ++pivot) {
                    Subst subst;
                    match_from(rule, 0, pivot, subst);
                }
            }
        }
        derived_.advance_round();  // flush atoms from the final round into "all"

        publish(rounds);
    }
    // Rejects unsafe rules with one ASP001 diagnostic per unbound variable
    // (rule index + variable name + rule text), gathered across the whole
    // program before throwing so callers see every offender at once.
    void check_safety() const {
        std::vector<analysis::Diagnostic> diags;
        for (std::size_t i = 0; i < program_.rules().size(); ++i) {
            const Rule& rule = program_.rules()[i];
            for (Symbol v : rule.unsafe_variables()) {
                analysis::Diagnostic d;
                d.code = analysis::codes::kUnsafeVariable;
                d.severity = analysis::Severity::Error;
                d.message = "unsafe variable " + std::string(v.str()) +
                            " is not bound by any positive body literal";
                d.hint = "add a positive body literal (or a V = ground-expr binder) covering " +
                         std::string(v.str());
                d.location.rule = static_cast<int>(i);
                d.location.context = rule.to_string();
                diags.push_back(std::move(d));
            }
        }
        if (diags.empty()) return;
        std::string message = "unsafe program: ";
        for (std::size_t i = 0; i < diags.size(); ++i) {
            if (i > 0) message += "; ";
            message += diags[i].to_string();
        }
        throw GroundingError(message, std::move(diags));
    }

    static int positive_count(const Rule& rule) {
        int n = 0;
        for (const auto& l : rule.body) {
            if (l.positive) ++n;
        }
        return n;
    }

    // Returns the index-th positive literal of the rule.
    static const Atom& positive_literal(const Rule& rule, int index) {
        int n = 0;
        for (const auto& l : rule.body) {
            if (l.positive && n++ == index) return l.atom;
        }
        throw GroundingError("internal: positive literal index out of range");
    }

    void match_from(const Rule& rule, int index, int pivot, Subst& subst) {
        if (index == positive_count(rule)) {
            finish_instance(rule, subst);
            return;
        }
        const Atom& pattern = positive_literal(rule, index);
        auto range = index == pivot   ? DerivedAtoms::Range::Delta
                     : index < pivot ? DerivedAtoms::Range::Old
                                     : DerivedAtoms::Range::All;
        auto span = derived_.span(pattern.predicate, range);
        for (const Atom* a = span.begin; a != span.end; ++a) {
            std::size_t mark = subst.size();
            if (match_atom(pattern, *a, subst)) {
                match_from(rule, index + 1, pivot, subst);
            }
            subst.truncate(mark);
        }
    }

    // Evaluates builtins (with `V = ground-expr` acting as a binder),
    // grounds negatives and the head, and emits the instance.
    void finish_instance(const Rule& rule, Subst& subst) {
        std::size_t mark = subst.size();
        if (!evaluate_builtins(rule.builtins, subst)) {
            subst.truncate(mark);
            return;
        }

        AtomRule pending;
        for (const auto& l : rule.body) {
            Atom ground_atom = apply_subst(l.atom, subst);
            if (!ground_atom.is_ground()) {
                throw GroundingError("internal: non-ground literal after substitution in " + rule.to_string());
            }
            (l.positive ? pending.pos : pending.neg).push_back(std::move(ground_atom));
        }
        if (rule.head) {
            Atom head = apply_subst(*rule.head, subst);
            if (!head.is_ground()) {
                throw GroundingError("internal: non-ground head after substitution in " + rule.to_string());
            }
            if (derived_.add(head) && collect_new_) new_atoms_.push_back(head);
            if (derived_.total() > limits_.max_atoms) {
                throw GroundingError("grounding exceeded max_atoms limit");
            }
            pending.head = std::move(head);
        }

        // Hash-bucketed dedupe (buckets live in the per-request arena):
        // structurally identical instances collapse without building a key
        // string per instance.
        std::uint64_t h = instance_hash(pending);
        auto [it, inserted] =
            seen_rules_.try_emplace(h, Bucket(util::ArenaAllocator<std::uint32_t>(arena_)));
        bool duplicate = false;
        if (!inserted) {
            for (std::uint32_t slot : it->second) {
                if (pending_[slot] == pending) {
                    duplicate = true;
                    break;
                }
            }
        }
        if (!duplicate) {
            it->second.push_back(static_cast<std::uint32_t>(pending_.size()));
            pending_.push_back(std::move(pending));
            if (pending_.size() > limits_.max_rules) {
                throw GroundingError("grounding exceeded max_rules limit");
            }
        }
        subst.truncate(mark);
    }

    bool evaluate_builtins(const std::vector<Comparison>& builtins, Subst& subst) {
        // Arena-backed scratch: this runs once per candidate instance, so a
        // heap vector here would be the hottest allocation in the grounder.
        builtin_done_.assign(builtins.size(), 0);
        auto& done = builtin_done_;
        bool progress = true;
        std::size_t remaining = builtins.size();
        while (progress && remaining > 0) {
            progress = false;
            for (std::size_t i = 0; i < builtins.size(); ++i) {
                if (done[i]) continue;
                Term lhs = apply_subst(builtins[i].lhs, subst);
                Term rhs = apply_subst(builtins[i].rhs, subst);
                if (builtins[i].op == Comparison::Op::Eq && lhs.is_variable() && rhs.is_ground()) {
                    auto value = evaluate_arithmetic(rhs);
                    if (!value) return false;
                    subst.bind(lhs.symbol(), *value);
                } else if (lhs.is_ground() && rhs.is_ground()) {
                    auto result = Comparison(builtins[i].op, lhs, rhs).evaluate();
                    if (!result || !*result) return false;
                } else {
                    continue;  // wait for more bindings
                }
                done[i] = true;
                --remaining;
                progress = true;
            }
        }
        // Safety guarantees every builtin eventually grounds.
        return remaining == 0;
    }

    GroundProgram finalize() {
        GroundProgram gp;
        for (const auto& pending : pending_) {
            GroundRule rule;
            bool dropped = false;
            for (const auto& a : pending.neg) {
                if (!derived_.contains(a)) continue;  // atom underivable: "not a" trivially true
                rule.neg.push_back(gp.intern(a));
            }
            for (const auto& a : pending.pos) {
                if (!derived_.contains(a)) {  // defensive; cannot happen by construction
                    dropped = true;
                    break;
                }
                rule.pos.push_back(gp.intern(a));
            }
            if (dropped) continue;
            if (pending.head) rule.head = gp.intern(*pending.head);
            gp.add_rule(std::move(rule));
        }
        return gp;
    }

    // Atom-form finalize for compositional grounding: same negative-literal
    // simplification as `finalize` (sound because the memo only composes
    // fragments whose derivable sets are closed — see GroundingMemo), but
    // rules stay as atoms so the caller can relocate their namespace.
    SeededGrounding finalize_seeded() {
        SeededGrounding out;
        out.rules.reserve(pending_.size());
        for (auto& pending : pending_) {
            AtomRule rule;
            rule.head = std::move(pending.head);
            rule.pos = std::move(pending.pos);
            rule.neg.reserve(pending.neg.size());
            for (auto& a : pending.neg) {
                if (derived_.contains(a)) rule.neg.push_back(std::move(a));
            }
            out.rules.push_back(std::move(rule));
        }
        out.new_atoms = std::move(new_atoms_);
        return out;
    }

    // One flush per grounding keeps the instantiation loops atomics-free.
    void publish(std::size_t rounds) const {
        if (!obs::metrics_enabled()) return;
        auto& m = obs::metrics();
        static obs::Counter& groundings = m.counter("asp.grounder.groundings");
        static obs::Counter& rules = m.counter("asp.grounder.rules");
        static obs::Counter& atoms = m.counter("asp.grounder.atoms");
        static obs::Counter& round_counter = m.counter("asp.grounder.rounds");
        groundings.add(1);
        rules.add(pending_.size());
        atoms.add(derived_.total());
        round_counter.add(rounds);
    }

    using Bucket = util::ArenaVector<std::uint32_t>;
    using BucketAlloc = util::ArenaAllocator<std::pair<const std::uint64_t, Bucket>>;

    const Program& program_;
    GroundingLimits limits_;
    util::Arena& arena_;
    DerivedAtoms derived_;
    std::vector<AtomRule> pending_;
    // instance hash -> slots into pending_ with that hash
    std::unordered_map<std::uint64_t, Bucket, std::hash<std::uint64_t>, std::equal_to<>,
                       BucketAlloc>
        seen_rules_;
    util::ArenaVector<char> builtin_done_;
    bool collect_new_ = false;
    std::vector<Atom> new_atoms_;
};

}  // namespace

GroundProgram ground(const Program& program, const GroundingLimits& limits) {
    // The scratch arena is reset per grounding (and re-poisoned under
    // ASan); everything the grounder returns is deep-copied into the
    // GroundProgram, so nothing escapes the scope.
    util::ArenaScope scope(util::grounding_arena());
    return GrounderImpl(program, limits, util::grounding_arena()).run();
}

SeededGrounding ground_seeded(const Program& program, const std::vector<Atom>& seeds,
                              const GroundingLimits& limits) {
    util::ArenaScope scope(util::grounding_arena());
    return GrounderImpl(program, limits, util::grounding_arena()).run_seeded(seeds);
}

}  // namespace agenp::asp
