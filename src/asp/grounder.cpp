#include "asp/grounder.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "asp/substitution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::asp {
namespace {

// Ground rule in atom (not yet id) form, produced during instantiation.
struct PendingRule {
    std::optional<Atom> head;
    std::vector<Atom> pos;
    std::vector<Atom> neg;

    [[nodiscard]] std::string key() const {
        std::string k = head ? head->to_string() : "";
        k += "|";
        for (const auto& a : pos) k += a.to_string() + ",";
        k += "|";
        for (const auto& a : neg) k += a.to_string() + ",";
        return k;
    }
};

// Atoms derived so far, indexed by predicate for matching. Per-predicate
// vectors carry two boundaries so the semi-naive rounds can address the
// "old" span [0, old_end) and the "delta" span [old_end, cur_end); atoms
// appended during the running round land beyond cur_end and form the next
// delta.
class DerivedAtoms {
public:
    bool contains(const Atom& a) const { return known_.contains(a); }

    // New atoms are staged and only appended to the per-predicate lists at
    // round boundaries: match_from holds raw pointers into those lists, so
    // appending mid-round would invalidate them.
    void add(const Atom& a) {
        if (!known_.insert(a).second) return;
        staging_.push_back(a);
        ++total_;
    }

    [[nodiscard]] std::size_t total() const { return total_; }

    struct Span {
        const Atom* begin = nullptr;
        const Atom* end = nullptr;
    };

    enum class Range { Old, Delta, All };

    Span span(Symbol pred, Range range) const {
        auto it = lists_.find(pred.id());
        if (it == lists_.end()) return {};
        const auto& list = it->second;
        const auto& b = boundary(pred.id());
        switch (range) {
            case Range::Old:
                return {list.data(), list.data() + b.old_end};
            case Range::Delta:
                return {list.data() + b.old_end, list.data() + b.cur_end};
            case Range::All:
                return {list.data(), list.data() + b.cur_end};
        }
        return {};
    }

    // Closes the round: flushes staged atoms, then old <- previous
    // old+delta, delta <- the flushed atoms. Returns true if the new delta
    // is non-empty for any predicate.
    bool advance_round() {
        for (auto& a : staging_) lists_[a.predicate.id()].push_back(std::move(a));
        staging_.clear();
        bool any = false;
        for (auto& [pred, list] : lists_) {
            auto& b = boundaries_[pred];
            b.old_end = b.cur_end;
            b.cur_end = list.size();
            if (b.cur_end > b.old_end) any = true;
        }
        return any;
    }

private:
    struct Boundary {
        std::size_t old_end = 0;
        std::size_t cur_end = 0;
    };

    const Boundary& boundary(std::uint32_t pred) const {
        static const Boundary kEmpty;
        auto it = boundaries_.find(pred);
        return it == boundaries_.end() ? kEmpty : it->second;
    }

    std::unordered_set<Atom> known_;
    std::vector<Atom> staging_;
    std::unordered_map<std::uint32_t, std::vector<Atom>> lists_;
    std::unordered_map<std::uint32_t, Boundary> boundaries_;
    std::size_t total_ = 0;
};

class GrounderImpl {
public:
    GrounderImpl(const Program& program, const GroundingLimits& limits)
        : program_(program), limits_(limits) {}

    GroundProgram run() {
        obs::ScopedSpan span("asp.ground", "asp");
        static obs::Histogram& time_hist = obs::metrics().histogram("asp.grounder.time_us");
        obs::ScopedTimer timer(time_hist);

        check_safety();

        // Round 0: rules with no positive body literals fire exactly once.
        for (const auto& rule : program_.rules()) {
            if (positive_count(rule) == 0) {
                Subst subst;
                finish_instance(rule, subst);
            }
        }

        // Semi-naive rounds: each instantiation must use at least one delta
        // atom in its positive body (pivot position j).
        std::size_t rounds = 0;
        while (derived_.advance_round()) {
            ++rounds;
            for (const auto& rule : program_.rules()) {
                int pcount = positive_count(rule);
                for (int pivot = 0; pivot < pcount; ++pivot) {
                    Subst subst;
                    match_from(rule, 0, pivot, subst);
                }
            }
        }
        derived_.advance_round();  // flush atoms from the final round into "all"

        publish(rounds);
        return finalize();
    }

private:
    // Rejects unsafe rules with one ASP001 diagnostic per unbound variable
    // (rule index + variable name + rule text), gathered across the whole
    // program before throwing so callers see every offender at once.
    void check_safety() const {
        std::vector<analysis::Diagnostic> diags;
        for (std::size_t i = 0; i < program_.rules().size(); ++i) {
            const Rule& rule = program_.rules()[i];
            for (Symbol v : rule.unsafe_variables()) {
                analysis::Diagnostic d;
                d.code = analysis::codes::kUnsafeVariable;
                d.severity = analysis::Severity::Error;
                d.message = "unsafe variable " + std::string(v.str()) +
                            " is not bound by any positive body literal";
                d.hint = "add a positive body literal (or a V = ground-expr binder) covering " +
                         std::string(v.str());
                d.location.rule = static_cast<int>(i);
                d.location.context = rule.to_string();
                diags.push_back(std::move(d));
            }
        }
        if (diags.empty()) return;
        std::string message = "unsafe program: ";
        for (std::size_t i = 0; i < diags.size(); ++i) {
            if (i > 0) message += "; ";
            message += diags[i].to_string();
        }
        throw GroundingError(message, std::move(diags));
    }

    static int positive_count(const Rule& rule) {
        int n = 0;
        for (const auto& l : rule.body) {
            if (l.positive) ++n;
        }
        return n;
    }

    // Returns the index-th positive literal of the rule.
    static const Atom& positive_literal(const Rule& rule, int index) {
        int n = 0;
        for (const auto& l : rule.body) {
            if (l.positive && n++ == index) return l.atom;
        }
        throw GroundingError("internal: positive literal index out of range");
    }

    void match_from(const Rule& rule, int index, int pivot, Subst& subst) {
        if (index == positive_count(rule)) {
            finish_instance(rule, subst);
            return;
        }
        const Atom& pattern = positive_literal(rule, index);
        auto range = index == pivot   ? DerivedAtoms::Range::Delta
                     : index < pivot ? DerivedAtoms::Range::Old
                                     : DerivedAtoms::Range::All;
        auto span = derived_.span(pattern.predicate, range);
        for (const Atom* a = span.begin; a != span.end; ++a) {
            std::size_t mark = subst.size();
            if (match_atom(pattern, *a, subst)) {
                match_from(rule, index + 1, pivot, subst);
            }
            subst.truncate(mark);
        }
    }

    // Evaluates builtins (with `V = ground-expr` acting as a binder),
    // grounds negatives and the head, and emits the instance.
    void finish_instance(const Rule& rule, Subst& subst) {
        std::size_t mark = subst.size();
        if (!evaluate_builtins(rule.builtins, subst)) {
            subst.truncate(mark);
            return;
        }

        PendingRule pending;
        for (const auto& l : rule.body) {
            Atom ground_atom = apply_subst(l.atom, subst);
            if (!ground_atom.is_ground()) {
                throw GroundingError("internal: non-ground literal after substitution in " + rule.to_string());
            }
            (l.positive ? pending.pos : pending.neg).push_back(std::move(ground_atom));
        }
        if (rule.head) {
            Atom head = apply_subst(*rule.head, subst);
            if (!head.is_ground()) {
                throw GroundingError("internal: non-ground head after substitution in " + rule.to_string());
            }
            derived_.add(head);
            if (derived_.total() > limits_.max_atoms) {
                throw GroundingError("grounding exceeded max_atoms limit");
            }
            pending.head = std::move(head);
        }

        std::string key = pending.key();
        if (seen_rules_.insert(std::move(key)).second) {
            pending_.push_back(std::move(pending));
            if (pending_.size() > limits_.max_rules) {
                throw GroundingError("grounding exceeded max_rules limit");
            }
        }
        subst.truncate(mark);
    }

    bool evaluate_builtins(const std::vector<Comparison>& builtins, Subst& subst) {
        std::vector<bool> done(builtins.size(), false);
        bool progress = true;
        std::size_t remaining = builtins.size();
        while (progress && remaining > 0) {
            progress = false;
            for (std::size_t i = 0; i < builtins.size(); ++i) {
                if (done[i]) continue;
                Term lhs = apply_subst(builtins[i].lhs, subst);
                Term rhs = apply_subst(builtins[i].rhs, subst);
                if (builtins[i].op == Comparison::Op::Eq && lhs.is_variable() && rhs.is_ground()) {
                    auto value = evaluate_arithmetic(rhs);
                    if (!value) return false;
                    subst.bind(lhs.symbol(), *value);
                } else if (lhs.is_ground() && rhs.is_ground()) {
                    auto result = Comparison(builtins[i].op, lhs, rhs).evaluate();
                    if (!result || !*result) return false;
                } else {
                    continue;  // wait for more bindings
                }
                done[i] = true;
                --remaining;
                progress = true;
            }
        }
        // Safety guarantees every builtin eventually grounds.
        return remaining == 0;
    }

    GroundProgram finalize() {
        GroundProgram gp;
        for (const auto& pending : pending_) {
            GroundRule rule;
            bool dropped = false;
            for (const auto& a : pending.neg) {
                if (!derived_.contains(a)) continue;  // atom underivable: "not a" trivially true
                rule.neg.push_back(gp.intern(a));
            }
            for (const auto& a : pending.pos) {
                if (!derived_.contains(a)) {  // defensive; cannot happen by construction
                    dropped = true;
                    break;
                }
                rule.pos.push_back(gp.intern(a));
            }
            if (dropped) continue;
            if (pending.head) rule.head = gp.intern(*pending.head);
            gp.add_rule(std::move(rule));
        }
        return gp;
    }

    // One flush per grounding keeps the instantiation loops atomics-free.
    void publish(std::size_t rounds) const {
        if (!obs::metrics_enabled()) return;
        auto& m = obs::metrics();
        static obs::Counter& groundings = m.counter("asp.grounder.groundings");
        static obs::Counter& rules = m.counter("asp.grounder.rules");
        static obs::Counter& atoms = m.counter("asp.grounder.atoms");
        static obs::Counter& round_counter = m.counter("asp.grounder.rounds");
        groundings.add(1);
        rules.add(pending_.size());
        atoms.add(derived_.total());
        round_counter.add(rounds);
    }

    const Program& program_;
    GroundingLimits limits_;
    DerivedAtoms derived_;
    std::vector<PendingRule> pending_;
    std::unordered_set<std::string> seen_rules_;
};

}  // namespace

GroundProgram ground(const Program& program, const GroundingLimits& limits) {
    return GrounderImpl(program, limits).run();
}

}  // namespace agenp::asp
