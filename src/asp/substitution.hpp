// Variable substitutions and one-way matching (pattern against ground atom).
//
// Header-only: these are the grounder's inner-loop primitives and benefit
// from inlining.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "asp/atom.hpp"

namespace agenp::asp {

// A small association list. Rules in this codebase rarely exceed a handful
// of variables, so linear scans beat hashing.
class Subst {
public:
    [[nodiscard]] const Term* lookup(Symbol var) const {
        for (const auto& [v, t] : bindings_) {
            if (v == var) return &t;
        }
        return nullptr;
    }

    void bind(Symbol var, Term value) { bindings_.emplace_back(var, std::move(value)); }

    [[nodiscard]] std::size_t size() const { return bindings_.size(); }
    void truncate(std::size_t n) { bindings_.resize(n); }

private:
    std::vector<std::pair<Symbol, Term>> bindings_;
};

// Matches `pattern` (may contain variables) against ground `value`,
// extending `subst`. On failure the substitution may be left partially
// extended; callers use size()/truncate() to roll back.
inline bool match_term(const Term& pattern, const Term& value, Subst& subst) {
    switch (pattern.kind()) {
        case Term::Kind::Variable: {
            if (const Term* bound = subst.lookup(pattern.symbol())) return *bound == value;
            subst.bind(pattern.symbol(), value);
            return true;
        }
        case Term::Kind::Integer:
            return value.is_integer() && value.int_value() == pattern.int_value();
        case Term::Kind::Constant:
            return value.is_constant() && value.symbol() == pattern.symbol();
        case Term::Kind::Compound: {
            if (!value.is_compound() || value.symbol() != pattern.symbol() ||
                value.args().size() != pattern.args().size()) {
                return false;
            }
            for (std::size_t i = 0; i < pattern.args().size(); ++i) {
                if (!match_term(pattern.args()[i], value.args()[i], subst)) return false;
            }
            return true;
        }
    }
    return false;
}

inline bool match_atom(const Atom& pattern, const Atom& value, Subst& subst) {
    if (pattern.predicate != value.predicate || pattern.annotation != value.annotation ||
        pattern.args.size() != value.args.size()) {
        return false;
    }
    for (std::size_t i = 0; i < pattern.args.size(); ++i) {
        if (!match_term(pattern.args[i], value.args[i], subst)) return false;
    }
    return true;
}

// Applies a substitution; unbound variables are left in place.
inline Term apply_subst(const Term& term, const Subst& subst) {
    switch (term.kind()) {
        case Term::Kind::Variable: {
            if (const Term* bound = subst.lookup(term.symbol())) return *bound;
            return term;
        }
        case Term::Kind::Compound: {
            TermList args;
            args.reserve(term.args().size());
            for (const auto& a : term.args()) args.push_back(apply_subst(a, subst));
            return Term::compound(term.symbol(), std::move(args));
        }
        default:
            return term;
    }
}

inline Atom apply_subst(const Atom& atom, const Subst& subst) {
    Atom out;
    out.predicate = atom.predicate;
    out.annotation = atom.annotation;
    out.args.reserve(atom.args.size());
    for (const auto& a : atom.args) out.args.push_back(apply_subst(a, subst));
    return out;
}

}  // namespace agenp::asp
