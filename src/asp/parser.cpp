#include "asp/parser.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace agenp::asp {
namespace {

enum class TokKind {
    Ident,     // lowercase identifier or quoted string
    Variable,  // uppercase/_ identifier
    Integer,
    Punct,  // one of :- . , ( ) @ = != < <= > >= + - * / and keyword handled via Ident
    End,
};

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    std::int64_t value = 0;
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(std::string_view text) : text_(text) {}

    Token next() {
        skip_ws_and_comments();
        Token t;
        t.line = line_;
        if (pos_ >= text_.size()) return t;
        char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) return lex_integer();
        if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) return lex_word();
        if (c == '"') return lex_quoted();
        return lex_punct();
    }

private:
    void skip_ws_and_comments() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '%') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
            } else {
                break;
            }
        }
    }

    Token lex_integer() {
        Token t;
        t.kind = TokKind::Integer;
        t.line = line_;
        std::size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        t.text = std::string(text_.substr(start, pos_ - start));
        t.value = std::stoll(t.text);
        return t;
    }

    Token lex_word() {
        Token t;
        t.line = line_;
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (text_[pos_] == '_' || std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
            ++pos_;
        }
        t.text = std::string(text_.substr(start, pos_ - start));
        t.kind = util::is_variable_name(t.text) ? TokKind::Variable : TokKind::Ident;
        return t;
    }

    Token lex_quoted() {
        Token t;
        t.kind = TokKind::Ident;
        t.line = line_;
        ++pos_;  // opening quote
        std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
        if (pos_ >= text_.size()) throw ParseError("unterminated string at line " + std::to_string(line_));
        t.text = std::string(text_.substr(start, pos_ - start));
        ++pos_;  // closing quote
        return t;
    }

    Token lex_punct() {
        Token t;
        t.kind = TokKind::Punct;
        t.line = line_;
        auto rest = text_.substr(pos_);
        for (std::string_view p : {":-", "!=", "<=", ">=", ".."}) {
            if (util::starts_with(rest, p)) {
                t.text = std::string(p);
                pos_ += p.size();
                return t;
            }
        }
        char c = text_[pos_];
        if (std::string_view(".,()@=<>+-*/").find(c) == std::string_view::npos) {
            throw ParseError(std::string("unexpected character '") + c + "' at line " + std::to_string(line_));
        }
        t.text = std::string(1, c);
        ++pos_;
        return t;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

class Parser {
public:
    explicit Parser(std::string_view text) : lexer_(text) { advance(); }

    Program parse_program() {
        Program prog;
        while (cur_.kind != TokKind::End) {
            Rule rule = parse_rule();
            expect_punct(".");
            expand_ranges(prog, rule);
        }
        return prog;
    }

    Rule parse_single_rule() {
        Rule r = parse_rule();
        if (is_punct(".")) advance();
        if (cur_.kind != TokKind::End) fail("trailing input after rule");
        return r;
    }

    Atom parse_single_atom() {
        Atom a = parse_atom();
        if (cur_.kind != TokKind::End) fail("trailing input after atom");
        return a;
    }

    Term parse_single_term() {
        Term t = parse_expression();
        if (cur_.kind != TokKind::End) fail("trailing input after term");
        return t;
    }

private:
    [[noreturn]] void fail(const std::string& message) {
        throw ParseError(message + " at line " + std::to_string(cur_.line) +
                         (cur_.text.empty() ? "" : " near '" + cur_.text + "'"));
    }

    void advance() { cur_ = lexer_.next(); }

    bool is_punct(std::string_view p) const { return cur_.kind == TokKind::Punct && cur_.text == p; }

    void expect_punct(std::string_view p) {
        if (!is_punct(p)) fail("expected '" + std::string(p) + "'");
        advance();
    }

    Rule parse_rule() {
        Rule rule;
        if (!is_punct(":-")) {
            rule.head = parse_atom();
        }
        if (is_punct(":-")) {
            advance();
            parse_body(rule);
        }
        return rule;
    }

    // `p(1..3, a).` expands into p(1,a). p(2,a). p(3,a). Ranges are fact
    // sugar only; anywhere else they are rejected.
    static bool is_range(const Term& t) {
        return t.is_compound() && t.symbol().str() == ".." && t.args().size() == 2;
    }

    static bool contains_range(const Term& t) {
        if (is_range(t)) return true;
        if (!t.is_compound()) return false;
        for (const auto& a : t.args()) {
            if (contains_range(a)) return true;
        }
        return false;
    }

    void expand_ranges(Program& prog, const Rule& rule) {
        bool has_range = false;
        if (rule.head) {
            for (const auto& a : rule.head->args) has_range |= contains_range(a);
        }
        auto reject_in_body = [&] {
            for (const auto& l : rule.body) {
                for (const auto& a : l.atom.args) {
                    if (contains_range(a)) {
                        throw ParseError("'..' intervals are only allowed in facts");
                    }
                }
            }
            for (const auto& c : rule.builtins) {
                if (contains_range(c.lhs) || contains_range(c.rhs)) {
                    throw ParseError("'..' intervals are only allowed in facts");
                }
            }
        };
        reject_in_body();
        if (!has_range) {
            prog.add(rule);
            return;
        }
        if (!rule.is_fact()) throw ParseError("'..' intervals are only allowed in facts");
        expand_fact(prog, *rule.head, 0);
    }

    void expand_fact(Program& prog, const Atom& atom, std::size_t from) {
        for (std::size_t i = from; i < atom.args.size(); ++i) {
            if (!is_range(atom.args[i])) continue;
            const auto& lo = atom.args[i].args()[0];
            const auto& hi = atom.args[i].args()[1];
            if (!lo.is_integer() || !hi.is_integer() || lo.int_value() > hi.int_value()) {
                throw ParseError("bad interval bounds in " + atom.to_string());
            }
            for (std::int64_t v = lo.int_value(); v <= hi.int_value(); ++v) {
                Atom instance = atom;
                instance.args[i] = Term::integer(v);
                expand_fact(prog, instance, i + 1);
            }
            return;
        }
        for (const auto& a : atom.args) {
            if (contains_range(a)) {
                throw ParseError("'..' intervals must be top-level arguments: " + atom.to_string());
            }
        }
        prog.add_fact(atom);
    }

    void parse_body(Rule& rule) {
        while (true) {
            parse_body_element(rule);
            if (!is_punct(",")) break;
            advance();
        }
    }

    void parse_body_element(Rule& rule) {
        if (cur_.kind == TokKind::Ident && cur_.text == "not") {
            advance();
            rule.body.push_back(Literal::neg(parse_atom()));
            return;
        }
        // Could be an atom or the left operand of a comparison. Parse an
        // expression first and decide by the following token.
        Term lhs = parse_expression();
        auto op = parse_comparison_op();
        if (op) {
            Term rhs = parse_expression();
            rule.builtins.emplace_back(*op, std::move(lhs), std::move(rhs));
            return;
        }
        rule.body.push_back(Literal::pos(term_to_atom(lhs)));
    }

    std::optional<Comparison::Op> parse_comparison_op() {
        if (cur_.kind != TokKind::Punct) return std::nullopt;
        std::optional<Comparison::Op> op;
        if (cur_.text == "=") op = Comparison::Op::Eq;
        else if (cur_.text == "!=") op = Comparison::Op::Ne;
        else if (cur_.text == "<") op = Comparison::Op::Lt;
        else if (cur_.text == "<=") op = Comparison::Op::Le;
        else if (cur_.text == ">") op = Comparison::Op::Gt;
        else if (cur_.text == ">=") op = Comparison::Op::Ge;
        if (op) advance();
        return op;
    }

    Atom term_to_atom(const Term& t) {
        Atom atom;
        if (t.is_constant()) {
            atom.predicate = t.symbol();
        } else if (t.is_compound()) {
            atom.predicate = t.symbol();
            atom.args = t.args();
        } else {
            fail("expected an atom");
        }
        // Optional ASG annotation: atom@k.
        if (is_punct("@")) {
            advance();
            if (cur_.kind != TokKind::Integer) fail("expected integer annotation after '@'");
            atom.annotation = static_cast<int>(cur_.value);
            if (atom.annotation < 1) fail("annotation must be >= 1");
            advance();
        }
        return atom;
    }

    Atom parse_atom() { return term_to_atom(parse_expression()); }

    // expression := mul_expr (('+'|'-') mul_expr)*
    Term parse_expression() {
        Term lhs = parse_mul_expr();
        while (is_punct("+") || is_punct("-")) {
            Symbol op(cur_.text);
            advance();
            Term rhs = parse_mul_expr();
            lhs = Term::compound(op, {std::move(lhs), std::move(rhs)});
        }
        return lhs;
    }

    // mul_expr := primary (('*'|'/') primary)*
    Term parse_mul_expr() {
        Term lhs = parse_primary();
        while (is_punct("*") || is_punct("/")) {
            Symbol op(cur_.text);
            advance();
            Term rhs = parse_primary();
            lhs = Term::compound(op, {std::move(lhs), std::move(rhs)});
        }
        return lhs;
    }

    Term parse_primary() {
        if (is_punct("-")) {  // unary minus
            advance();
            if (cur_.kind == TokKind::Integer) {
                Term t = Term::integer(-cur_.value);
                advance();
                return t;
            }
            Term inner = parse_primary();
            return Term::compound(Symbol("-"), {Term::integer(0), std::move(inner)});
        }
        if (is_punct("(")) {
            advance();
            Term t = parse_expression();
            expect_punct(")");
            return t;
        }
        if (cur_.kind == TokKind::Integer) {
            Term t = Term::integer(cur_.value);
            advance();
            // Interval sugar: `lo..hi` (expanded for facts in parse_program).
            if (is_punct("..")) {
                advance();
                if (cur_.kind != TokKind::Integer) fail("expected integer after '..'");
                Term hi = Term::integer(cur_.value);
                advance();
                return Term::compound(Symbol(".."), {std::move(t), std::move(hi)});
            }
            return t;
        }
        if (cur_.kind == TokKind::Variable) {
            Term t = Term::variable(Symbol(cur_.text));
            advance();
            return t;
        }
        if (cur_.kind == TokKind::Ident) {
            Symbol name(cur_.text);
            advance();
            if (is_punct("(")) {
                advance();
                TermList args;
                if (!is_punct(")")) {
                    while (true) {
                        args.push_back(parse_expression());
                        if (!is_punct(",")) break;
                        advance();
                    }
                }
                expect_punct(")");
                return Term::compound(name, std::move(args));
            }
            return Term::constant(name);
        }
        fail("expected a term");
    }

    Lexer lexer_;
    Token cur_;
};

}  // namespace

Program parse_program(std::string_view text) { return Parser(text).parse_program(); }

Rule parse_rule(std::string_view text) { return Parser(text).parse_single_rule(); }

Atom parse_atom(std::string_view text) { return Parser(text).parse_single_atom(); }

Term parse_term(std::string_view text) { return Parser(text).parse_single_term(); }

}  // namespace agenp::asp
