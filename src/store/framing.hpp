// On-disk record framing for the persistence subsystem (DESIGN.md §11).
//
// Every durable file (snapshot, WAL) is a flat sequence of framed records:
//
//   u32 payload_len (LE) | u32 crc32(payload) (LE) | payload bytes
//
// The frame is the unit of corruption detection: a reader walks records
// from the front and stops at the first frame whose length runs past EOF
// or whose CRC does not match. Everything before that point is trusted;
// everything after is a "torn tail" — the expected shape of a file whose
// writer was killed mid-append — and is discarded by the caller.
//
// Payload encoding is the caller's business (see snapshot.hpp / wal.hpp);
// this layer only moves validated byte strings. No dependencies beyond
// the standard library and POSIX file APIs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agenp::store {

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the checksum used by
// gzip/zlib/PNG. crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

// Frames cap individual payloads so a corrupt length field can never ask
// the reader to allocate gigabytes: payloads above this are invalid.
inline constexpr std::uint32_t kMaxRecordPayload = 64u << 20;

// Appends one framed record to `out`.
void append_record(std::string& out, std::string_view payload);

// Walks `data` from the front, appending each CRC-valid payload to
// `payloads`. Returns the number of bytes consumed by valid records; any
// remainder (data.size() - returned) is the torn/corrupt tail.
std::size_t read_records(std::string_view data, std::vector<std::string>* payloads);

// --- little-endian primitive encoding (payload building blocks) -------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_string(std::string& out, std::string_view s);  // u32 length + bytes

// Cursor-based decoding; every get_* returns false (leaving outputs
// untouched) on truncation instead of throwing, so a corrupt payload that
// passed its CRC (a writer bug, not disk damage) degrades to a parse
// error, never UB.
struct Cursor {
    std::string_view data;
    std::size_t pos = 0;
    [[nodiscard]] bool done() const { return pos >= data.size(); }
};

bool get_u8(Cursor& c, std::uint8_t* v);
bool get_u32(Cursor& c, std::uint32_t* v);
bool get_u64(Cursor& c, std::uint64_t* v);
bool get_string(Cursor& c, std::string* s);

// --- crash-safe file replacement --------------------------------------------

// Reads a whole file; returns false if it does not exist or cannot be
// read (errno message in *error when provided).
bool read_file(const std::string& path, std::string* contents, std::string* error);

// Writes `contents` to `path` crash-safely: write to `path + ".tmp"`,
// fsync the file, rename(2) over `path`, then fsync the parent directory
// so the rename itself is durable. A crash at any point leaves either the
// old complete file or the new complete file, never a mix.
bool atomic_write_file(const std::string& path, std::string_view contents, std::string* error);

}  // namespace agenp::store
