// Append-only write-ahead log for decision-cache inserts between
// snapshots (DESIGN.md §11).
//
// File shape: one header record (magic "AGNPWAL.", format version), then
// one framed cache-entry record per insert. Appends go through a single
// O_APPEND write(2) per record — the kernel appends atomically, so a
// kill -9 leaves at most one torn record at the tail, which replay
// detects by CRC and discards. Appends are NOT fsynced per record: the
// WAL bounds how much cache warmth a crash loses, it is not a
// transaction log, and a cache entry is always safe to lose (the next
// miss recomputes it).
//
// Replay walks the CRC-valid prefix and reports how many trailing bytes
// were discarded; the caller truncates the file back to the valid prefix
// before appending again, so one torn tail can never hide later records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.hpp"
#include "util/mutex.hpp"

namespace agenp::store {

inline constexpr std::string_view kWalMagic = "AGNPWAL.";
inline constexpr std::uint32_t kWalFormatVersion = 1;

struct WalReplay {
    bool present = false;  // the file existed
    std::vector<CacheEntryRecord> entries;
    std::size_t valid_bytes = 0;      // header + CRC-valid records
    std::size_t discarded_bytes = 0;  // torn/corrupt tail dropped
    std::string warning;              // non-empty when something was dropped
};

// Reads and validates the WAL at `path`. A missing file is a clean empty
// replay (present=false). A file whose header is unreadable or from a
// newer format replays as empty with the whole body discarded.
WalReplay replay_wal(const std::string& path);

// Appender. open() creates the file (mode 0600) with its header when
// missing or empty; truncate_to()/reset() keep the on-disk prefix
// CRC-clean across restarts and snapshots. Thread-safe: append() may be
// called concurrently from every worker thread.
class WalWriter {
public:
    ~WalWriter();

    // Opens (creating if needed) the WAL for appending. Returns false
    // with an errno message in *error.
    bool open(const std::string& path, std::string* error);

    // Appends one framed entry record; one write(2), no fsync.
    // Returns the framed size in bytes, or 0 on write failure.
    std::size_t append(const CacheEntryRecord& entry);

    // Truncates the file to `bytes` (drop a torn tail found by replay).
    bool truncate_to(std::size_t bytes);

    // Empties the log back to just its header (after a snapshot).
    bool reset();

    void close();
    [[nodiscard]] bool is_open() const {
        util::MutexLock lock(mu_);
        return fd_ >= 0;
    }

private:
    mutable util::Mutex mu_;
    int fd_ GUARDED_BY(mu_) = -1;
    std::string path_ GUARDED_BY(mu_);
};

}  // namespace agenp::store
