#include "store/snapshot.hpp"

#include "store/framing.hpp"

namespace agenp::store {

namespace {

enum RecordTag : std::uint8_t {
    kTagHeader = 1,
    kTagPolicy = 2,
    kTagEntry = 3,
    kTagFooter = 4,
};

std::string encode_header(const SnapshotData& data) {
    std::string p;
    put_u8(p, kTagHeader);
    p.append(kSnapshotMagic);
    put_u32(p, kSnapshotFormatVersion);
    put_u64(p, data.model_version);
    put_string(p, data.model_text);
    put_string(p, data.model_note);
    put_u64(p, data.repo_version);
    put_u8(p, data.repo_truncated ? 1 : 0);
    put_u64(p, data.created_unix_s);
    return p;
}

}  // namespace

std::string encode_snapshot(const SnapshotData& data) {
    std::string out;
    append_record(out, encode_header(data));
    std::string p;
    for (const auto& policy : data.policies) {
        p.clear();
        put_u8(p, kTagPolicy);
        put_string(p, policy.text);
        put_string(p, policy.source);
        put_u64(p, policy.version);
        append_record(out, p);
    }
    for (const auto& entry : data.entries) append_record(out, encode_cache_entry(entry));
    p.clear();
    put_u8(p, kTagFooter);
    put_u64(p, data.policies.size());
    put_u64(p, data.entries.size());
    append_record(out, p);
    return out;
}

std::string encode_cache_entry(const CacheEntryRecord& entry) {
    std::string p;
    put_u8(p, kTagEntry);
    put_string(p, entry.text);
    put_u64(p, entry.model_version);
    put_u8(p, entry.permitted ? 1 : 0);
    return p;
}

bool decode_cache_entry(std::string_view payload, CacheEntryRecord* entry) {
    Cursor c{payload};
    std::uint8_t tag = 0;
    std::uint8_t permitted = 0;
    if (!get_u8(c, &tag) || tag != kTagEntry) return false;
    if (!get_string(c, &entry->text) || !get_u64(c, &entry->model_version) ||
        !get_u8(c, &permitted)) {
        return false;
    }
    entry->permitted = permitted != 0;
    return true;
}

bool decode_snapshot(std::string_view bytes, SnapshotData* data, std::string* error) {
    std::vector<std::string> payloads;
    std::size_t valid = read_records(bytes, &payloads);
    if (valid != bytes.size()) {
        *error = "snapshot has " + std::to_string(bytes.size() - valid) +
                 " corrupt trailing bytes";
        return false;
    }
    if (payloads.empty()) {
        *error = "snapshot is empty";
        return false;
    }

    // Header.
    {
        Cursor c{payloads.front()};
        std::uint8_t tag = 0;
        if (!get_u8(c, &tag) || tag != kTagHeader) {
            *error = "snapshot does not start with a header record";
            return false;
        }
        if (c.data.size() < c.pos + kSnapshotMagic.size() ||
            c.data.substr(c.pos, kSnapshotMagic.size()) != kSnapshotMagic) {
            *error = "snapshot magic mismatch (not an agenp snapshot)";
            return false;
        }
        c.pos += kSnapshotMagic.size();
        std::uint32_t format = 0;
        if (!get_u32(c, &format)) {
            *error = "snapshot header truncated";
            return false;
        }
        if (format > kSnapshotFormatVersion) {
            *error = "snapshot format version " + std::to_string(format) +
                     " is newer than supported " + std::to_string(kSnapshotFormatVersion);
            return false;
        }
        std::uint8_t truncated = 0;
        if (!get_u64(c, &data->model_version) || !get_string(c, &data->model_text) ||
            !get_string(c, &data->model_note) || !get_u64(c, &data->repo_version) ||
            !get_u8(c, &truncated) || !get_u64(c, &data->created_unix_s)) {
            *error = "snapshot header truncated";
            return false;
        }
        data->repo_truncated = truncated != 0;
    }

    // Body + footer.
    bool saw_footer = false;
    std::uint64_t footer_policies = 0;
    std::uint64_t footer_entries = 0;
    for (std::size_t i = 1; i < payloads.size(); ++i) {
        Cursor c{payloads[i]};
        std::uint8_t tag = 0;
        if (!get_u8(c, &tag)) {
            *error = "snapshot record " + std::to_string(i) + " is empty";
            return false;
        }
        if (saw_footer) {
            *error = "snapshot has records after its footer";
            return false;
        }
        switch (tag) {
            case kTagPolicy: {
                PolicyRecord policy;
                if (!get_string(c, &policy.text) || !get_string(c, &policy.source) ||
                    !get_u64(c, &policy.version)) {
                    *error = "snapshot policy record " + std::to_string(i) + " truncated";
                    return false;
                }
                data->policies.push_back(std::move(policy));
                break;
            }
            case kTagEntry: {
                CacheEntryRecord entry;
                if (!decode_cache_entry(payloads[i], &entry)) {
                    *error = "snapshot cache record " + std::to_string(i) + " truncated";
                    return false;
                }
                data->entries.push_back(std::move(entry));
                break;
            }
            case kTagFooter: {
                if (!get_u64(c, &footer_policies) || !get_u64(c, &footer_entries)) {
                    *error = "snapshot footer truncated";
                    return false;
                }
                saw_footer = true;
                break;
            }
            default:
                // Unknown record tags from a same-major future writer would
                // land here; format-version gating above already rejects
                // files we cannot be sure about, so this is corruption.
                *error = "snapshot record " + std::to_string(i) + " has unknown tag " +
                         std::to_string(tag);
                return false;
        }
    }
    if (!saw_footer) {
        *error = "snapshot footer missing (file truncated?)";
        return false;
    }
    if (footer_policies != data->policies.size() || footer_entries != data->entries.size()) {
        *error = "snapshot footer counts disagree with records read";
        return false;
    }
    return true;
}

}  // namespace agenp::store
