// StateStore: the serving process's durable state directory (DESIGN.md
// §11). Owns one snapshot file and one WAL inside `--state-dir`:
//
//   <dir>/snapshot.agenp       last good full snapshot (atomic-renamed)
//   <dir>/snapshot.agenp.tmp   in-flight snapshot (transient)
//   <dir>/wal.agenp            cache inserts since that snapshot
//
// Lifecycle: construct (creates the directory 0700 — snapshot entries
// carry full request text, unlike the hash-only audit log, so the dir is
// private to the serving user), restore() once before taking traffic,
// then append_wal() per cache insert and save_snapshot() periodically /
// on drain. save_snapshot() writes the snapshot crash-safely FIRST and
// only then resets the WAL — a crash between the two merely replays WAL
// entries that the snapshot already contains, and cache restore is
// idempotent, so recovery never depends on that ordering.
//
// Observability: store.snapshot / store.restore spans; store.* counters
// and gauges in the process registry (exported as agenp_store_* by the
// Prometheus/graphite exposition).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace agenp::store {

struct StoreOptions {
    std::string dir;
};

// Point-in-time store state for SERVE_STATS_JSON / /statz / exposition.
struct StoreStatus {
    std::string dir;
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_failures = 0;
    std::uint64_t last_snapshot_unix_ms = 0;  // 0 = none this process
    std::uint64_t snapshot_bytes = 0;
    std::uint64_t snapshot_entries = 0;
    std::uint64_t snapshot_policies = 0;
    std::uint64_t wal_appends = 0;
    std::uint64_t wal_bytes = 0;
    bool restored = false;  // restore() found a usable snapshot or WAL
    std::uint64_t restored_entries = 0;      // snapshot + WAL entries handed back
    std::uint64_t wal_replayed = 0;          // entries recovered from the WAL
    std::uint64_t wal_discarded_bytes = 0;   // torn tail dropped on restore
};

struct RestoreResult {
    bool snapshot_loaded = false;
    SnapshotData data;  // snapshot state with WAL entries appended after
    std::uint64_t wal_replayed = 0;
    std::uint64_t wal_discarded_bytes = 0;
    // Human-readable, non-fatal: torn WAL tail, missing snapshot,
    // newer-format refusal. Empty on a fully clean restore.
    std::string warning;
};

class StateStore {
public:
    // Creates `options.dir` with mode 0700 when missing and opens the WAL
    // for appending. Throws std::runtime_error when the directory cannot
    // be created or the WAL cannot be opened.
    explicit StateStore(StoreOptions options);
    ~StateStore();

    StateStore(const StateStore&) = delete;
    StateStore& operator=(const StateStore&) = delete;

    // Loads the last good snapshot (if any) and replays the WAL's
    // CRC-valid prefix over it; truncates a torn WAL tail so subsequent
    // appends land on a clean prefix. Call once, before serving.
    RestoreResult restore();

    // Encodes and atomically replaces the snapshot, then resets the WAL.
    // Stamps data.created_unix_s itself. Returns false (with the reason
    // in *error) on I/O failure; the previous snapshot is untouched.
    bool save_snapshot(SnapshotData data, std::string* error);

    // Appends one cache insert to the WAL (called from worker threads).
    void append_wal(const CacheEntryRecord& entry);

    [[nodiscard]] StoreStatus status() const;
    [[nodiscard]] const std::string& dir() const { return options_.dir; }
    [[nodiscard]] std::string snapshot_path() const;
    [[nodiscard]] std::string wal_path() const;

private:
    StoreOptions options_;
    WalWriter wal_;

    std::atomic<std::uint64_t> snapshots_written_{0};
    std::atomic<std::uint64_t> snapshot_failures_{0};
    std::atomic<std::uint64_t> last_snapshot_unix_ms_{0};
    std::atomic<std::uint64_t> snapshot_bytes_{0};
    std::atomic<std::uint64_t> snapshot_entries_{0};
    std::atomic<std::uint64_t> snapshot_policies_{0};
    std::atomic<std::uint64_t> wal_appends_{0};
    std::atomic<std::uint64_t> wal_bytes_{0};
    std::atomic<bool> restored_{false};
    std::atomic<std::uint64_t> restored_entries_{0};
    std::atomic<std::uint64_t> wal_replayed_{0};
    std::atomic<std::uint64_t> wal_discarded_bytes_{0};
};

}  // namespace agenp::store
