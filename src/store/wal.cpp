#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/framing.hpp"
#include "util/errors.hpp"

namespace agenp::store {

namespace {

std::string encode_wal_header() {
    std::string p;
    p.append(kWalMagic);
    put_u32(p, kWalFormatVersion);
    return p;
}

}  // namespace

WalReplay replay_wal(const std::string& path) {
    WalReplay out;
    std::string bytes;
    if (!read_file(path, &bytes, nullptr)) return out;  // missing: clean empty
    out.present = true;

    std::vector<std::string> payloads;
    out.valid_bytes = read_records(bytes, &payloads);
    out.discarded_bytes = bytes.size() - out.valid_bytes;

    if (payloads.empty()) {
        // Nothing CRC-valid at all — treat the whole file as a torn tail.
        out.valid_bytes = 0;
        out.discarded_bytes = bytes.size();
        if (!bytes.empty()) out.warning = "wal has no valid header; discarding whole file";
        return out;
    }

    // Header record: magic + format version.
    {
        Cursor c{payloads.front()};
        bool magic_ok = c.data.size() >= kWalMagic.size() &&
                        c.data.substr(0, kWalMagic.size()) == kWalMagic;
        std::uint32_t format = 0;
        if (magic_ok) {
            c.pos = kWalMagic.size();
            magic_ok = get_u32(c, &format);
        }
        if (!magic_ok || format > kWalFormatVersion) {
            out.valid_bytes = 0;
            out.discarded_bytes = bytes.size();
            out.warning = magic_ok ? "wal format version " + std::to_string(format) +
                                         " is newer than supported " +
                                         std::to_string(kWalFormatVersion)
                                   : "wal header magic mismatch; discarding whole file";
            return out;
        }
    }

    for (std::size_t i = 1; i < payloads.size(); ++i) {
        CacheEntryRecord entry;
        if (!decode_cache_entry(payloads[i], &entry)) {
            // CRC-valid but undecodable: a writer bug, not disk damage.
            // Keep what decoded so far, flag the rest.
            out.warning = "wal record " + std::to_string(i) + " undecodable; later records kept";
            continue;
        }
        out.entries.push_back(std::move(entry));
    }
    if (out.discarded_bytes > 0 && out.warning.empty()) {
        out.warning =
            "wal torn tail: discarded " + std::to_string(out.discarded_bytes) + " trailing bytes";
    }
    return out;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::close() {
    util::MutexLock lock(mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

bool WalWriter::open(const std::string& path, std::string* error) {
    util::MutexLock lock(mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0600);
    if (fd_ < 0) {
        if (error) *error = "open " + path + ": " + util::errno_string();
        return false;
    }
    path_ = path;
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        std::string framed;
        append_record(framed, encode_wal_header());
        if (::write(fd_, framed.data(), framed.size()) != static_cast<ssize_t>(framed.size())) {
            if (error) *error = "write " + path + ": " + util::errno_string();
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        ::fsync(fd_);
    }
    return true;
}

std::size_t WalWriter::append(const CacheEntryRecord& entry) {
    std::string framed;
    append_record(framed, encode_cache_entry(entry));
    util::MutexLock lock(mu_);
    if (fd_ < 0) return 0;
    // One write(2) on an O_APPEND fd: the record lands contiguously, so a
    // crash can tear at most the record being written right now.
    ssize_t n = ::write(fd_, framed.data(), framed.size());
    return n == static_cast<ssize_t>(framed.size()) ? framed.size() : 0;
}

bool WalWriter::truncate_to(std::size_t bytes) {
    util::MutexLock lock(mu_);
    if (fd_ < 0) return false;
    if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) return false;
    // O_APPEND repositions on each write; nothing else to fix up.
    return true;
}

bool WalWriter::reset() {
    util::MutexLock lock(mu_);
    if (fd_ < 0) return false;
    if (::ftruncate(fd_, 0) != 0) return false;
    std::string framed;
    append_record(framed, encode_wal_header());
    if (::write(fd_, framed.data(), framed.size()) != static_cast<ssize_t>(framed.size())) {
        return false;
    }
    ::fsync(fd_);
    return true;
}

}  // namespace agenp::store
