#include "store/framing.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/errors.hpp"

namespace agenp::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

std::string errno_message(const char* what, const std::string& path) {
    return std::string(what) + " " + path + ": " + util::errno_string();
}

// Directory of `path` for the post-rename fsync ("." when bare filename).
std::string parent_dir(const std::string& path) {
    auto slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (unsigned char byte : data) c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_string(std::string& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

bool get_u8(Cursor& c, std::uint8_t* v) {
    if (c.pos + 1 > c.data.size()) return false;
    *v = static_cast<std::uint8_t>(c.data[c.pos++]);
    return true;
}

bool get_u32(Cursor& c, std::uint32_t* v) {
    if (c.pos + 4 > c.data.size()) return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
        out |= static_cast<std::uint32_t>(static_cast<unsigned char>(c.data[c.pos + i])) << (8 * i);
    }
    c.pos += 4;
    *v = out;
    return true;
}

bool get_u64(Cursor& c, std::uint64_t* v) {
    if (c.pos + 8 > c.data.size()) return false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
        out |= static_cast<std::uint64_t>(static_cast<unsigned char>(c.data[c.pos + i])) << (8 * i);
    }
    c.pos += 8;
    *v = out;
    return true;
}

bool get_string(Cursor& c, std::string* s) {
    std::uint32_t len = 0;
    if (!get_u32(c, &len)) return false;
    if (len > kMaxRecordPayload || c.pos + len > c.data.size()) return false;
    s->assign(c.data.substr(c.pos, len));
    c.pos += len;
    return true;
}

void append_record(std::string& out, std::string_view payload) {
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, crc32(payload));
    out.append(payload);
}

std::size_t read_records(std::string_view data, std::vector<std::string>* payloads) {
    Cursor c{data};
    std::size_t valid = 0;
    while (!c.done()) {
        std::uint32_t len = 0;
        std::uint32_t sum = 0;
        if (!get_u32(c, &len) || !get_u32(c, &sum)) break;
        if (len > kMaxRecordPayload || c.pos + len > data.size()) break;
        std::string_view payload = data.substr(c.pos, len);
        if (crc32(payload) != sum) break;
        c.pos += len;
        payloads->emplace_back(payload);
        valid = c.pos;
    }
    return valid;
}

bool read_file(const std::string& path, std::string* contents, std::string* error) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (error) *error = errno_message("open", path);
        return false;
    }
    contents->clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (error) *error = errno_message("read", path);
            ::close(fd);
            return false;
        }
        if (n == 0) break;
        contents->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

namespace {

bool write_all(int fd, std::string_view data, const std::string& path, std::string* error) {
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (error) *error = errno_message("write", path);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view contents, std::string* error) {
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
    if (fd < 0) {
        if (error) *error = errno_message("open", tmp);
        return false;
    }
    if (!write_all(fd, contents, tmp, error)) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::fsync(fd) != 0) {
        if (error) *error = errno_message("fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error) *error = errno_message("rename", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    // Make the rename itself durable: fsync the containing directory. A
    // failure here is logged by the caller but the data is already safely
    // in place for the common (no power loss) case.
    int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
    return true;
}

}  // namespace agenp::store
