// Snapshot payload format: the full serving state of one AmsRouter as a
// flat record stream (DESIGN.md §11).
//
//   Header  (tag 1)  magic "AGNPSNAP", format version, model version,
//                    model text (serialized ASG, empty = no learned
//                    model), model note, repository version + truncated
//                    flag, creation wall-clock seconds
//   Policy  (tag 2)  one stored policy: text, source, stamping version
//   Entry   (tag 3)  one decision-cache entry: key text, model version,
//                    verdict — the exact triple DecisionCache keeps in
//                    memory, so restored entries invalidate lazily on
//                    version mismatch exactly like live ones
//   Footer  (tag 4)  policy + entry counts
//
// A snapshot is valid only when the header parses, the format version is
// one we know, and the footer's counts match what was read — a file that
// ends without its footer (torn writer, truncated copy) is rejected as a
// whole rather than half-loaded, because atomic_write_file means a good
// snapshot is always all-or-nothing on disk.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agenp::store {

inline constexpr std::string_view kSnapshotMagic = "AGNPSNAP";
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

// One decision-cache entry, exactly as DecisionCache stores it.
struct CacheEntryRecord {
    std::string text;  // request tokens + '\x1f' + context program
    std::uint64_t model_version = 0;
    bool permitted = false;
};

// One policy-repository entry (tokens re-tokenized from text on restore).
struct PolicyRecord {
    std::string text;
    std::string source;
    std::uint64_t version = 0;
};

struct SnapshotData {
    std::uint64_t model_version = 0;
    std::string model_text;  // asg::AnswerSetGrammar::to_string(); "" = none
    std::string model_note;
    std::uint64_t repo_version = 0;
    bool repo_truncated = false;
    std::uint64_t created_unix_s = 0;
    std::vector<PolicyRecord> policies;
    std::vector<CacheEntryRecord> entries;
};

// Serializes `data` as a framed record stream ready for atomic_write_file.
std::string encode_snapshot(const SnapshotData& data);

// Parses a snapshot file's bytes. On failure returns false with a
// one-line reason in *error ("snapshot format version 9 is newer than
// supported 1", "snapshot footer missing", ...); *data is unspecified.
bool decode_snapshot(std::string_view bytes, SnapshotData* data, std::string* error);

// The tagged cache-entry payload is shared with the WAL: a WAL record is
// exactly one snapshot Entry record, so replay reuses this pair.
std::string encode_cache_entry(const CacheEntryRecord& entry);
bool decode_cache_entry(std::string_view payload, CacheEntryRecord* entry);

}  // namespace agenp::store
