#include "store/store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/framing.hpp"
#include "util/errors.hpp"

namespace agenp::store {

namespace {

std::uint64_t wall_unix_ms() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                          std::chrono::system_clock::now().time_since_epoch())
                                          .count());
}

}  // namespace

StateStore::StateStore(StoreOptions options) : options_(std::move(options)) {
    if (options_.dir.empty()) throw std::runtime_error("state store needs a directory");
    // 0700: snapshot entries contain full request text (the audit log
    // stores only hashes), so the state dir is private to the serving user.
    if (::mkdir(options_.dir.c_str(), 0700) != 0 && errno != EEXIST) {
        throw std::runtime_error("cannot create state dir " + options_.dir + ": " +
                                 util::errno_string());
    }
    std::string error;
    if (!wal_.open(wal_path(), &error)) {
        throw std::runtime_error("cannot open wal: " + error);
    }
}

StateStore::~StateStore() = default;

std::string StateStore::snapshot_path() const { return options_.dir + "/snapshot.agenp"; }
std::string StateStore::wal_path() const { return options_.dir + "/wal.agenp"; }

RestoreResult StateStore::restore() {
    obs::ScopedSpan span("store.restore");
    RestoreResult out;

    std::string bytes;
    if (read_file(snapshot_path(), &bytes, nullptr)) {
        std::string error;
        SnapshotData data;
        if (decode_snapshot(bytes, &data, &error)) {
            out.snapshot_loaded = true;
            out.data = std::move(data);
            snapshot_bytes_.store(bytes.size(), std::memory_order_relaxed);
            snapshot_entries_.store(out.data.entries.size(), std::memory_order_relaxed);
            snapshot_policies_.store(out.data.policies.size(), std::memory_order_relaxed);
        } else {
            out.warning = "ignoring snapshot: " + error;
        }
    }

    WalReplay replay = replay_wal(wal_path());
    out.wal_replayed = replay.entries.size();
    out.wal_discarded_bytes = replay.discarded_bytes;
    // WAL entries are newer than the snapshot: append after, so a restore
    // that inserts in order lets the WAL verdicts win on duplicate keys.
    for (auto& entry : replay.entries) out.data.entries.push_back(std::move(entry));
    if (!replay.warning.empty()) {
        if (!out.warning.empty()) out.warning += "; ";
        out.warning += replay.warning;
    }
    if (replay.discarded_bytes > 0) {
        // Drop the torn tail on disk too, so new appends extend a clean
        // CRC-valid prefix instead of hiding behind the corruption.
        wal_.truncate_to(replay.valid_bytes);
        if (replay.valid_bytes == 0) wal_.reset();
    }

    bool restored = out.snapshot_loaded || out.wal_replayed > 0;
    restored_.store(restored, std::memory_order_relaxed);
    restored_entries_.store(out.data.entries.size(), std::memory_order_relaxed);
    wal_replayed_.store(out.wal_replayed, std::memory_order_relaxed);
    wal_discarded_bytes_.store(out.wal_discarded_bytes, std::memory_order_relaxed);

    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.counter("store.restores").add(1);
        m.counter("store.restored_entries").add(out.data.entries.size());
        m.counter("store.wal_replayed_entries").add(out.wal_replayed);
        m.counter("store.wal_discarded_bytes").add(out.wal_discarded_bytes);
    }
    return out;
}

bool StateStore::save_snapshot(SnapshotData data, std::string* error) {
    obs::ScopedSpan span("store.snapshot");
    data.created_unix_s = wall_unix_ms() / 1000;
    std::string bytes = encode_snapshot(data);
    std::string io_error;
    if (!atomic_write_file(snapshot_path(), bytes, &io_error)) {
        snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) obs::metrics().counter("store.snapshot_failures").add(1);
        if (error) *error = io_error;
        return false;
    }
    // Snapshot is durable; the WAL's entries are all covered by it now.
    // A crash before this reset only replays duplicates, which restore
    // handles idempotently.
    wal_.reset();
    wal_bytes_.store(0, std::memory_order_relaxed);

    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
    last_snapshot_unix_ms_.store(wall_unix_ms(), std::memory_order_relaxed);
    snapshot_bytes_.store(bytes.size(), std::memory_order_relaxed);
    snapshot_entries_.store(data.entries.size(), std::memory_order_relaxed);
    snapshot_policies_.store(data.policies.size(), std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.counter("store.snapshots").add(1);
        m.gauge("store.snapshot_bytes").set(static_cast<std::int64_t>(bytes.size()));
        m.gauge("store.snapshot_entries").set(static_cast<std::int64_t>(data.entries.size()));
        m.gauge("store.wal_bytes").set(0);
    }
    return true;
}

void StateStore::append_wal(const CacheEntryRecord& entry) {
    std::size_t written = wal_.append(entry);
    if (written == 0) return;
    wal_appends_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t total = wal_bytes_.fetch_add(written, std::memory_order_relaxed) + written;
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.counter("store.wal_appends").add(1);
        m.gauge("store.wal_bytes").set(static_cast<std::int64_t>(total));
    }
}

StoreStatus StateStore::status() const {
    StoreStatus out;
    out.dir = options_.dir;
    out.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
    out.snapshot_failures = snapshot_failures_.load(std::memory_order_relaxed);
    out.last_snapshot_unix_ms = last_snapshot_unix_ms_.load(std::memory_order_relaxed);
    out.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
    out.snapshot_entries = snapshot_entries_.load(std::memory_order_relaxed);
    out.snapshot_policies = snapshot_policies_.load(std::memory_order_relaxed);
    out.wal_appends = wal_appends_.load(std::memory_order_relaxed);
    out.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
    out.restored = restored_.load(std::memory_order_relaxed);
    out.restored_entries = restored_entries_.load(std::memory_order_relaxed);
    out.wal_replayed = wal_replayed_.load(std::memory_order_relaxed);
    out.wal_discarded_bytes = wal_discarded_bytes_.load(std::memory_order_relaxed);
    return out;
}

}  // namespace agenp::store
