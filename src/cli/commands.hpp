// The `agenp` command-line tool, as testable library functions.
//
//   agenp solve <program.lp> [--models N]
//   agenp membership <grammar.asg> --string "do patrol" [--context ctx.lp]
//   agenp generate <grammar.asg> [--context ctx.lp] [--max N]
//   agenp learn <task.agenp> [--out learned.asg]
//   agenp lint <file.asg|file.lp> [--context ctx.lp] [--json] [--strict]
//   agenp quickstart
//   agenp serve <grammar.asg> [--context ctx.lp] [--threads N] [--cache-mb M] [--no-cache]
//               [--cache-shards N] [--no-memo] [--memo-mb M]
//               [--trace-slow-ms MS] [--trace-sample N] [--stats-every SEC]
//               [--listen PORT] [--replicas N]
//               [--metrics-listen PORT] [--metrics-push HOST:PORT] [--metrics-every SEC]
//               [--audit-log FILE] [--audit-max-mb M] [--audit-sample N]
//               [--state-dir DIR] [--snapshot-every SEC]
//   agenp loadgen [--threads N] [--clients N] [--requests N] [--distinct K]
//                 [--cache-mb M] [--no-cache] [--cache-shards N]
//                 [--no-memo] [--memo-mb M] [--connect HOST:PORT]
//
// Global flags (any command):
//   --stats            print the metrics-registry dump after the command
//   --trace-out=FILE   record spans and write Chrome trace-event JSON
//                      (open in chrome://tracing or ui.perfetto.dev)
//
// Serve-mode observability: request lines starting with '!' are control
// lines — `!stats` prints a SERVE_STATS_JSON line (service + cache + lock
// contention), `!flight` prints a FLIGHT_JSON line (the recent-request
// ring), `!trace <file>` writes captured slow-request span trees as
// Chrome trace JSON, `!snapshot` persists the serving state to the
// `--state-dir` (SNAPSHOT_JSON reply). The tail-capture knobs default from the environment:
// AGENP_TRACE_SLOW_MS (capture trees for requests slower than this) and
// AGENP_TRACE_SAMPLE (also capture every Nth request); --trace-slow-ms /
// --trace-sample override. --stats-every SEC starts a reporter thread
// that prints SERVE_STATS_JSON every SEC seconds.
//
// The learn-task file format is line-oriented with #section headers:
//
//   #grammar
//   request -> "do" task
//   task -> "patrol" { requires(2). }
//   #bias
//   body requires var(lvl) @2
//   body maxloa var(lvl)
//   compare lvl gt varvar
//   max_body 2
//   max_vars 2
//   #positive
//   do patrol | maxloa(3).
//   #negative
//   do strike | maxloa(3).
//
// Bias lines: `body <pred> <arg>... [@k] [neg]` with args `var(type)`,
// `const(pool)` or a literal term; `head <pred> <arg>...` plus
// `no_constraints`; `compare <type> <op>... [varvar] [varconst]` with ops
// lt le gt ge eq ne; `const <pool> <term>...`; `max_body`, `min_body`,
// `max_vars`, `max_comparisons`. Example lines: `tokens | inline context.`
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <string>
#include <vector>

#include "ilp/learner.hpp"

namespace agenp::cli {

struct CliError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

// Parses a learn-task file's text. Throws CliError on format errors.
ilp::LearningTask parse_task_file(std::string_view text);

// Individual commands; each writes human-readable output and returns the
// process exit code.
int cmd_solve(const std::string& program_path, std::size_t max_models, std::ostream& out);
int cmd_membership(const std::string& grammar_path, const std::string& sentence,
                   const std::string& context_path, std::ostream& out);
int cmd_generate(const std::string& grammar_path, const std::string& context_path,
                 std::size_t max_strings, std::ostream& out);
int cmd_learn(const std::string& task_path, const std::string& out_path, std::ostream& out);

// Static analysis (DESIGN.md §9) over a policy file: `.lp` files get the
// ASP program passes, everything else parses as an ASG and gets the full
// grammar + annotation analysis. `--context ctx.lp` declares the context's
// head predicates as externally supplied (suppresses ASP002/ASP003 for
// them); `--json` renders the machine-readable report; `--strict` also
// fails on warnings. Exit 0 = clean, 1 = findings at the gating severity,
// 2 = unreadable/unparseable input.
int cmd_lint(const std::string& path, const std::string& context_path, bool json, bool strict,
             std::ostream& out);

//   agenp evaluate <schema.xs> <policy.xp> --request "role=doctor hour=3"
// Exit code 0 = Permit, 1 = anything else.
int cmd_evaluate(const std::string& schema_path, const std::string& policy_path,
                 const std::string& request_text, std::ostream& out);

// Runs the Figure-1 workflow end to end on a built-in example domain:
// PAdaP learns a GPM from examples, PReP materializes policies, the
// PDP/PEP serve requests. Pairs with --stats/--trace-out to show the
// per-phase AGENP telemetry.
int cmd_quickstart(std::ostream& out);

struct ServeCliOptions {
    std::string grammar_path;
    std::string context_path;
    std::size_t threads = 4;
    std::size_t cache_mb = 64;
    bool use_cache = true;
    std::uint64_t trace_slow_ms = 0;  // tail-capture threshold (0 = off)
    std::size_t trace_sample = 0;     // capture every Nth request (0 = off)
    std::size_t stats_every_s = 0;    // periodic SERVE_STATS_JSON reporter (0 = off)
    // TCP mode (--listen): accept wire-protocol connections instead of
    // reading stdin. Port 0 binds an ephemeral port, printed on the
    // `AGENP_LISTENING port=N` line.
    bool listen = false;
    std::uint16_t listen_port = 0;
    std::size_t replicas = 1;  // AMS replicas behind the AmsRouter
    // HTTP telemetry surface (--metrics-listen): GET /metrics serves the
    // Prometheus text exposition, /healthz liveness + drain state (503
    // while draining), /statz the SERVE_STATS_JSON body. Port 0 binds an
    // ephemeral port, printed on the `AGENP_METRICS_LISTENING port=N`
    // line. Works in both stdin and listen mode.
    bool metrics_listen = false;
    std::uint16_t metrics_listen_port = 0;
    // Graphite push mode (--metrics-push HOST:PORT): renders the same
    // exposition as plaintext `path value timestamp` lines every
    // `metrics_every_s` seconds.
    std::string metrics_push_host;
    std::uint16_t metrics_push_port = 0;
    std::size_t metrics_every_s = 10;
    // Decision audit log (--audit-log FILE): NDJSON, one line per finished
    // request, rotated to FILE.1 when audit_max_mb is crossed;
    // audit_sample = N keeps every Nth entry.
    std::string audit_path;
    std::size_t audit_max_mb = 64;
    std::size_t audit_sample = 1;
    // Warm restarts (--state-dir DIR): restore the decision cache, policy
    // repository, and model version from DIR on startup, append cache
    // inserts to a WAL, and write a crash-safe snapshot every
    // `snapshot_every_s` seconds (0 = only on drain and `!snapshot`).
    // The directory is created 0700 — snapshots hold full request text.
    std::string state_dir;
    std::size_t snapshot_every_s = 0;
    // Decision-cache shard count (0 = the CacheOptions default of 16;
    // rounded up to a power of two).
    std::size_t cache_shards = 0;
    // Grounding memo on the cache-miss path (--no-memo disables,
    // --memo-mb sizes the budget). See docs/PERFORMANCE.md.
    bool use_memo = true;
    std::size_t memo_mb = 32;
    // Continuous CPU profiling (--prof-hz HZ, 0 = off): start the SIGPROF
    // sampler at HZ for the life of the process. Independently of this
    // flag, `!prof start|stop|status` toggles profiling at runtime and
    // `GET /profz?seconds=N&hz=H` takes a one-shot profile over the
    // metrics listener.
    std::size_t prof_hz = 0;
    // Test hooks. `shutdown_fd`: in listen mode, poll this descriptor
    // instead of installing SIGTERM/SIGINT handlers — one readable byte
    // (or EOF) triggers the graceful drain. `announce_port`: when set,
    // the bound port is also published here; `metrics_announce_port`
    // likewise for the metrics HTTP port.
    int shutdown_fd = -1;
    std::atomic<std::uint16_t>* announce_port = nullptr;
    std::atomic<std::uint16_t>* metrics_announce_port = nullptr;
};

// PDP-as-a-service. Stdin mode (default): one request per line in, one
// decision per line out — a plain token-string line is answered with the
// outcome name, a `{...}` wire-protocol line (docs/PROTOCOL.md) with the
// JSON reply, and '!'-prefixed control lines query the running service
// (see the header comment). A summary with throughput and cache hit rate
// is printed at EOF. Listen mode (--listen): serves the same line
// protocol over TCP until SIGTERM/SIGINT, then drains gracefully.
// `cache_mb == 0` with `use_cache` still enables a minimal cache; pass
// use_cache=false to disable it.
int cmd_serve(const ServeCliOptions& options, std::istream& in, std::ostream& out);

struct LoadgenCliOptions {
    std::size_t threads = 4;  // in-process service workers (ignored with --connect)
    std::size_t clients = 4;
    std::size_t requests_per_client = 250;
    std::size_t distinct = 8;
    std::size_t cache_mb = 64;
    bool use_cache = true;
    std::size_t cache_shards = 0;  // 0 = the CacheOptions default of 16
    bool use_memo = true;          // --no-memo: ground+solve every cache miss
    std::size_t memo_mb = 32;      // grounding-memo budget (in-process mode)
    // Non-empty host: drive a remote `agenp serve --listen` server over
    // TCP instead of an in-process service.
    std::string connect_host;
    std::uint16_t connect_port = 0;
};

// Closed-loop load generator against the built-in demo serving domain
// (in-process by default, over TCP with --connect); prints the
// human-readable report plus one `LOADGEN_JSON {...}` line. Exit code 1
// when any response was dropped.
int cmd_loadgen(const LoadgenCliOptions& options, std::ostream& out);

// argv-level dispatcher (used by main and by tests).
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

// Reads a whole file; throws CliError when unreadable.
std::string read_file(const std::string& path);

}  // namespace agenp::cli
