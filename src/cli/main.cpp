// Entry point for the `agenp` command-line tool; all logic lives in
// cli/commands.cpp so it can be unit-tested.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
    return agenp::cli::run(args, std::cout, std::cerr);
}
