#include "cli/commands.hpp"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "agenp/ams.hpp"
#include "analysis/lint.hpp"
#include "asg/generate.hpp"
#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "obs/build.hpp"
#include "obs/costtable.hpp"
#include "obs/export/http.hpp"
#include "obs/export/push.hpp"
#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "srv/audit.hpp"
#include "srv/export.hpp"
#include "srv/flight.hpp"
#include "srv/loadgen.hpp"
#include "srv/router.hpp"
#include "srv/service.hpp"
#include "srv/transport.hpp"
#include "srv/wire.hpp"
#include "store/store.hpp"
#include "util/strings.hpp"
#include "xacml/evaluator.hpp"
#include "xacml/text_format.hpp"

namespace agenp::cli {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw CliError("cannot read file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

namespace {

asp::Comparison::Op parse_op(const std::string& word) {
    if (word == "lt") return asp::Comparison::Op::Lt;
    if (word == "le") return asp::Comparison::Op::Le;
    if (word == "gt") return asp::Comparison::Op::Gt;
    if (word == "ge") return asp::Comparison::Op::Ge;
    if (word == "eq") return asp::Comparison::Op::Eq;
    if (word == "ne") return asp::Comparison::Op::Ne;
    throw CliError("unknown comparison op '" + word + "' (use lt le gt ge eq ne)");
}

// `body pred var(t) const(p) term @2 neg` -> ModeAtom.
ilp::ModeAtom parse_mode_atom(const std::vector<std::string>& words, std::size_t from) {
    if (from >= words.size()) throw CliError("mode atom needs a predicate");
    ilp::ModeAtom atom;
    atom.predicate = asp::Symbol(words[from]);
    for (std::size_t i = from + 1; i < words.size(); ++i) {
        const std::string& w = words[i];
        if (w == "neg") {
            atom.allow_negated = true;
        } else if (!w.empty() && w[0] == '@') {
            atom.annotation = std::stoi(w.substr(1));
        } else if (util::starts_with(w, "var(") && w.back() == ')') {
            atom.args.push_back(ilp::ArgSpec::var(w.substr(4, w.size() - 5)));
        } else if (util::starts_with(w, "const(") && w.back() == ')') {
            atom.args.push_back(ilp::ArgSpec::constant(w.substr(6, w.size() - 7)));
        } else {
            atom.args.push_back(ilp::ArgSpec::fixed_term(asp::parse_term(w)));
        }
    }
    return atom;
}

ilp::HypothesisSpace parse_bias(const std::vector<std::string>& lines,
                                const std::vector<int>& targets) {
    ilp::ModeBias bias;
    for (const auto& line : lines) {
        auto words = util::split_ws(line);
        if (words.empty()) continue;
        const std::string& kind = words[0];
        if (kind == "body") {
            bias.body.push_back(parse_mode_atom(words, 1));
        } else if (kind == "head") {
            bias.head.push_back(parse_mode_atom(words, 1));
        } else if (kind == "no_constraints") {
            bias.allow_constraints = false;
        } else if (kind == "compare") {
            if (words.size() < 3) throw CliError("compare needs: compare <type> <op>... [varvar] [varconst]");
            ilp::ComparisonMode cm;
            cm.type = asp::Symbol(words[1]);
            cm.var_vs_const = false;
            cm.var_vs_var = false;
            for (std::size_t i = 2; i < words.size(); ++i) {
                if (words[i] == "varvar") {
                    cm.var_vs_var = true;
                } else if (words[i] == "varconst") {
                    cm.var_vs_const = true;
                } else {
                    cm.ops.push_back(parse_op(words[i]));
                }
            }
            if (!cm.var_vs_var && !cm.var_vs_const) cm.var_vs_const = true;
            bias.comparisons.push_back(std::move(cm));
        } else if (kind == "const") {
            if (words.size() < 3) throw CliError("const needs: const <pool> <term>...");
            for (std::size_t i = 2; i < words.size(); ++i) {
                bias.constants[asp::Symbol(words[1])].push_back(asp::parse_term(words[i]));
            }
        } else if (kind == "max_body") {
            bias.max_body_atoms = std::stoi(words.at(1));
        } else if (kind == "min_body") {
            bias.min_body_atoms = std::stoi(words.at(1));
        } else if (kind == "max_vars") {
            bias.max_vars = std::stoi(words.at(1));
        } else if (kind == "max_comparisons") {
            bias.max_comparisons = std::stoi(words.at(1));
        } else {
            throw CliError("unknown bias directive '" + kind + "'");
        }
    }
    return ilp::generate_space(bias, targets);
}

ilp::Example parse_example(const std::string& line) {
    auto bar = line.find('|');
    std::string tokens = bar == std::string::npos ? line : line.substr(0, bar);
    std::string context = bar == std::string::npos ? "" : line.substr(bar + 1);
    return {cfg::tokenize(tokens), asp::parse_program(context)};
}

}  // namespace

ilp::LearningTask parse_task_file(std::string_view text) {
    std::map<std::string, std::vector<std::string>> sections;
    std::string current;
    for (const auto& raw : util::split(text, '\n')) {
        auto line = util::trim(raw);
        if (line.empty()) continue;
        if (line[0] == '#') {
            current = std::string(util::trim(line.substr(1)));
            continue;
        }
        if (current.empty()) throw CliError("content before the first #section header");
        sections[current].emplace_back(line);
    }
    if (!sections.contains("grammar")) throw CliError("missing #grammar section");
    if (!sections.contains("bias")) throw CliError("missing #bias section");

    ilp::LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(util::join(sections["grammar"], "\n"));
    // Targets: optional `#targets` section of production indices; default
    // is the start production 0.
    std::vector<int> targets = {0};
    if (sections.contains("targets")) {
        targets.clear();
        for (const auto& line : sections["targets"]) {
            for (const auto& w : util::split_ws(line)) targets.push_back(std::stoi(w));
        }
    }
    task.space = parse_bias(sections["bias"], targets);
    for (const auto& line : sections["positive"]) task.positive.push_back(parse_example(line));
    for (const auto& line : sections["negative"]) task.negative.push_back(parse_example(line));
    return task;
}

int cmd_solve(const std::string& program_path, std::size_t max_models, std::ostream& out) {
    auto program = asp::parse_program(read_file(program_path));
    auto gp = asp::ground(program);
    auto result = asp::solve(gp, {.max_models = max_models});
    if (result.models.empty()) {
        out << "UNSATISFIABLE\n";
        return 1;
    }
    for (std::size_t i = 0; i < result.models.size(); ++i) {
        out << "answer set " << (i + 1) << ": ";
        bool first = true;
        for (const auto& atom : asp::model_to_strings(gp, result.models[i])) {
            if (!first) out << " ";
            out << atom;
            first = false;
        }
        out << "\n";
    }
    return 0;
}

int cmd_membership(const std::string& grammar_path, const std::string& sentence,
                   const std::string& context_path, std::ostream& out) {
    auto grammar = asg::AnswerSetGrammar::parse(read_file(grammar_path));
    asp::Program context;
    if (!context_path.empty()) context = asp::parse_program(read_file(context_path));
    bool accepted = asg::in_language(grammar, cfg::tokenize(sentence), context);
    out << (accepted ? "ACCEPTED" : "REJECTED") << "\n";
    return accepted ? 0 : 1;
}

int cmd_generate(const std::string& grammar_path, const std::string& context_path,
                 std::size_t max_strings, std::ostream& out) {
    auto grammar = asg::AnswerSetGrammar::parse(read_file(grammar_path));
    asp::Program context;
    if (!context_path.empty()) context = asp::parse_program(read_file(context_path));
    asg::LanguageOptions options;
    options.enumeration.max_strings = max_strings;
    auto result = asg::language(grammar, context, options);
    for (const auto& s : result.strings) out << cfg::detokenize(s) << "\n";
    if (result.truncated) out << "(truncated)\n";
    return 0;
}

int cmd_learn(const std::string& task_path, const std::string& out_path, std::ostream& out) {
    auto task = parse_task_file(read_file(task_path));
    auto result = ilp::learn(task);
    if (!result.found) {
        out << "NO HYPOTHESIS: " << result.failure_reason << "\n";
        return 1;
    }
    out << "hypothesis (cost " << result.cost << "):\n" << result.hypothesis_to_string();
    if (!out_path.empty()) {
        auto learned = task.initial.with_rules(result.hypothesis);
        std::ofstream file(out_path);
        if (!file) throw CliError("cannot write: " + out_path);
        file << learned.to_string();
        out << "learned grammar written to " << out_path << "\n";
    }
    return 0;
}

int cmd_lint(const std::string& path, const std::string& context_path, bool json, bool strict,
             std::ostream& out) {
    analysis::LintOptions options;
    if (!context_path.empty()) {
        auto context = asp::parse_program(read_file(context_path));
        for (const auto& rule : context.rules()) {
            if (rule.head) options.external_predicates.push_back(rule.head->predicate);
        }
    }
    std::string text = read_file(path);
    analysis::DiagnosticSink sink = path.ends_with(".lp")
                                        ? analysis::lint_program(asp::parse_program(text), options)
                                        : analysis::lint_asg(asg::AnswerSetGrammar::parse(text), options);
    if (json) {
        out << sink.render_json() << "\n";
    } else {
        out << sink.render_text();
    }
    return sink.fails(strict) ? 1 : 0;
}

int cmd_quickstart(std::ostream& out) {
    // Step 0: the ASP substrate on a program with real search (three even
    // loops -> 8 answer sets), so solver decision/propagation counts are
    // nonzero in --stats.
    auto demo = asp::parse_program(R"(
        p0 :- not q0.  q0 :- not p0.
        p1 :- not q1.  q1 :- not p1.
        p2 :- not q2.  q2 :- not p2.
    )");
    auto solved = asp::solve(asp::ground(demo), {.max_models = 0});
    out << "ASP warm-up: " << solved.models.size() << " answer sets ("
        << solved.stats.decisions << " decisions, " << solved.stats.propagations
        << " propagations, " << solved.stats.backtracks << " backtracks)\n";

    // The quickstart domain (examples/quickstart.cpp), driven through the
    // full AGENP loop so every phase shows up in --stats/--trace-out.
    auto initial = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task
        task -> "patrol"  { requires(2). }
        task -> "strike"  { requires(4). }
        task -> "observe" { requires(1). }
    )");
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt}, /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;

    framework::AutonomousManagedSystem ams("quickstart", initial, ilp::generate_space(bias, {0}));
    auto ctx = [](int maxloa) {
        return asp::parse_program("maxloa(" + std::to_string(maxloa) + ").");
    };
    ams.pip().add_source("env", [&ctx] { return ctx(3); });

    std::vector<ilp::Example> positive;
    positive.emplace_back(cfg::tokenize("do patrol"), ctx(3));
    positive.emplace_back(cfg::tokenize("do strike"), ctx(5));
    positive.emplace_back(cfg::tokenize("do observe"), ctx(1));
    std::vector<ilp::Example> negative;
    negative.emplace_back(cfg::tokenize("do strike"), ctx(3));
    negative.emplace_back(cfg::tokenize("do patrol"), ctx(1));

    auto outcome = ams.learn_model(positive, negative);
    if (!outcome.adapted) {
        out << "learning failed: " << outcome.reason << "\n";
        return 1;
    }
    out << "PAdaP adopted GPM v" << outcome.new_version << " (cost "
        << outcome.learn_result.cost << "):\n"
        << outcome.learn_result.hypothesis_to_string();

    auto report = ams.refresh_policies();
    out << "PReP materialized " << report.generated << " polic"
        << (report.generated == 1 ? "y" : "ies") << " under maxloa=3:\n";
    for (const auto& p : ams.policies().all()) {
        out << "  " << cfg::detokenize(p.policy) << "\n";
    }

    for (const char* request : {"do patrol", "do strike", "do observe"}) {
        auto [permitted, index] = ams.handle_request(cfg::tokenize(request));
        (void)index;
        out << "PDP: " << request << " -> " << (permitted ? "Permit" : "Deny") << "\n";
    }
    out << ams.monitor().render_audit();
    return 0;
}

namespace {

// Writes a full snapshot of the router through `state` and reports the
// result as the one-line reply/log format shared by `!snapshot`, the
// periodic snapshotter, and the on-drain snapshot.
std::string take_snapshot(srv::AmsRouter& router, store::StateStore& state) {
    store::SnapshotData data = router.export_state();
    std::size_t entries = data.entries.size();
    std::size_t policies = data.policies.size();
    std::string error;
    if (!state.save_snapshot(std::move(data), &error)) return "snapshot failed: " + error;
    store::StoreStatus status = state.status();
    return "SNAPSHOT_JSON {\"entries\":" + std::to_string(entries) +
           ",\"policies\":" + std::to_string(policies) +
           ",\"bytes\":" + std::to_string(status.snapshot_bytes) +
           ",\"model_version\":" + std::to_string(router.model_version()) + "}";
}

// Two-phase runtime profiling control. Control lines run on the transport
// event loop, so `!prof` never blocks to collect: `start` arms the
// sampler, traffic runs, `stop` disarms it and returns the folded report
// as one PROF_JSON line. Blocking collection lives on `/profz`, where it
// only stalls the single-threaded metrics HTTP loop.
std::string handle_prof_line(const std::vector<std::string>& words) {
    auto& profiler = obs::CpuProfiler::instance();
    const std::string& verb = words.size() > 1 ? words[1] : "status";
    if (verb == "start") {
        obs::ProfilerOptions options;
        if (words.size() > 2) options.hz = std::atoi(words[2].c_str());
        if (options.hz < 1 || options.hz > 1000) return "usage: !prof start [hz 1..1000]";
        if (!profiler.start(options)) {
            return "profiler already running at " + std::to_string(profiler.hz()) + " Hz";
        }
        return "profiler started at " + std::to_string(profiler.hz()) + " Hz";
    }
    if (verb == "stop") {
        if (!profiler.running()) return "profiler not running";
        return "PROF_JSON " + profiler.stop().to_json();
    }
    if (verb == "status") {
        return std::string("PROF_JSON {\"running\":") +
               (profiler.running() ? "true" : "false") +
               ",\"hz\":" + std::to_string(profiler.hz()) + "}";
    }
    return "unknown !prof verb: " + verb + " (try start [hz], stop, status)";
}

// Handles one '!'-prefixed serve control line (stdin or TCP); returns the
// reply, possibly multi-line, without a trailing newline. `state` is null
// unless the server runs with --state-dir; `window` is the serve-lifetime
// rolling window behind the stats surfaces.
std::string handle_control_line(std::string_view line, srv::AmsRouter& router,
                                const srv::TcpServer* server, store::StateStore* state,
                                const obs::RollingWindow* window) {
    auto words = util::split_ws(std::string(line));
    const std::string& command = words[0];
    if (command == "!stats") {
        return "SERVE_STATS_JSON " + srv::serve_stats_json(router, server, state, window);
    }
    if (command == "!prof") {
        return handle_prof_line(words);
    }
    if (command == "!snapshot") {
        if (state == nullptr) return "snapshot unavailable: serve started without --state-dir";
        return take_snapshot(router, *state);
    }
    if (command == "!flight") {
        std::string json = "[";
        bool first = true;
        for (const auto& record : router.flight_snapshot()) {
            if (!first) json += ",";
            json += srv::flight_record_json(record);
            first = false;
        }
        json += "]";
        return "FLIGHT_JSON " + json;
    }
    if (command == "!trace") {
        if (words.size() < 2) return "usage: !trace <file>";
        std::size_t captured = router.captured_traces().size();
        std::ofstream file(words[1]);
        if (!file) return "cannot write trace file: " + words[1];
        file << router.captured_traces_json();
        return "trace written to " + words[1] + " (" + std::to_string(captured) +
               " captured request" + (captured == 1 ? "" : "s") + ")";
    }
    return "unknown control line: " + command +
           " (try !stats, !flight, !trace <file>, !snapshot, !prof)";
}

// Listen-mode SIGTERM/SIGINT handling: the handler may only do
// async-signal-safe work, so it writes one byte to a pipe the serve loop
// polls.
std::atomic<int> g_shutdown_pipe_w{-1};

void on_serve_signal(int) {
    int fd = g_shutdown_pipe_w.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char b = 1;
        [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
    }
}

}  // namespace

int cmd_serve(const ServeCliOptions& cli, std::istream& in, std::ostream& out) {
    std::string grammar_text = read_file(cli.grammar_path);
    asp::Program context;
    if (!cli.context_path.empty()) context = asp::parse_program(read_file(cli.context_path));
    // Surface grammar syntax errors once, before any replica spins up.
    (void)asg::AnswerSetGrammar::parse(grammar_text);

    // The audit log outlives the router: every replica's service holds a
    // pointer to it and records through finish() until the router stops.
    std::unique_ptr<srv::AuditLog> audit;
    if (!cli.audit_path.empty()) {
        srv::AuditOptions audit_options;
        audit_options.path = cli.audit_path;
        if (cli.audit_max_mb > 0) audit_options.max_bytes = std::uint64_t{cli.audit_max_mb} << 20;
        audit_options.sample_every = cli.audit_sample;
        audit = std::make_unique<srv::AuditLog>(audit_options);
    }

    // The state store also outlives the router: the cache's on_insert hook
    // appends to its WAL from every worker thread.
    std::unique_ptr<store::StateStore> state;
    if (!cli.state_dir.empty()) {
        state = std::make_unique<store::StateStore>(store::StoreOptions{cli.state_dir});
    }

    srv::RouterOptions router_options;
    router_options.replicas = cli.replicas;
    router_options.service.threads = cli.threads;
    router_options.service.use_cache = cli.use_cache;
    if (cli.cache_mb > 0) router_options.service.cache.capacity_bytes = cli.cache_mb << 20;
    if (cli.cache_shards > 0) router_options.service.cache.shards = cli.cache_shards;
    router_options.service.use_memo = cli.use_memo;
    if (cli.memo_mb > 0) router_options.service.memo.capacity_bytes = cli.memo_mb << 20;
    router_options.service.trace.slow_threshold_us = cli.trace_slow_ms * 1000;
    router_options.service.trace.sample_every = cli.trace_sample;
    router_options.service.audit = audit.get();
    if (state != nullptr) {
        router_options.service.cache.on_insert = [s = state.get()](const srv::CacheEntry& e) {
            s->append_wal({e.text, e.model_version, e.permitted});
        };
    }

    // Every replica parses its own AMS from the same text: replicas share
    // no mutable state, so they only stay version-aligned through the
    // router's broadcast update path.
    srv::AmsRouter router(
        [&grammar_text, &context] {
            auto ams = std::make_unique<framework::AutonomousManagedSystem>(
                "serve", asg::AnswerSetGrammar::parse(grammar_text), ilp::HypothesisSpace{});
            ams->pip().add_source("file", [context] { return context; });
            return ams;
        },
        router_options);

    // Warm restart: replay the last snapshot + WAL into the fresh router
    // before any traffic. No worker threads have requests yet, so the one
    // greppable AGENP_STATE_RESTORED line can print without out_mu.
    if (state != nullptr) {
        store::RestoreResult restored = state->restore();
        srv::StateRestoreReport report = router.restore_state(restored.data);
        out << "AGENP_STATE_RESTORED entries=" << report.entries_restored
            << " skipped=" << report.entries_skipped << " policies=" << report.policies_restored
            << " model_version=" << report.model_version
            << " wal_replayed=" << restored.wal_replayed
            << " wal_discarded_bytes=" << restored.wal_discarded_bytes << "\n"
            << std::flush;
        if (report.entries_skipped > 0) {
            out << "state restore truncated: snapshot exceeds the configured cache budget "
                << "(--cache-mb " << cli.cache_mb << "); restored " << report.entries_restored
                << " entries, dropped " << report.entries_skipped << "\n";
        }
        if (!restored.warning.empty()) out << "state restore warning: " << restored.warning << "\n";
        if (!report.warning.empty()) out << "state restore warning: " << report.warning << "\n";
    }

    // Windowed telemetry: one bucket per second over the process registry,
    // shared by /statz, the exposition, and the reporter. The ticker also
    // advances the cost table's frequency EWMA.
    obs::RollingWindow window(obs::metrics());
    obs::WindowTicker window_ticker(window, [] { obs::costs().tick(); });

    // Continuous profiling (--prof-hz): sample for the life of the serve
    // process; /profz and !prof stop share the same session.
    if (cli.prof_hz > 0) {
        obs::ProfilerOptions prof_options;
        prof_options.hz = static_cast<int>(cli.prof_hz);
        if (obs::CpuProfiler::instance().start(prof_options)) {
            out << "AGENP_PROFILING hz=" << obs::CpuProfiler::instance().hz() << "\n"
                << std::flush;
        }
    }

    // Written by the listen branch once the TCP server exists; read by the
    // control handler, the reporter, and the metrics HTTP handler — all of
    // which may run on other threads.
    std::atomic<const srv::TcpServer*> server_ptr{nullptr};
    std::atomic<bool> draining{false};
    auto control = [&router, &server_ptr, state_ptr = state.get(),
                    &window](std::string_view line) {
        return handle_control_line(line, router, server_ptr.load(std::memory_order_acquire),
                                   state_ptr, &window);
    };

    // The reporter thread and the request loop share `out`.
    std::mutex out_mu;
    std::mutex reporter_mu;
    std::condition_variable reporter_cv;
    bool reporter_stop = false;
    std::thread reporter;
    if (cli.stats_every_s > 0) {
        // The periodic line reports what happened over the last interval —
        // req/s, hit rate, latency quantiles from the rolling window — not
        // lifetime cumulative counters, which stop moving visibly on a
        // long-running server. Full cumulative state stays available via
        // `!stats` and /statz.
        reporter = std::thread([&] {
            std::unique_lock lock(reporter_mu);
            while (!reporter_cv.wait_for(lock, std::chrono::seconds(cli.stats_every_s),
                                         [&] { return reporter_stop; })) {
                srv::WindowedServeStats ws = srv::windowed_serve_stats(
                    window, std::chrono::seconds(cli.stats_every_s));
                srv::RouterStats rs = router.snapshot_stats();
                std::string json = srv::windowed_serve_stats_json(ws);
                json.back() = ',';  // reopen to append instantaneous depth
                json += "\"queue_depth\":" + std::to_string(rs.total.queue_depth) + "}";
                std::lock_guard out_lock(out_mu);
                out << "SERVE_WINDOW_JSON " << json << "\n" << std::flush;
            }
        });
    }

    // HTTP telemetry surface (--metrics-listen): /metrics (Prometheus),
    // /healthz (503 while draining), /statz (SERVE_STATS_JSON body). Stays
    // up through the NDJSON drain so scrapers see the drain happen.
    std::unique_ptr<obs::HttpServer> metrics_http;
    if (cli.metrics_listen) {
        obs::HttpServerOptions http_options;
        http_options.port = cli.metrics_listen_port;
        metrics_http = std::make_unique<obs::HttpServer>(
            http_options, [&router, &server_ptr, &draining, state_ptr = state.get(), &window,
                           replicas = cli.replicas](const obs::HttpRequest& request) {
                obs::HttpResponse response;
                if (request.path == "/metrics") {
                    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
                    response.body = srv::serve_exposition_prometheus(
                        router, draining.load(std::memory_order_acquire), state_ptr, &window);
                } else if (request.path == "/healthz") {
                    bool is_draining = draining.load(std::memory_order_acquire);
                    response.status = is_draining ? 503 : 200;
                    response.content_type = "application/json";
                    response.body = srv::healthz_json(router, is_draining) + "\n";
                } else if (request.path == "/statz") {
                    response.content_type = "application/json";
                    response.body =
                        srv::serve_stats_json(router, server_ptr.load(std::memory_order_acquire),
                                              state_ptr, &window) +
                        "\n";
                } else if (request.path == "/buildz") {
                    response.content_type = "application/json";
                    response.body =
                        obs::build_info_json(
                            {{"protocol_version", std::to_string(srv::kProtocolVersion)},
                             {"replicas", std::to_string(replicas)}}) +
                        "\n";
                } else if (request.path == "/profz") {
                    // Blocking one-shot profile. This stalls only the
                    // single-threaded metrics loop — serving traffic is
                    // unaffected (beyond the sampling itself).
                    double seconds = 2.0;
                    int hz = 99;
                    if (std::string v = obs::http_query_param(request.query, "seconds");
                        !v.empty()) {
                        seconds = std::atof(v.c_str());
                    }
                    if (std::string v = obs::http_query_param(request.query, "hz"); !v.empty()) {
                        hz = std::atoi(v.c_str());
                    }
                    if (seconds <= 0.0 || seconds > 60.0 || hz < 1 || hz > 1000) {
                        response.status = 400;
                        response.body = "profz expects seconds in (0,60] and hz in [1,1000]\n";
                        return response;
                    }
                    obs::ProfileReport report =
                        obs::CpuProfiler::instance().collect(seconds, hz);
                    if (obs::http_query_param(request.query, "format") == "json") {
                        response.content_type = "application/json";
                        response.body = report.to_json() + "\n";
                    } else {
                        response.body = report.folded();
                    }
                } else {
                    response.status = 404;
                    response.body =
                        "not found (try /metrics, /healthz, /statz, /buildz, /profz)\n";
                }
                return response;
            });
        if (cli.metrics_announce_port != nullptr) {
            cli.metrics_announce_port->store(metrics_http->port());
        }
        std::lock_guard out_lock(out_mu);
        out << "AGENP_METRICS_LISTENING port=" << metrics_http->port() << "\n" << std::flush;
    }

    // Graphite push (--metrics-push HOST:PORT --metrics-every S): same
    // enumerator as /metrics, rendered as plaintext lines.
    std::unique_ptr<obs::GraphitePusher> pusher;
    if (!cli.metrics_push_host.empty()) {
        obs::PushOptions push_options;
        push_options.host = cli.metrics_push_host;
        push_options.port = cli.metrics_push_port;
        push_options.interval = std::chrono::seconds(cli.metrics_every_s);
        pusher = std::make_unique<obs::GraphitePusher>(
            push_options, [&router, &draining, state_ptr = state.get(), &window](std::time_t now) {
                return srv::serve_exposition_graphite(router,
                                                      draining.load(std::memory_order_acquire),
                                                      "agenp", now, state_ptr, &window);
            });
    }
    auto stop_reporter = [&] {
        if (reporter.joinable()) {
            {
                std::lock_guard lock(reporter_mu);
                reporter_stop = true;
            }
            reporter_cv.notify_all();
            reporter.join();
        }
    };

    // Periodic snapshotter (--snapshot-every S, needs --state-dir): the
    // same full snapshot `!snapshot` takes, on a timer. Failures are
    // logged and retried next interval; serving never stops for them.
    std::mutex snapshot_mu;
    std::condition_variable snapshot_cv;
    bool snapshot_stop = false;
    std::thread snapshotter;
    if (state != nullptr && cli.snapshot_every_s > 0) {
        snapshotter = std::thread([&] {
            std::unique_lock lock(snapshot_mu);
            while (!snapshot_cv.wait_for(lock, std::chrono::seconds(cli.snapshot_every_s),
                                         [&] { return snapshot_stop; })) {
                std::string result = take_snapshot(router, *state);
                if (!util::starts_with(result, "SNAPSHOT_JSON")) {
                    std::lock_guard out_lock(out_mu);
                    out << result << "\n" << std::flush;
                }
            }
        });
    }
    auto stop_snapshotter = [&] {
        if (snapshotter.joinable()) {
            {
                std::lock_guard lock(snapshot_mu);
                snapshot_stop = true;
            }
            snapshot_cv.notify_all();
            snapshotter.join();
        }
    };
    // On-drain snapshot: both exit paths persist the final state so a
    // clean restart starts exactly where this process stopped.
    auto drain_snapshot = [&] {
        if (state == nullptr) return;
        std::lock_guard out_lock(out_mu);
        out << take_snapshot(router, *state) << "\n" << std::flush;
    };

    auto start = std::chrono::steady_clock::now();
    std::size_t served = 0;
    auto print_summary = [&](std::size_t count) {
        auto seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        srv::RouterStats rs = router.snapshot_stats();
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%.1f req/s, cache hit rate %.3f",
                      seconds > 0 ? static_cast<double>(count) / seconds : 0.0,
                      rs.total.cache.hit_rate());
        out << "served " << count << " requests (" << rs.total.permitted << " permit, "
            << rs.total.denied << " deny, " << rs.total.rejected_overload << " overloaded, "
            << rs.total.expired << " expired): " << buf << "\n";
    };

    if (cli.listen) {
        srv::TransportOptions transport;
        transport.port = cli.listen_port;
        srv::TcpServer server(router, transport, control);
        server_ptr.store(&server, std::memory_order_release);
        if (cli.announce_port != nullptr) cli.announce_port->store(server.port());
        {
            std::lock_guard out_lock(out_mu);
            out << "AGENP_LISTENING port=" << server.port() << "\n" << std::flush;
        }
        // Block until a shutdown byte or EOF on the hook fd, or a
        // SIGTERM/SIGINT delivered through the signal pipe.
        int wait_fd = cli.shutdown_fd;
        int pipe_fds[2] = {-1, -1};
        if (wait_fd < 0 && ::pipe(pipe_fds) == 0) {
            wait_fd = pipe_fds[0];
            g_shutdown_pipe_w.store(pipe_fds[1], std::memory_order_relaxed);
            std::signal(SIGTERM, on_serve_signal);
            std::signal(SIGINT, on_serve_signal);
        }
        if (wait_fd >= 0) {
            pollfd pfd{wait_fd, POLLIN, 0};
            while (true) {
                int rc = ::poll(&pfd, 1, -1);
                if (rc > 0 || (rc < 0 && errno != EINTR)) break;
            }
        }
        if (pipe_fds[0] >= 0) {
            std::signal(SIGTERM, SIG_DFL);
            std::signal(SIGINT, SIG_DFL);
            g_shutdown_pipe_w.store(-1, std::memory_order_relaxed);
            ::close(pipe_fds[0]);
            ::close(pipe_fds[1]);
        }
        // Mark draining first so /healthz flips to 503 and the last
        // scrapes see srv.draining=1 while the NDJSON listener drains.
        draining.store(true, std::memory_order_release);
        server.shutdown();
        stop_reporter();
        stop_snapshotter();
        drain_snapshot();
        srv::RouterStats rs = router.snapshot_stats();
        served = rs.total.completed + rs.total.rejected_overload + rs.total.expired;
        {
            std::lock_guard out_lock(out_mu);
            out << "SERVE_STATS_JSON "
                << srv::serve_stats_json(router, &server, state.get(), &window) << "\n";
            print_summary(served);
        }
        // Stop the exporters before `server` leaves scope: the /statz
        // handler reads server_ptr, so it must be quiesced first.
        pusher.reset();
        metrics_http.reset();
        server_ptr.store(nullptr, std::memory_order_release);
        // Idempotent; also ends a session started via !prof.
        (void)obs::CpuProfiler::instance().stop();
        return 0;
    }

    std::string line;
    while (std::getline(in, line)) {
        auto trimmed = std::string(util::trim(line));
        if (trimmed.empty()) continue;
        // One shared dispatch path with the TCP transport; stdin stays
        // lockstep by waiting on each deferred reply before reading on.
        std::promise<std::string> reply_promise;
        std::future<std::string> reply_future = reply_promise.get_future();
        srv::DispatchResult result = srv::dispatch_line(
            router, trimmed, srv::LineMode::Text, 0, control,
            [&reply_promise](std::string reply) { reply_promise.set_value(std::move(reply)); });
        std::string reply = result.deferred ? reply_future.get() : result.immediate;
        if (result.deferred) ++served;
        if (!reply.empty()) {
            std::lock_guard out_lock(out_mu);
            out << reply << "\n";
        }
    }
    draining.store(true, std::memory_order_release);
    router.drain();
    stop_reporter();
    stop_snapshotter();
    drain_snapshot();
    pusher.reset();
    metrics_http.reset();
    (void)obs::CpuProfiler::instance().stop();
    print_summary(served);
    return 0;
}

int cmd_loadgen(const LoadgenCliOptions& cli, std::ostream& out) {
    srv::LoadgenOptions load;
    load.clients = cli.clients;
    load.requests_per_client = cli.requests_per_client;

    if (!cli.connect_host.empty()) {
        auto report = srv::run_loadgen_tcp(cli.connect_host, cli.connect_port,
                                           srv::demo_workload(cli.distinct), load);
        out << "loadgen: " << cli.clients << " clients x " << cli.requests_per_client
            << " requests, " << cli.distinct << " distinct, tcp " << cli.connect_host << ":"
            << cli.connect_port << "\n";
        out << report.render_text();
        out << "LOADGEN_JSON " << report.to_json() << "\n";
        return report.dropped == 0 ? 0 : 1;
    }

    auto ams = srv::make_demo_ams(cli.distinct);
    srv::ServiceOptions options;
    options.threads = cli.threads;
    options.use_cache = cli.use_cache;
    if (cli.cache_mb > 0) options.cache.capacity_bytes = cli.cache_mb << 20;
    if (cli.cache_shards > 0) options.cache.shards = cli.cache_shards;
    options.use_memo = cli.use_memo;
    if (cli.memo_mb > 0) options.memo.capacity_bytes = cli.memo_mb << 20;
    srv::DecisionService service(ams, options);

    auto report = srv::run_loadgen(service, srv::demo_workload(cli.distinct), load);
    out << "loadgen: " << cli.clients << " clients x " << cli.requests_per_client << " requests, "
        << cli.distinct << " distinct, " << cli.threads << " threads, cache "
        << (cli.use_cache ? "on" : "off") << ", memo " << (cli.use_memo ? "on" : "off") << "\n";
    out << report.render_text();
    out << "LOADGEN_JSON " << report.to_json() << "\n";
    return 0;
}

int cmd_evaluate(const std::string& schema_path, const std::string& policy_path,
                 const std::string& request_text, std::ostream& out) {
    auto schema = xacml::parse_schema(read_file(schema_path));
    auto policy = xacml::parse_policy(read_file(policy_path), schema);
    auto request = xacml::parse_request(request_text, schema);
    auto decision = xacml::evaluate(policy, request);
    out << xacml::decision_name(decision) << "\n";
    return decision == xacml::Decision::Permit ? 0 : 1;
}

namespace {

// Pulls `--flag value` out of an argument list.
std::string take_flag(std::vector<std::string>& args, const std::string& flag,
                      const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    return fallback;
}

// Pulls a boolean `--flag` out of an argument list.
bool take_bool_flag(std::vector<std::string>& args, const std::string& flag) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

// Splits `--flag=value` arguments into `--flag value` pairs so both
// spellings work with take_flag.
std::vector<std::string> normalize_flags(const std::vector<std::string>& argv) {
    std::vector<std::string> out;
    out.reserve(argv.size());
    for (const auto& a : argv) {
        auto eq = a.find('=');
        if (util::starts_with(a, "--") && eq != std::string::npos) {
            out.push_back(a.substr(0, eq));
            out.push_back(a.substr(eq + 1));
        } else {
            out.push_back(a);
        }
    }
    return out;
}

// Applies the telemetry flags around one command dispatch; writes the
// trace file and stats dump after the command finishes.
class TelemetryScope {
public:
    TelemetryScope(bool stats, std::string trace_path, std::ostream& out)
        : stats_(stats), trace_path_(std::move(trace_path)), out_(out) {
        if (!trace_path_.empty()) {
            obs::tracer().clear();
            obs::tracer().set_enabled(true);
        }
    }

    ~TelemetryScope() {
        if (!trace_path_.empty()) {
            obs::tracer().set_enabled(false);
            std::ofstream file(trace_path_);
            if (file) {
                file << obs::tracer().chrome_trace_json();
                out_ << "trace written to " << trace_path_ << " (open in chrome://tracing)\n";
                out_ << obs::tracer().flat_profile();
            } else {
                out_ << "cannot write trace file: " << trace_path_ << "\n";
            }
        }
        if (stats_) {
            out_ << "--- metrics ---\n" << obs::metrics().render_text();
        }
    }

private:
    bool stats_;
    std::string trace_path_;
    std::ostream& out_;
};

}  // namespace

int run(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
    try {
        if (argv.empty()) {
            err << "usage: agenp <solve|membership|generate|learn|lint|evaluate|quickstart|serve|"
                   "loadgen> [--stats] [--trace-out=FILE] ...\n";
            return 2;
        }
        std::vector<std::string> normalized = normalize_flags(argv);
        std::vector<std::string> args(normalized.begin() + 1, normalized.end());
        const std::string command = normalized[0];
        bool stats = take_bool_flag(args, "--stats");
        std::string trace_out = take_flag(args, "--trace-out", "");
        TelemetryScope telemetry(stats, trace_out, out);
        if (command == "solve") {
            auto models = std::stoull(take_flag(args, "--models", "1"));
            if (args.size() != 1) throw CliError("usage: agenp solve <program.lp> [--models N]");
            return cmd_solve(args[0], models, out);
        }
        if (command == "membership") {
            auto sentence = take_flag(args, "--string", "");
            auto context = take_flag(args, "--context", "");
            if (args.size() != 1 || sentence.empty()) {
                throw CliError("usage: agenp membership <grammar.asg> --string \"...\" [--context ctx.lp]");
            }
            return cmd_membership(args[0], sentence, context, out);
        }
        if (command == "generate") {
            auto context = take_flag(args, "--context", "");
            auto max_strings = std::stoull(take_flag(args, "--max", "1000"));
            if (args.size() != 1) throw CliError("usage: agenp generate <grammar.asg> [--context ctx.lp] [--max N]");
            return cmd_generate(args[0], context, max_strings, out);
        }
        if (command == "learn") {
            auto out_path = take_flag(args, "--out", "");
            if (args.size() != 1) throw CliError("usage: agenp learn <task.agenp> [--out learned.asg]");
            return cmd_learn(args[0], out_path, out);
        }
        if (command == "lint") {
            auto context = take_flag(args, "--context", "");
            bool json = take_bool_flag(args, "--json");
            bool strict = take_bool_flag(args, "--strict");
            if (args.size() != 1) {
                throw CliError(
                    "usage: agenp lint <file.asg|file.lp> [--context ctx.lp] [--json] [--strict]");
            }
            return cmd_lint(args[0], context, json, strict, out);
        }
        if (command == "quickstart") {
            if (!args.empty()) throw CliError("usage: agenp quickstart [--stats] [--trace-out=FILE]");
            return cmd_quickstart(out);
        }
        if (command == "serve") {
            ServeCliOptions serve;
            serve.context_path = take_flag(args, "--context", "");
            serve.threads = std::stoull(take_flag(args, "--threads", "4"));
            serve.cache_mb = std::stoull(take_flag(args, "--cache-mb", "64"));
            serve.use_cache = !take_bool_flag(args, "--no-cache");
            // Tail-capture knobs default from the environment; flags win.
            // getenv is single-threaded startup here, before any worker
            // exists, so concurrency-mt-unsafe does not apply.
            const char* env_slow = std::getenv("AGENP_TRACE_SLOW_MS");  // NOLINT(concurrency-mt-unsafe)
            const char* env_sample = std::getenv("AGENP_TRACE_SAMPLE");  // NOLINT(concurrency-mt-unsafe)
            serve.trace_slow_ms =
                std::stoull(take_flag(args, "--trace-slow-ms", env_slow ? env_slow : "0"));
            serve.trace_sample =
                std::stoull(take_flag(args, "--trace-sample", env_sample ? env_sample : "0"));
            serve.stats_every_s = std::stoull(take_flag(args, "--stats-every", "0"));
            auto listen_port = take_flag(args, "--listen", "");
            if (!listen_port.empty()) {
                serve.listen = true;
                serve.listen_port = static_cast<std::uint16_t>(std::stoul(listen_port));
            }
            serve.replicas = std::stoull(take_flag(args, "--replicas", "1"));
            auto metrics_port = take_flag(args, "--metrics-listen", "");
            if (!metrics_port.empty()) {
                serve.metrics_listen = true;
                serve.metrics_listen_port = static_cast<std::uint16_t>(std::stoul(metrics_port));
            }
            auto push = take_flag(args, "--metrics-push", "");
            if (!push.empty()) {
                auto colon = push.rfind(':');
                if (colon == std::string::npos || colon == 0 || colon + 1 == push.size()) {
                    throw CliError("--metrics-push expects HOST:PORT");
                }
                serve.metrics_push_host = push.substr(0, colon);
                serve.metrics_push_port =
                    static_cast<std::uint16_t>(std::stoul(push.substr(colon + 1)));
            }
            serve.metrics_every_s = std::stoull(take_flag(args, "--metrics-every", "10"));
            serve.audit_path = take_flag(args, "--audit-log", "");
            serve.audit_max_mb = std::stoull(take_flag(args, "--audit-max-mb", "64"));
            serve.audit_sample = std::stoull(take_flag(args, "--audit-sample", "1"));
            serve.state_dir = take_flag(args, "--state-dir", "");
            serve.snapshot_every_s = std::stoull(take_flag(args, "--snapshot-every", "0"));
            serve.cache_shards = std::stoull(take_flag(args, "--cache-shards", "0"));
            serve.use_memo = !take_bool_flag(args, "--no-memo");
            serve.memo_mb = std::stoull(take_flag(args, "--memo-mb", "32"));
            serve.prof_hz = std::stoull(take_flag(args, "--prof-hz", "0"));
            if (serve.prof_hz > 1000) throw CliError("--prof-hz expects 0..1000");
            if (args.size() != 1) {
                throw CliError(
                    "usage: agenp serve <grammar.asg> [--context ctx.lp] [--threads N] "
                    "[--cache-mb M] [--no-cache] [--cache-shards N] [--no-memo] "
                    "[--memo-mb M] [--trace-slow-ms MS] "
                    "[--trace-sample N] [--stats-every SEC] [--listen PORT] [--replicas N] "
                    "[--metrics-listen PORT] [--metrics-push HOST:PORT] [--metrics-every SEC] "
                    "[--audit-log FILE] [--audit-max-mb M] [--audit-sample N] "
                    "[--state-dir DIR] [--snapshot-every SEC] [--prof-hz HZ]");
            }
            serve.grammar_path = args[0];
            return cmd_serve(serve, std::cin, out);
        }
        if (command == "loadgen") {
            LoadgenCliOptions load;
            load.threads = std::stoull(take_flag(args, "--threads", "4"));
            load.clients = std::stoull(take_flag(args, "--clients", "4"));
            load.requests_per_client = std::stoull(take_flag(args, "--requests", "250"));
            load.distinct = std::stoull(take_flag(args, "--distinct", "8"));
            load.cache_mb = std::stoull(take_flag(args, "--cache-mb", "64"));
            load.use_cache = !take_bool_flag(args, "--no-cache");
            load.cache_shards = std::stoull(take_flag(args, "--cache-shards", "0"));
            load.use_memo = !take_bool_flag(args, "--no-memo");
            load.memo_mb = std::stoull(take_flag(args, "--memo-mb", "32"));
            auto connect = take_flag(args, "--connect", "");
            if (!connect.empty()) {
                auto colon = connect.rfind(':');
                if (colon == std::string::npos || colon == 0 || colon + 1 == connect.size()) {
                    throw CliError("--connect expects HOST:PORT");
                }
                load.connect_host = connect.substr(0, colon);
                load.connect_port =
                    static_cast<std::uint16_t>(std::stoul(connect.substr(colon + 1)));
            }
            if (!args.empty()) {
                throw CliError(
                    "usage: agenp loadgen [--threads N] [--clients N] [--requests N] "
                    "[--distinct K] [--cache-mb M] [--no-cache] [--cache-shards N] "
                    "[--no-memo] [--memo-mb M] [--connect HOST:PORT]");
            }
            return cmd_loadgen(load, out);
        }
        if (command == "evaluate") {
            auto request = take_flag(args, "--request", "");
            if (args.size() != 2 || request.empty()) {
                throw CliError(
                    "usage: agenp evaluate <schema.xs> <policy.xp> --request \"attr=value ...\"");
            }
            return cmd_evaluate(args[0], args[1], request, out);
        }
        err << "unknown command '" << command << "'\n";
        return 2;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }
}

}  // namespace agenp::cli
