// Tabular datasets for the statistical baselines.
//
// The paper's CAV comparison ([25], Section IV.A) pits the symbolic learner
// against "shallow ML"; these baselines consume the same scenario examples
// flattened into feature vectors. Features are numeric or categorical;
// labels are binary (accept/reject).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace agenp::ml {

struct FeatureSpec {
    std::string name;
    bool numeric = true;
    // Categorical only: category names; cell values are indices into this.
    std::vector<std::string> categories;

    static FeatureSpec numeric_feature(std::string n) { return {std::move(n), true, {}}; }
    static FeatureSpec categorical(std::string n, std::vector<std::string> cats) {
        return {std::move(n), false, std::move(cats)};
    }
};

class Dataset {
public:
    Dataset() = default;
    explicit Dataset(std::vector<FeatureSpec> features) : features_(std::move(features)) {}

    void add_row(std::vector<double> values, int label);

    [[nodiscard]] const std::vector<FeatureSpec>& features() const { return features_; }
    [[nodiscard]] std::size_t size() const { return rows_.size(); }
    [[nodiscard]] std::size_t feature_count() const { return features_.size(); }
    [[nodiscard]] const std::vector<double>& row(std::size_t i) const { return rows_[i]; }
    [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }

    // A dataset with the same schema and the selected rows.
    [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

    // Deterministic shuffled split; first `train_fraction` of rows train.
    [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction, util::Rng& rng) const;

    // The first n rows (for learning curves over a shuffled dataset).
    [[nodiscard]] Dataset head(std::size_t n) const;

private:
    std::vector<FeatureSpec> features_;
    std::vector<std::vector<double>> rows_;
    std::vector<int> labels_;
};

// Interface shared by all baselines.
class BinaryClassifier {
public:
    virtual ~BinaryClassifier() = default;
    virtual void fit(const Dataset& train) = 0;
    [[nodiscard]] virtual int predict(const std::vector<double>& row) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace agenp::ml
