#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace agenp::ml {
namespace {

double gini(std::size_t pos, std::size_t total) {
    if (total == 0) return 0;
    double p = static_cast<double>(pos) / static_cast<double>(total);
    return 2.0 * p * (1.0 - p);
}

int majority(const Dataset& data, const std::vector<std::size_t>& indices) {
    if (indices.empty()) return 0;
    std::size_t pos = 0;
    for (auto i : indices) pos += static_cast<std::size_t>(data.label(i));
    return pos * 2 >= indices.size() ? 1 : 0;
}

}  // namespace

void DecisionTree::fit(const Dataset& train) {
    features_ = train.features();
    std::vector<std::size_t> indices(train.size());
    std::iota(indices.begin(), indices.end(), 0);
    root_ = build(train, indices, 0);
}

std::unique_ptr<DecisionTree::Node> DecisionTree::build(const Dataset& data,
                                                        const std::vector<std::size_t>& indices,
                                                        int depth) {
    auto node = std::make_unique<Node>();
    node->label = majority(data, indices);

    std::size_t pos = 0;
    for (auto i : indices) pos += static_cast<std::size_t>(data.label(i));
    bool pure = pos == 0 || pos == indices.size();
    if (pure || depth >= options_.max_depth || indices.size() < options_.min_samples_split) {
        return node;
    }

    double parent_impurity = gini(pos, indices.size());
    double best_gain = 1e-12;
    std::size_t best_feature = 0;
    double best_threshold = 0;
    bool best_categorical = false;

    for (std::size_t f = 0; f < data.feature_count(); ++f) {
        bool categorical = !data.features()[f].numeric;
        // Candidate split points: midpoints of sorted distinct values
        // (numeric) or each distinct category (categorical).
        std::set<double> values;
        for (auto i : indices) values.insert(data.row(i)[f]);
        if (values.size() < 2 && !categorical) continue;
        std::vector<double> candidates;
        if (categorical) {
            candidates.assign(values.begin(), values.end());
        } else {
            double prev = 0;
            bool first = true;
            for (double v : values) {
                if (!first) candidates.push_back((prev + v) / 2);
                prev = v;
                first = false;
            }
        }
        for (double threshold : candidates) {
            std::size_t left_total = 0, left_pos = 0, right_total = 0, right_pos = 0;
            for (auto i : indices) {
                double v = data.row(i)[f];
                bool left = categorical ? v == threshold : v <= threshold;
                if (left) {
                    ++left_total;
                    left_pos += static_cast<std::size_t>(data.label(i));
                } else {
                    ++right_total;
                    right_pos += static_cast<std::size_t>(data.label(i));
                }
            }
            if (left_total == 0 || right_total == 0) continue;
            double weighted = (static_cast<double>(left_total) * gini(left_pos, left_total) +
                               static_cast<double>(right_total) * gini(right_pos, right_total)) /
                              static_cast<double>(indices.size());
            double gain = parent_impurity - weighted;
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = f;
                best_threshold = threshold;
                best_categorical = categorical;
            }
        }
    }

    if (best_gain <= 1e-12) return node;  // no useful split

    std::vector<std::size_t> left_idx, right_idx;
    for (auto i : indices) {
        double v = data.row(i)[best_feature];
        bool left = best_categorical ? v == best_threshold : v <= best_threshold;
        (left ? left_idx : right_idx).push_back(i);
    }
    node->leaf = false;
    node->feature = best_feature;
    node->threshold = best_threshold;
    node->categorical = best_categorical;
    node->left = build(data, left_idx, depth + 1);
    node->right = build(data, right_idx, depth + 1);
    return node;
}

int DecisionTree::predict(const std::vector<double>& row) const {
    const Node* n = root_.get();
    if (!n) return 0;
    while (!n->leaf) {
        double v = row[n->feature];
        bool left = n->categorical ? v == n->threshold : v <= n->threshold;
        n = left ? n->left.get() : n->right.get();
    }
    return n->label;
}

int DecisionTree::node_count() const {
    // Iterative walk to avoid exposing Node.
    int count = 0;
    std::vector<const Node*> stack;
    if (root_) stack.push_back(root_.get());
    while (!stack.empty()) {
        const Node* n = stack.back();
        stack.pop_back();
        ++count;
        if (!n->leaf) {
            stack.push_back(n->left.get());
            stack.push_back(n->right.get());
        }
    }
    return count;
}

int DecisionTree::depth() const {
    struct Item {
        const Node* node;
        int depth;
    };
    int best = 0;
    std::vector<Item> stack;
    if (root_) stack.push_back({root_.get(), 1});
    while (!stack.empty()) {
        auto [n, d] = stack.back();
        stack.pop_back();
        best = std::max(best, d);
        if (!n->leaf) {
            stack.push_back({n->left.get(), d + 1});
            stack.push_back({n->right.get(), d + 1});
        }
    }
    return best;
}

}  // namespace agenp::ml
