// Logistic regression trained by mini-batch-free SGD with L2 regularization.
// Categorical features are one-hot encoded internally; numeric features are
// standardized from training statistics.
#pragma once

#include "ml/dataset.hpp"

namespace agenp::ml {

struct LogisticRegressionOptions {
    int epochs = 200;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    std::uint64_t seed = 17;
};

class LogisticRegression final : public BinaryClassifier {
public:
    explicit LogisticRegression(LogisticRegressionOptions options = {}) : options_(options) {}

    void fit(const Dataset& train) override;
    [[nodiscard]] int predict(const std::vector<double>& row) const override;
    [[nodiscard]] double predict_proba(const std::vector<double>& row) const;
    [[nodiscard]] std::string name() const override { return "logistic-regression"; }

private:
    [[nodiscard]] std::vector<double> encode(const std::vector<double>& row) const;

    LogisticRegressionOptions options_;
    std::vector<FeatureSpec> features_;
    std::vector<double> mean_, stdev_;  // per raw numeric feature
    std::vector<double> weights_;       // encoded dimension + 1 (bias last)
    std::size_t encoded_dim_ = 0;
};

}  // namespace agenp::ml
