// Naive Bayes: multinomial with Laplace smoothing over categorical features,
// Gaussian over numeric features.
#pragma once

#include "ml/dataset.hpp"

namespace agenp::ml {

class NaiveBayes final : public BinaryClassifier {
public:
    void fit(const Dataset& train) override;
    [[nodiscard]] int predict(const std::vector<double>& row) const override;
    [[nodiscard]] std::string name() const override { return "naive-bayes"; }

private:
    struct GaussianStats {
        double mean = 0;
        double var = 1;
    };

    std::vector<FeatureSpec> features_;
    double log_prior_[2] = {0, 0};
    // [label][feature][category] -> log probability (categorical)
    std::vector<std::vector<double>> cat_log_prob_[2];
    // [label][feature] -> gaussian stats (numeric)
    std::vector<GaussianStats> gauss_[2];
};

}  // namespace agenp::ml
