#include "ml/logistic_regression.hpp"

#include <cmath>
#include <numeric>

namespace agenp::ml {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

std::vector<double> LogisticRegression::encode(const std::vector<double>& row) const {
    std::vector<double> out;
    out.reserve(encoded_dim_);
    for (std::size_t f = 0; f < features_.size(); ++f) {
        if (features_[f].numeric) {
            double s = stdev_[f] > 1e-12 ? stdev_[f] : 1.0;
            out.push_back((row[f] - mean_[f]) / s);
        } else {
            for (std::size_t c = 0; c < features_[f].categories.size(); ++c) {
                out.push_back(row[f] == static_cast<double>(c) ? 1.0 : 0.0);
            }
        }
    }
    return out;
}

void LogisticRegression::fit(const Dataset& train) {
    features_ = train.features();
    mean_.assign(features_.size(), 0.0);
    stdev_.assign(features_.size(), 0.0);
    encoded_dim_ = 0;
    for (std::size_t f = 0; f < features_.size(); ++f) {
        encoded_dim_ += features_[f].numeric ? 1 : features_[f].categories.size();
    }
    if (train.size() > 0) {
        for (std::size_t f = 0; f < features_.size(); ++f) {
            if (!features_[f].numeric) continue;
            double sum = 0;
            for (std::size_t i = 0; i < train.size(); ++i) sum += train.row(i)[f];
            mean_[f] = sum / static_cast<double>(train.size());
            double var = 0;
            for (std::size_t i = 0; i < train.size(); ++i) {
                double d = train.row(i)[f] - mean_[f];
                var += d * d;
            }
            stdev_[f] = std::sqrt(var / static_cast<double>(train.size()));
        }
    }

    weights_.assign(encoded_dim_ + 1, 0.0);
    if (train.size() == 0) return;

    util::Rng rng(options_.seed);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
        rng.shuffle(order);
        double lr = options_.learning_rate / (1.0 + 0.01 * epoch);
        for (auto i : order) {
            auto x = encode(train.row(i));
            double z = weights_.back();
            for (std::size_t d = 0; d < encoded_dim_; ++d) z += weights_[d] * x[d];
            double err = sigmoid(z) - static_cast<double>(train.label(i));
            for (std::size_t d = 0; d < encoded_dim_; ++d) {
                weights_[d] -= lr * (err * x[d] + options_.l2 * weights_[d]);
            }
            weights_.back() -= lr * err;
        }
    }
}

double LogisticRegression::predict_proba(const std::vector<double>& row) const {
    if (weights_.empty()) return 0.5;
    auto x = encode(row);
    double z = weights_.back();
    for (std::size_t d = 0; d < encoded_dim_; ++d) z += weights_[d] * x[d];
    return sigmoid(z);
}

int LogisticRegression::predict(const std::vector<double>& row) const {
    return predict_proba(row) >= 0.5 ? 1 : 0;
}

}  // namespace agenp::ml
