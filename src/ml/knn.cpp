#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace agenp::ml {

void Knn::fit(const Dataset& train) {
    train_ = train;
    scale_.assign(train.feature_count(), 1.0);
    for (std::size_t f = 0; f < train.feature_count(); ++f) {
        if (!train.features()[f].numeric || train.size() == 0) continue;
        double mean = 0;
        for (std::size_t i = 0; i < train.size(); ++i) mean += train.row(i)[f];
        mean /= static_cast<double>(train.size());
        double var = 0;
        for (std::size_t i = 0; i < train.size(); ++i) {
            double d = train.row(i)[f] - mean;
            var += d * d;
        }
        double stdev = std::sqrt(var / static_cast<double>(train.size()));
        scale_[f] = stdev > 1e-12 ? 1.0 / stdev : 1.0;
    }
}

int Knn::predict(const std::vector<double>& row) const {
    if (train_.size() == 0) return 0;
    std::vector<std::pair<double, int>> distances;
    distances.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
        double d = 0;
        for (std::size_t f = 0; f < train_.feature_count(); ++f) {
            if (train_.features()[f].numeric) {
                double diff = (row[f] - train_.row(i)[f]) * scale_[f];
                d += diff * diff;
            } else {
                d += row[f] == train_.row(i)[f] ? 0.0 : 1.0;
            }
        }
        distances.emplace_back(d, train_.label(i));
    }
    auto k = std::min<std::size_t>(static_cast<std::size_t>(options_.k), distances.size());
    std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                      distances.end());
    std::size_t pos = 0;
    for (std::size_t i = 0; i < k; ++i) pos += static_cast<std::size_t>(distances[i].second);
    return pos * 2 >= k ? 1 : 0;
}

}  // namespace agenp::ml
