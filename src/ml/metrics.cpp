#include "ml/metrics.hpp"

#include <functional>

namespace agenp::ml {

Confusion evaluate_fn(const Dataset& test,
                      const std::function<int(const std::vector<double>&)>& predict) {
    Confusion c;
    for (std::size_t i = 0; i < test.size(); ++i) {
        int predicted = predict(test.row(i));
        int actual = test.label(i);
        if (actual == 1) {
            predicted == 1 ? ++c.tp : ++c.fn;
        } else {
            predicted == 1 ? ++c.fp : ++c.tn;
        }
    }
    return c;
}

Confusion evaluate(const BinaryClassifier& model, const Dataset& test) {
    return evaluate_fn(test, [&](const std::vector<double>& row) { return model.predict(row); });
}

}  // namespace agenp::ml
