// k-nearest-neighbours over a mixed metric: squared standardized distance on
// numeric features, Hamming on categorical ones.
#pragma once

#include "ml/dataset.hpp"

namespace agenp::ml {

struct KnnOptions {
    int k = 5;
};

class Knn final : public BinaryClassifier {
public:
    explicit Knn(KnnOptions options = {}) : options_(options) {}

    void fit(const Dataset& train) override;
    [[nodiscard]] int predict(const std::vector<double>& row) const override;
    [[nodiscard]] std::string name() const override { return "knn"; }

private:
    KnnOptions options_;
    Dataset train_;
    std::vector<double> scale_;  // 1/stdev per numeric feature
};

}  // namespace agenp::ml
