// Evaluation metrics shared by the learning-curve experiments.
#pragma once

#include <functional>

#include "ml/dataset.hpp"

namespace agenp::ml {

struct Confusion {
    std::size_t tp = 0, tn = 0, fp = 0, fn = 0;

    [[nodiscard]] std::size_t total() const { return tp + tn + fp + fn; }
    [[nodiscard]] double accuracy() const {
        return total() == 0 ? 0 : static_cast<double>(tp + tn) / static_cast<double>(total());
    }
    [[nodiscard]] double precision() const {
        return tp + fp == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
    }
    [[nodiscard]] double recall() const {
        return tp + fn == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
    }
    [[nodiscard]] double f1() const {
        double p = precision(), r = recall();
        return p + r == 0 ? 0 : 2 * p * r / (p + r);
    }
};

// Evaluates a trained classifier on `test`.
Confusion evaluate(const BinaryClassifier& model, const Dataset& test);

// Evaluates an arbitrary predictor (used to score the symbolic learner with
// the same machinery).
Confusion evaluate_fn(const Dataset& test,
                      const std::function<int(const std::vector<double>&)>& predict);

}  // namespace agenp::ml
