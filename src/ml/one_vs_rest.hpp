// One-vs-rest multiclass classification on top of the binary baselines.
//
// Used by the neurosymbolic pipeline (Section V.C's closing vision:
// "statistical machine learned functions are used to detect 'atomic'
// concepts ... and a rule model ... identifies more complex concepts"):
// a statistical model turns raw sensor vectors into symbolic context facts
// that the generative policy then reasons over.
#pragma once

#include "ml/logistic_regression.hpp"

namespace agenp::ml {

class OneVsRest {
public:
    explicit OneVsRest(int classes, LogisticRegressionOptions options = {})
        : classes_(classes), options_(options) {}

    // `train` labels must lie in [0, classes).
    void fit(const Dataset& train);

    [[nodiscard]] int predict(const std::vector<double>& row) const;
    [[nodiscard]] std::vector<double> scores(const std::vector<double>& row) const;
    [[nodiscard]] int classes() const { return classes_; }

private:
    int classes_;
    LogisticRegressionOptions options_;
    std::vector<LogisticRegression> models_;
};

}  // namespace agenp::ml
