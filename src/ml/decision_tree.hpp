// CART-style decision tree (gini impurity, numeric thresholds and
// categorical equality splits).
#pragma once

#include <memory>

#include "ml/dataset.hpp"

namespace agenp::ml {

struct DecisionTreeOptions {
    int max_depth = 8;
    std::size_t min_samples_split = 2;
};

class DecisionTree final : public BinaryClassifier {
public:
    explicit DecisionTree(DecisionTreeOptions options = {}) : options_(options) {}

    void fit(const Dataset& train) override;
    [[nodiscard]] int predict(const std::vector<double>& row) const override;
    [[nodiscard]] std::string name() const override { return "decision-tree"; }

    [[nodiscard]] int node_count() const;
    [[nodiscard]] int depth() const;

private:
    struct Node {
        bool leaf = true;
        int label = 0;
        std::size_t feature = 0;
        double threshold = 0;        // numeric: go left when value <= threshold
        bool categorical = false;    // categorical: go left when value == threshold
        std::unique_ptr<Node> left, right;
    };

    std::unique_ptr<Node> build(const Dataset& data, const std::vector<std::size_t>& indices,
                                int depth);

    DecisionTreeOptions options_;
    std::unique_ptr<Node> root_;
    const Dataset* schema_ = nullptr;  // feature specs of the training data
    std::vector<FeatureSpec> features_;
};

}  // namespace agenp::ml
