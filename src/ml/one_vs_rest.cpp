#include "ml/one_vs_rest.hpp"

#include <algorithm>

namespace agenp::ml {

void OneVsRest::fit(const Dataset& train) {
    models_.clear();
    for (int c = 0; c < classes_; ++c) {
        Dataset binary(train.features());
        for (std::size_t i = 0; i < train.size(); ++i) {
            binary.add_row(train.row(i), train.label(i) == c ? 1 : 0);
        }
        LogisticRegression model(options_);
        model.fit(binary);
        models_.push_back(std::move(model));
    }
}

std::vector<double> OneVsRest::scores(const std::vector<double>& row) const {
    std::vector<double> out;
    out.reserve(models_.size());
    for (const auto& m : models_) out.push_back(m.predict_proba(row));
    return out;
}

int OneVsRest::predict(const std::vector<double>& row) const {
    if (models_.empty()) return 0;
    auto s = scores(row);
    return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

}  // namespace agenp::ml
