#include "ml/dataset.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace agenp::ml {

void Dataset::add_row(std::vector<double> values, int label) {
    if (values.size() != features_.size()) {
        throw std::invalid_argument("row arity does not match dataset schema");
    }
    rows_.push_back(std::move(values));
    labels_.push_back(label);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
    Dataset out(features_);
    for (auto i : indices) out.add_row(rows_[i], labels_[i]);
    return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction, util::Rng& rng) const {
    std::vector<std::size_t> indices(size());
    std::iota(indices.begin(), indices.end(), 0);
    rng.shuffle(indices);
    auto cut = static_cast<std::size_t>(static_cast<double>(size()) * train_fraction);
    std::vector<std::size_t> train(indices.begin(), indices.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<std::size_t> test(indices.begin() + static_cast<std::ptrdiff_t>(cut), indices.end());
    return {subset(train), subset(test)};
}

Dataset Dataset::head(std::size_t n) const {
    std::vector<std::size_t> indices(std::min(n, size()));
    std::iota(indices.begin(), indices.end(), 0);
    return subset(indices);
}

}  // namespace agenp::ml
