#include "ml/naive_bayes.hpp"

#include <cmath>

namespace agenp::ml {

void NaiveBayes::fit(const Dataset& train) {
    features_ = train.features();
    std::size_t counts[2] = {0, 0};
    for (std::size_t i = 0; i < train.size(); ++i) ++counts[train.label(i)];
    double total = static_cast<double>(train.size());
    for (int y = 0; y < 2; ++y) {
        // Laplace-smoothed prior keeps empty classes finite.
        log_prior_[y] = std::log((static_cast<double>(counts[y]) + 1.0) / (total + 2.0));
        cat_log_prob_[y].assign(features_.size(), {});
        gauss_[y].assign(features_.size(), {});
    }

    for (std::size_t f = 0; f < features_.size(); ++f) {
        if (!features_[f].numeric) {
            std::size_t k = features_[f].categories.size();
            for (int y = 0; y < 2; ++y) {
                std::vector<double> freq(k, 1.0);  // Laplace
                double denom = static_cast<double>(counts[y]) + static_cast<double>(k);
                for (std::size_t i = 0; i < train.size(); ++i) {
                    if (train.label(i) != y) continue;
                    auto c = static_cast<std::size_t>(train.row(i)[f]);
                    if (c < k) freq[c] += 1.0;
                }
                cat_log_prob_[y][f].resize(k);
                for (std::size_t c = 0; c < k; ++c) {
                    cat_log_prob_[y][f][c] = std::log(freq[c] / denom);
                }
            }
        } else {
            for (int y = 0; y < 2; ++y) {
                double sum = 0;
                std::size_t n = 0;
                for (std::size_t i = 0; i < train.size(); ++i) {
                    if (train.label(i) != y) continue;
                    sum += train.row(i)[f];
                    ++n;
                }
                GaussianStats s;
                if (n > 0) {
                    s.mean = sum / static_cast<double>(n);
                    double var = 0;
                    for (std::size_t i = 0; i < train.size(); ++i) {
                        if (train.label(i) != y) continue;
                        double d = train.row(i)[f] - s.mean;
                        var += d * d;
                    }
                    s.var = var / static_cast<double>(n) + 1e-6;  // variance floor
                }
                gauss_[y][f] = s;
            }
        }
    }
}

int NaiveBayes::predict(const std::vector<double>& row) const {
    if (features_.empty()) return 0;
    double score[2];
    for (int y = 0; y < 2; ++y) {
        double s = log_prior_[y];
        for (std::size_t f = 0; f < features_.size(); ++f) {
            if (!features_[f].numeric) {
                auto c = static_cast<std::size_t>(row[f]);
                const auto& probs = cat_log_prob_[y][f];
                if (c < probs.size()) s += probs[c];
            } else {
                const auto& g = gauss_[y][f];
                double d = row[f] - g.mean;
                s += -0.5 * std::log(2 * M_PI * g.var) - d * d / (2 * g.var);
            }
        }
        score[y] = s;
    }
    return score[1] > score[0] ? 1 : 0;
}

}  // namespace agenp::ml
