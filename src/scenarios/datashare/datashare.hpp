// Coalition data-sharing scenario (Section IV.D, following [33]).
//
// Two learned policies:
//  1. The sharing policy: may a data item be released to a partner? Ground
//     truth: share iff trust(partner) >= value(item) and quality(item) >= 2,
//     and never share audio with untrusted (trust <= 1) partners.
//  2. The helper-microservice selection policy ("which microservice to use
//     for which context and data"): a scoring service applies to an item
//     kind iff it can compute its features; low-trust transfers must route
//     through the redactor.
#pragma once

#include "ilp/classifier.hpp"
#include "ml/dataset.hpp"

namespace agenp::scenarios::datashare {

const std::vector<std::string>& kinds();     // image, audio, document
const std::vector<std::string>& services();  // vision_scorer, audio_scorer, text_scorer, redactor

struct Item {
    std::size_t kind = 0;
    int quality = 0;  // 0..4
    int value = 0;    // 0..4
};

struct PartnerContext {
    int trust = 0;  // 0..4
};

struct ShareInstance {
    Item item;
    PartnerContext partner;
    bool share = false;
};

bool share_ground_truth(const Item& item, const PartnerContext& partner);

ShareInstance sample_share_instance(util::Rng& rng);
std::vector<ShareInstance> sample_share_instances(std::size_t n, util::Rng& rng);

// Which services are valid for (item kind, partner trust)?
bool service_ground_truth(std::size_t service, std::size_t kind, const PartnerContext& partner);

// --- symbolic representations ---

asg::AnswerSetGrammar share_asg();
ilp::HypothesisSpace share_space();
cfg::TokenString share_tokens(const Item& item);
asp::Program share_context(const PartnerContext& partner);
ilp::LabelledExample to_symbolic(const ShareInstance& instance);
asg::AnswerSetGrammar share_reference_model();

ml::Dataset to_dataset(const std::vector<ShareInstance>& instances);

// Service-selection task: strings "use <service> for <kind>".
asg::AnswerSetGrammar service_asg();
ilp::HypothesisSpace service_space();
cfg::TokenString service_tokens(std::size_t service, std::size_t kind);

struct ServiceInstance {
    std::size_t service = 0;
    std::size_t kind = 0;
    PartnerContext partner;
    bool valid = false;
};

std::vector<ServiceInstance> sample_service_instances(std::size_t n, util::Rng& rng);
ilp::LabelledExample to_symbolic(const ServiceInstance& instance);

}  // namespace agenp::scenarios::datashare
