#include "scenarios/datashare/datashare.hpp"

#include "asp/parser.hpp"

namespace agenp::scenarios::datashare {

const std::vector<std::string>& kinds() {
    static const std::vector<std::string> kKinds = {"image", "audio", "document"};
    return kKinds;
}

const std::vector<std::string>& services() {
    static const std::vector<std::string> kServices = {"vision_scorer", "audio_scorer",
                                                       "text_scorer", "redactor"};
    return kServices;
}

bool share_ground_truth(const Item& item, const PartnerContext& partner) {
    if (partner.trust < item.value) return false;
    if (item.quality < 2) return false;
    if (kinds()[item.kind] == "audio" && partner.trust <= 1) return false;
    return true;
}

ShareInstance sample_share_instance(util::Rng& rng) {
    ShareInstance x;
    x.item.kind = static_cast<std::size_t>(rng.uniform(0, 2));
    x.item.quality = static_cast<int>(rng.uniform(0, 4));
    x.item.value = static_cast<int>(rng.uniform(0, 4));
    x.partner.trust = static_cast<int>(rng.uniform(0, 4));
    x.share = share_ground_truth(x.item, x.partner);
    return x;
}

std::vector<ShareInstance> sample_share_instances(std::size_t n, util::Rng& rng) {
    std::vector<ShareInstance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_share_instance(rng));
    return out;
}

bool service_ground_truth(std::size_t service, std::size_t kind, const PartnerContext& partner) {
    const std::string& s = services()[service];
    const std::string& k = kinds()[kind];
    if (s == "redactor") return true;  // always applicable
    if (partner.trust <= 1) return false;  // low trust must use the redactor
    if (s == "vision_scorer") return k == "image";
    if (s == "audio_scorer") return k == "audio";
    if (s == "text_scorer") return k == "document";
    return false;
}

asg::AnswerSetGrammar share_asg() {
    std::string text = "request -> \"share\" kind quality value\n";
    for (const auto& k : kinds()) text += "kind -> \"" + k + "\" { kind(" + k + "). }\n";
    for (int q = 0; q <= 4; ++q) {
        text += "quality -> \"q=" + std::to_string(q) + "\" { quality(" + std::to_string(q) + "). }\n";
    }
    for (int v = 0; v <= 4; ++v) {
        text += "value -> \"v=" + std::to_string(v) + "\" { value(" + std::to_string(v) + "). }\n";
    }
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace share_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("kind", {ilp::ArgSpec::constant("kind")}, 2));
    bias.body.push_back(ilp::ModeAtom("quality", {ilp::ArgSpec::var("level")}, 3));
    bias.body.push_back(ilp::ModeAtom("value", {ilp::ArgSpec::var("level")}, 4));
    bias.body.push_back(ilp::ModeAtom("trust", {ilp::ArgSpec::var("level")}));
    for (const auto& k : kinds()) bias.add_constant("kind", asp::Term::constant(k));
    for (int v = 0; v <= 4; ++v) bias.add_constant("level", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "level", {asp::Comparison::Op::Lt, asp::Comparison::Op::Le, asp::Comparison::Op::Gt},
        /*var_vs_const=*/true, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString share_tokens(const Item& item) {
    return {util::Symbol("share"), util::Symbol(kinds()[item.kind]),
            util::Symbol("q=" + std::to_string(item.quality)),
            util::Symbol("v=" + std::to_string(item.value))};
}

asp::Program share_context(const PartnerContext& partner) {
    return asp::parse_program("trust(" + std::to_string(partner.trust) + ").");
}

ilp::LabelledExample to_symbolic(const ShareInstance& instance) {
    return {share_tokens(instance.item), share_context(instance.partner), instance.share};
}

asg::AnswerSetGrammar share_reference_model() {
    return share_asg().with_rules({
        {asp::parse_rule(":- value(V)@4, trust(T), T < V."), 0},
        {asp::parse_rule(":- quality(Q)@3, Q < 2."), 0},
        {asp::parse_rule(":- kind(audio)@2, trust(T), T <= 1."), 0},
    });
}

ml::Dataset to_dataset(const std::vector<ShareInstance>& instances) {
    ml::Dataset d({ml::FeatureSpec::categorical("kind", kinds()),
                   ml::FeatureSpec::numeric_feature("quality"),
                   ml::FeatureSpec::numeric_feature("value"),
                   ml::FeatureSpec::numeric_feature("trust")});
    for (const auto& x : instances) {
        d.add_row({static_cast<double>(x.item.kind), static_cast<double>(x.item.quality),
                   static_cast<double>(x.item.value), static_cast<double>(x.partner.trust)},
                  x.share ? 1 : 0);
    }
    return d;
}

asg::AnswerSetGrammar service_asg() {
    std::string text = "selection -> \"use\" service \"for\" kind\n";
    for (const auto& s : services()) text += "service -> \"" + s + "\" { service(" + s + "). }\n";
    for (const auto& k : kinds()) text += "kind -> \"" + k + "\" { kind(" + k + "). }\n";
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace service_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("service", {ilp::ArgSpec::constant("service")}, 2));
    bias.body.push_back(ilp::ModeAtom("kind", {ilp::ArgSpec::constant("kind")}, 4));
    bias.body.push_back(ilp::ModeAtom("trust", {ilp::ArgSpec::var("level")}));
    for (const auto& s : services()) bias.add_constant("service", asp::Term::constant(s));
    for (const auto& k : kinds()) bias.add_constant("kind", asp::Term::constant(k));
    for (int v = 0; v <= 4; ++v) bias.add_constant("level", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode("level", {asp::Comparison::Op::Le}));
    bias.max_body_atoms = 2;
    bias.max_vars = 1;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString service_tokens(std::size_t service, std::size_t kind) {
    return {util::Symbol("use"), util::Symbol(services()[service]), util::Symbol("for"),
            util::Symbol(kinds()[kind])};
}

std::vector<ServiceInstance> sample_service_instances(std::size_t n, util::Rng& rng) {
    std::vector<ServiceInstance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ServiceInstance x;
        x.service = static_cast<std::size_t>(rng.uniform(0, 3));
        x.kind = static_cast<std::size_t>(rng.uniform(0, 2));
        x.partner.trust = static_cast<int>(rng.uniform(0, 4));
        x.valid = service_ground_truth(x.service, x.kind, x.partner);
        out.push_back(x);
    }
    return out;
}

ilp::LabelledExample to_symbolic(const ServiceInstance& instance) {
    return {service_tokens(instance.service, instance.kind), share_context(instance.partner),
            instance.valid};
}

}  // namespace agenp::scenarios::datashare
