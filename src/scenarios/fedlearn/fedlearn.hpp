// Federated-learning governance scenario (Section IV.E).
//
// Coalition members exchange model "insights" instead of raw data. When an
// insight arrives from a partner, the receiving party must decide how to
// incorporate it: adopt it outright, combine (ensemble) it with the local
// model, or retrain a fresh model from it. Ground truth for which handling
// actions are permissible given (trust, reported accuracy, staleness):
//
//   adopt    allowed iff trust >= 3 and staleness <= 1 and accuracy >= 7
//   combine  allowed iff trust >= 2 and accuracy >= 5
//   retrain  allowed iff trust >= 1   (rebuilding verifies the insight)
//
// A policy here is the SET of allowed actions — language membership of
// "handle <action>" strings under the insight's context.
#pragma once

#include "ilp/classifier.hpp"
#include "ml/dataset.hpp"

namespace agenp::scenarios::fedlearn {

const std::vector<std::string>& actions();  // adopt, combine, retrain

struct Insight {
    int trust = 0;      // 0..4 trust in the providing party
    int accuracy = 0;   // 0..10 reported validation accuracy (deciles)
    int staleness = 0;  // 0..5 rounds since trained
};

bool ground_truth(std::size_t action, const Insight& insight);

struct Instance {
    std::size_t action = 0;
    Insight insight;
    bool allowed = false;
};

Instance sample_instance(util::Rng& rng);
std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng);

asg::AnswerSetGrammar initial_asg();
ilp::HypothesisSpace hypothesis_space();
cfg::TokenString action_tokens(std::size_t action);
asp::Program context_program(const Insight& insight);
ilp::LabelledExample to_symbolic(const Instance& instance);
asg::AnswerSetGrammar reference_model();

ml::Dataset to_dataset(const std::vector<Instance>& instances);

// The permitted action set for an insight under a learned model.
std::vector<std::string> allowed_actions(const asg::AnswerSetGrammar& model, const Insight& insight);

}  // namespace agenp::scenarios::fedlearn
