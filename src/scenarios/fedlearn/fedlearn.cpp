#include "scenarios/fedlearn/fedlearn.hpp"

#include "asg/membership.hpp"
#include "asp/parser.hpp"

namespace agenp::scenarios::fedlearn {

const std::vector<std::string>& actions() {
    static const std::vector<std::string> kActions = {"adopt", "combine", "retrain"};
    return kActions;
}

bool ground_truth(std::size_t action, const Insight& insight) {
    const std::string& a = actions()[action];
    if (a == "adopt") {
        return insight.trust >= 3 && insight.staleness <= 1 && insight.accuracy >= 7;
    }
    if (a == "combine") return insight.trust >= 2 && insight.accuracy >= 5;
    return insight.trust >= 1;  // retrain
}

Instance sample_instance(util::Rng& rng) {
    Instance x;
    x.action = static_cast<std::size_t>(rng.uniform(0, 2));
    x.insight.trust = static_cast<int>(rng.uniform(0, 4));
    x.insight.accuracy = static_cast<int>(rng.uniform(0, 10));
    x.insight.staleness = static_cast<int>(rng.uniform(0, 5));
    x.allowed = ground_truth(x.action, x.insight);
    return x;
}

std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng) {
    std::vector<Instance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_instance(rng));
    return out;
}

asg::AnswerSetGrammar initial_asg() {
    std::string text = "handling -> \"handle\" action\n";
    for (const auto& a : actions()) text += "action -> \"" + a + "\" { action(" + a + "). }\n";
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace hypothesis_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("action", {ilp::ArgSpec::constant("action")}, 2));
    bias.body.push_back(ilp::ModeAtom("trust", {ilp::ArgSpec::var("scale")}));
    bias.body.push_back(ilp::ModeAtom("accuracy", {ilp::ArgSpec::var("scale")}));
    bias.body.push_back(ilp::ModeAtom("staleness", {ilp::ArgSpec::var("scale")}));
    for (const auto& a : actions()) bias.add_constant("action", asp::Term::constant(a));
    for (int v = 0; v <= 10; ++v) bias.add_constant("scale", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "scale", {asp::Comparison::Op::Lt, asp::Comparison::Op::Gt}));
    bias.max_body_atoms = 2;
    bias.max_vars = 1;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString action_tokens(std::size_t action) {
    return {util::Symbol("handle"), util::Symbol(actions()[action])};
}

asp::Program context_program(const Insight& insight) {
    return asp::parse_program(
        "trust(" + std::to_string(insight.trust) + ").\n" +
        "accuracy(" + std::to_string(insight.accuracy) + ").\n" +
        "staleness(" + std::to_string(insight.staleness) + ").\n");
}

ilp::LabelledExample to_symbolic(const Instance& instance) {
    return {action_tokens(instance.action), context_program(instance.insight), instance.allowed};
}

asg::AnswerSetGrammar reference_model() {
    return initial_asg().with_rules({
        {asp::parse_rule(":- action(adopt)@2, trust(T), T < 3."), 0},
        {asp::parse_rule(":- action(adopt)@2, staleness(S), S > 1."), 0},
        {asp::parse_rule(":- action(adopt)@2, accuracy(A), A < 7."), 0},
        {asp::parse_rule(":- action(combine)@2, trust(T), T < 2."), 0},
        {asp::parse_rule(":- action(combine)@2, accuracy(A), A < 5."), 0},
        {asp::parse_rule(":- action(retrain)@2, trust(T), T < 1."), 0},
    });
}

ml::Dataset to_dataset(const std::vector<Instance>& instances) {
    ml::Dataset d({ml::FeatureSpec::categorical("action", actions()),
                   ml::FeatureSpec::numeric_feature("trust"),
                   ml::FeatureSpec::numeric_feature("accuracy"),
                   ml::FeatureSpec::numeric_feature("staleness")});
    for (const auto& x : instances) {
        d.add_row({static_cast<double>(x.action), static_cast<double>(x.insight.trust),
                   static_cast<double>(x.insight.accuracy),
                   static_cast<double>(x.insight.staleness)},
                  x.allowed ? 1 : 0);
    }
    return d;
}

std::vector<std::string> allowed_actions(const asg::AnswerSetGrammar& model, const Insight& insight) {
    std::vector<std::string> out;
    auto context = context_program(insight);
    for (std::size_t a = 0; a < actions().size(); ++a) {
        if (asg::in_language(model, action_tokens(a), context)) out.push_back(actions()[a]);
    }
    return out;
}

}  // namespace agenp::scenarios::fedlearn
