// Connected-and-Autonomous-Vehicle scenario (Section IV.A, following [25]).
//
// A CAV receives requests to execute driving tasks ("perform overtake").
// Whether a request should be accepted depends on the current environment
// (context): the vehicle's SAE level of autonomy, the transient LOA ceiling
// imposed by the region, and the weather. The ground-truth policy is
//
//   accept task  iff  requires(task) <= vehicle_loa
//                and  requires(task) <= region_limit
//                and  not (weather = fog and requires(task) >= 3)
//
// which the symbolic learner must recover as three ASG constraints, and the
// statistical baselines must approximate from flattened feature vectors —
// the setting behind the paper's "fewer examples, greater accuracy" claim.
#pragma once

#include "ilp/classifier.hpp"
#include "ml/dataset.hpp"

namespace agenp::scenarios::cav {

struct TaskSpec {
    std::string name;
    int required_loa;  // SAE level the task needs
};

// The driving tasks and their required autonomy levels.
const std::vector<TaskSpec>& tasks();

// Environment (context) for one request.
struct Environment {
    int vehicle_loa = 0;   // 0..5
    int region_limit = 0;  // 0..5
    int weather = 0;       // index into weathers()
};

const std::vector<std::string>& weathers();

struct Instance {
    std::size_t task = 0;  // index into tasks()
    Environment env;
    bool accepted = false;  // ground-truth label
};

bool ground_truth(const Instance& instance);

Instance sample_instance(util::Rng& rng);
std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng);

// --- symbolic representation ---

// Initial GPM: syntax of task requests plus per-task requires(k) facts; no
// semantic conditions (those are learned).
asg::AnswerSetGrammar initial_asg();

// Hypothesis space for the root production: requires@task, context atoms,
// LOA comparisons.
ilp::HypothesisSpace hypothesis_space();

cfg::TokenString request_tokens(const Instance& instance);
asp::Program context_program(const Environment& env);

ilp::LabelledExample to_symbolic(const Instance& instance);

// --- tabular representation for the ML baselines ---

ml::Dataset to_dataset(const std::vector<Instance>& instances);

// The hand-written target ASG (for tests and sanity baselines).
asg::AnswerSetGrammar reference_model();

// --- capability sharing between CAVs (Section IV.A, second half) -----------
//
// "CAVs of lower LOA may be able to utilize capabilities or services from
// nearby CAVs of higher LOA ... subject to temporal, spatial, and utility
// constraints." A borrow request names a capability; validity depends on
// the peer's LOA, its distance, and the time window:
//
//   borrow allowed iff  peer_loa >= needs(capability)
//                  and  distance <= 2
//                  and  not (window = closing and needs(capability) >= 3)

struct CapabilitySpec {
    std::string name;
    int needs_loa;
};

const std::vector<CapabilitySpec>& capabilities();  // sensing, mapping, planning, piloting
const std::vector<std::string>& windows();          // open, closing

struct SharingContext {
    int peer_loa = 0;   // 0..5
    int distance = 0;   // hops, 0..4
    int window = 0;     // index into windows()
};

struct SharingInstance {
    std::size_t capability = 0;
    SharingContext context;
    bool allowed = false;
};

bool sharing_ground_truth(const SharingInstance& instance);
SharingInstance sample_sharing_instance(util::Rng& rng);
std::vector<SharingInstance> sample_sharing_instances(std::size_t n, util::Rng& rng);

asg::AnswerSetGrammar sharing_asg();
ilp::HypothesisSpace sharing_space();
cfg::TokenString sharing_tokens(const SharingInstance& instance);
asp::Program sharing_context_program(const SharingContext& context);
ilp::LabelledExample to_symbolic(const SharingInstance& instance);
asg::AnswerSetGrammar sharing_reference_model();

}  // namespace agenp::scenarios::cav
