// Neurosymbolic perception for the CAV scenario (Section V.C's closing
// vision: "statistical machine learned functions are used to detect
// 'atomic' concepts ... and a rule model of causation can be used to
// identify more complex concepts").
//
// A statistical one-vs-rest classifier turns raw sensor vectors
// (visibility, droplet rate, ambient light) into the symbolic weather fact
// the generative policy reasons over; the symbolic layer stays unchanged.
#pragma once

#include "ml/one_vs_rest.hpp"
#include "scenarios/cav/cav.hpp"

namespace agenp::scenarios::cav {

// One raw sensor sample. Features (all noisy, class-dependent):
// visibility (0-10), droplet rate (0-10), ambient light (0-10).
struct SensorReading {
    std::vector<double> values;
};

// Samples a reading for a true weather class; `noise` scales the spread
// (1.0 = nominal sensors, larger = degraded sensors).
SensorReading sample_reading(int weather, util::Rng& rng, double noise = 1.0);

// Labelled readings for training/evaluating the perception model.
ml::Dataset perception_dataset(std::size_t per_class, util::Rng& rng, double noise = 1.0);

class WeatherPerception {
public:
    // Trains on synthetic labelled readings.
    void fit(std::size_t per_class, util::Rng& rng, double noise = 1.0);

    [[nodiscard]] int classify(const SensorReading& reading) const;

    // Fraction of a held-out set classified correctly.
    [[nodiscard]] double holdout_accuracy(std::size_t per_class, util::Rng& rng,
                                          double noise = 1.0) const;

    // The symbolic context for an environment whose weather is PERCEIVED
    // from a sensor reading rather than given: LOA facts are exact, the
    // weather fact comes from the classifier.
    [[nodiscard]] asp::Program perceived_context(const Environment& env,
                                                 const SensorReading& reading) const;

private:
    ml::OneVsRest model_{static_cast<int>(weathers().size())};
};

}  // namespace agenp::scenarios::cav
