#include "scenarios/cav/perception.hpp"

#include <cmath>

#include "asp/parser.hpp"

namespace agenp::scenarios::cav {
namespace {

// Box-Muller Gaussian from the deterministic stream.
double gaussian(util::Rng& rng, double mean, double stddev) {
    double u1 = rng.uniform01();
    double u2 = rng.uniform01();
    if (u1 < 1e-12) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

struct SensorProfile {
    double visibility, droplets, light;
};

// Class-conditional sensor means: clear, rain, fog.
const SensorProfile kProfiles[] = {
    {9.0, 0.5, 8.0},
    {5.0, 7.0, 4.0},
    {1.5, 2.0, 5.0},
};

}  // namespace

SensorReading sample_reading(int weather, util::Rng& rng, double noise) {
    const auto& p = kProfiles[static_cast<std::size_t>(weather)];
    return {{gaussian(rng, p.visibility, 1.2 * noise), gaussian(rng, p.droplets, 1.2 * noise),
             gaussian(rng, p.light, 1.2 * noise)}};
}

ml::Dataset perception_dataset(std::size_t per_class, util::Rng& rng, double noise) {
    ml::Dataset d({ml::FeatureSpec::numeric_feature("visibility"),
                   ml::FeatureSpec::numeric_feature("droplets"),
                   ml::FeatureSpec::numeric_feature("light")});
    for (int w = 0; w < static_cast<int>(weathers().size()); ++w) {
        for (std::size_t i = 0; i < per_class; ++i) {
            d.add_row(sample_reading(w, rng, noise).values, w);
        }
    }
    return d;
}

void WeatherPerception::fit(std::size_t per_class, util::Rng& rng, double noise) {
    model_.fit(perception_dataset(per_class, rng, noise));
}

int WeatherPerception::classify(const SensorReading& reading) const {
    return model_.predict(reading.values);
}

double WeatherPerception::holdout_accuracy(std::size_t per_class, util::Rng& rng,
                                           double noise) const {
    auto test = perception_dataset(per_class, rng, noise);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        correct += model_.predict(test.row(i)) == test.label(i);
    }
    return test.size() == 0 ? 0 : static_cast<double>(correct) / static_cast<double>(test.size());
}

asp::Program WeatherPerception::perceived_context(const Environment& env,
                                                  const SensorReading& reading) const {
    int perceived = classify(reading);
    return asp::parse_program(
        "vehicle_loa(" + std::to_string(env.vehicle_loa) + ").\n" +
        "region_limit(" + std::to_string(env.region_limit) + ").\n" +
        "weather(" + weathers()[static_cast<std::size_t>(perceived)] + ").\n");
}

}  // namespace agenp::scenarios::cav
