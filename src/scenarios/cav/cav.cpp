#include "scenarios/cav/cav.hpp"

#include "asp/parser.hpp"

namespace agenp::scenarios::cav {

const std::vector<TaskSpec>& tasks() {
    static const std::vector<TaskSpec> kTasks = {
        {"lane_keep", 1}, {"lane_change", 2}, {"overtake", 3}, {"self_park", 4}, {"full_auto", 5},
    };
    return kTasks;
}

const std::vector<std::string>& weathers() {
    static const std::vector<std::string> kWeathers = {"clear", "rain", "fog"};
    return kWeathers;
}

bool ground_truth(const Instance& instance) {
    int required = tasks()[instance.task].required_loa;
    if (required > instance.env.vehicle_loa) return false;
    if (required > instance.env.region_limit) return false;
    if (weathers()[static_cast<std::size_t>(instance.env.weather)] == "fog" && required >= 3) {
        return false;
    }
    return true;
}

Instance sample_instance(util::Rng& rng) {
    Instance x;
    x.task = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(tasks().size()) - 1));
    x.env.vehicle_loa = static_cast<int>(rng.uniform(0, 5));
    x.env.region_limit = static_cast<int>(rng.uniform(0, 5));
    x.env.weather = static_cast<int>(rng.uniform(0, static_cast<std::int64_t>(weathers().size()) - 1));
    x.accepted = ground_truth(x);
    return x;
}

std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng) {
    std::vector<Instance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_instance(rng));
    return out;
}

asg::AnswerSetGrammar initial_asg() {
    std::string text = "request -> \"perform\" task\n";
    for (const auto& t : tasks()) {
        text += "task -> \"" + t.name + "\" { requires(" + std::to_string(t.required_loa) + "). }\n";
    }
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace hypothesis_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("loa")}, 2));
    bias.body.push_back(ilp::ModeAtom("vehicle_loa", {ilp::ArgSpec::var("loa")}));
    bias.body.push_back(ilp::ModeAtom("region_limit", {ilp::ArgSpec::var("loa")}));
    bias.body.push_back(ilp::ModeAtom("weather", {ilp::ArgSpec::constant("weather")}));
    for (const auto& w : weathers()) bias.add_constant("weather", asp::Term::constant(w));
    for (int v = 0; v <= 5; ++v) bias.add_constant("loa", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "loa", {asp::Comparison::Op::Gt, asp::Comparison::Op::Ge},
        /*var_vs_const=*/true, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString request_tokens(const Instance& instance) {
    return {util::Symbol("perform"), util::Symbol(tasks()[instance.task].name)};
}

asp::Program context_program(const Environment& env) {
    return asp::parse_program(
        "vehicle_loa(" + std::to_string(env.vehicle_loa) + ").\n" +
        "region_limit(" + std::to_string(env.region_limit) + ").\n" +
        "weather(" + weathers()[static_cast<std::size_t>(env.weather)] + ").\n");
}

ilp::LabelledExample to_symbolic(const Instance& instance) {
    return {request_tokens(instance), context_program(instance.env), instance.accepted};
}

ml::Dataset to_dataset(const std::vector<Instance>& instances) {
    std::vector<std::string> task_names;
    for (const auto& t : tasks()) task_names.push_back(t.name);
    ml::Dataset d({ml::FeatureSpec::categorical("task", task_names),
                   ml::FeatureSpec::numeric_feature("vehicle_loa"),
                   ml::FeatureSpec::numeric_feature("region_limit"),
                   ml::FeatureSpec::categorical("weather", weathers())});
    for (const auto& x : instances) {
        d.add_row({static_cast<double>(x.task), static_cast<double>(x.env.vehicle_loa),
                   static_cast<double>(x.env.region_limit), static_cast<double>(x.env.weather)},
                  x.accepted ? 1 : 0);
    }
    return d;
}

asg::AnswerSetGrammar reference_model() {
    return initial_asg().with_rules({
        {asp::parse_rule(":- requires(L)@2, vehicle_loa(V), L > V."), 0},
        {asp::parse_rule(":- requires(L)@2, region_limit(R), L > R."), 0},
        {asp::parse_rule(":- requires(L)@2, weather(fog), L >= 3."), 0},
    });
}

const std::vector<CapabilitySpec>& capabilities() {
    static const std::vector<CapabilitySpec> kCapabilities = {
        {"sensing", 1}, {"mapping", 2}, {"planning", 3}, {"piloting", 5},
    };
    return kCapabilities;
}

const std::vector<std::string>& windows() {
    static const std::vector<std::string> kWindows = {"open", "closing"};
    return kWindows;
}

bool sharing_ground_truth(const SharingInstance& instance) {
    int needs = capabilities()[instance.capability].needs_loa;
    if (instance.context.peer_loa < needs) return false;
    if (instance.context.distance > 2) return false;
    if (windows()[static_cast<std::size_t>(instance.context.window)] == "closing" && needs >= 3) {
        return false;
    }
    return true;
}

SharingInstance sample_sharing_instance(util::Rng& rng) {
    SharingInstance x;
    x.capability = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(capabilities().size()) - 1));
    x.context.peer_loa = static_cast<int>(rng.uniform(0, 5));
    x.context.distance = static_cast<int>(rng.uniform(0, 4));
    x.context.window = static_cast<int>(rng.uniform(0, 1));
    x.allowed = sharing_ground_truth(x);
    return x;
}

std::vector<SharingInstance> sample_sharing_instances(std::size_t n, util::Rng& rng) {
    std::vector<SharingInstance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_sharing_instance(rng));
    return out;
}

asg::AnswerSetGrammar sharing_asg() {
    std::string text = "request -> \"borrow\" capability\n";
    for (const auto& c : capabilities()) {
        text += "capability -> \"" + c.name + "\" { needs(" + std::to_string(c.needs_loa) + "). }\n";
    }
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace sharing_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("needs", {ilp::ArgSpec::var("loa")}, 2));
    bias.body.push_back(ilp::ModeAtom("peer_loa", {ilp::ArgSpec::var("loa")}));
    bias.body.push_back(ilp::ModeAtom("distance", {ilp::ArgSpec::var("loa")}));
    bias.body.push_back(ilp::ModeAtom("window", {ilp::ArgSpec::constant("window")}));
    for (const auto& w : windows()) bias.add_constant("window", asp::Term::constant(w));
    for (int v = 0; v <= 5; ++v) bias.add_constant("loa", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "loa", {asp::Comparison::Op::Gt, asp::Comparison::Op::Ge},
        /*var_vs_const=*/true, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString sharing_tokens(const SharingInstance& instance) {
    return {util::Symbol("borrow"), util::Symbol(capabilities()[instance.capability].name)};
}

asp::Program sharing_context_program(const SharingContext& context) {
    return asp::parse_program(
        "peer_loa(" + std::to_string(context.peer_loa) + ").\n" +
        "distance(" + std::to_string(context.distance) + ").\n" +
        "window(" + windows()[static_cast<std::size_t>(context.window)] + ").\n");
}

ilp::LabelledExample to_symbolic(const SharingInstance& instance) {
    return {sharing_tokens(instance), sharing_context_program(instance.context), instance.allowed};
}

asg::AnswerSetGrammar sharing_reference_model() {
    return sharing_asg().with_rules({
        {asp::parse_rule(":- needs(N)@2, peer_loa(P), N > P."), 0},
        {asp::parse_rule(":- distance(D), D > 2."), 0},
        {asp::parse_rule(":- needs(N)@2, window(closing), N >= 3."), 0},
    });
}

}  // namespace agenp::scenarios::cav
