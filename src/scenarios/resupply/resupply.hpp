// Logistical-resupply scenario (Section IV.B, DAIS-ITA [26]).
//
// A convoy plan names a route, a departure slot and an escort ratio; whether
// a plan is acceptable depends on the mission context — threat level, risk
// appetite, weather (predicted during planning, actual during execution).
// Ground truth:
//
//   reject a plan  iff  threat > risk_appetite          (too hot for taste)
//                   or  route = ridge and weather = storm (impassable)
//                   or  slot = night and escort < 2       (night needs escort)
//
// Missions arrive over time; decisions made during early missions become
// training examples for later ones — "the coalition is able to learn from
// previous experience".
#pragma once

#include "ilp/classifier.hpp"
#include "ml/dataset.hpp"

namespace agenp::scenarios::resupply {

const std::vector<std::string>& routes();    // valley, ridge, urban
const std::vector<std::string>& slots();     // day, night
const std::vector<std::string>& weathers();  // clear, rain, storm

enum class Phase { Planning, Execution };

struct MissionContext {
    int threat = 0;         // 0..4
    int risk_appetite = 0;  // 0..4
    int weather = 0;        // index into weathers(); predicted or actual per phase
    Phase phase = Phase::Planning;
};

struct Plan {
    std::size_t route = 0;
    std::size_t slot = 0;
    int escort = 1;  // 1..3 escort ratio
};

struct Instance {
    Plan plan;
    MissionContext context;
    bool acceptable = false;
};

bool ground_truth(const Plan& plan, const MissionContext& context);

Instance sample_instance(util::Rng& rng);
std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng);

// --- symbolic representation ---

asg::AnswerSetGrammar initial_asg();
ilp::HypothesisSpace hypothesis_space();

cfg::TokenString plan_tokens(const Plan& plan);
asp::Program context_program(const MissionContext& context);
ilp::LabelledExample to_symbolic(const Instance& instance);

ml::Dataset to_dataset(const std::vector<Instance>& instances);

asg::AnswerSetGrammar reference_model();

// --- the mission stream (experiment E5) ---

struct MissionOutcome {
    std::size_t mission = 0;
    std::size_t training_examples = 0;  // accumulated so far
    bool model_found = false;
    double accuracy = 0;  // on held-out plans for this mission's context
};

struct CampaignOptions {
    std::size_t missions = 8;
    std::size_t plans_per_mission = 12;  // decisions (=> examples) per mission
    std::size_t eval_per_mission = 60;
    // Mission index at which command shifts the risk appetite (context
    // change); the symbolic model needs no relearning, only new context.
    std::size_t risk_shift_at = 4;
    std::uint64_t seed = 99;
};

// Runs the campaign: each mission adds labelled experience, the GPM is
// relearned from everything so far, and accuracy is measured on unseen
// plans. Reproduces the "easier and more accurate as more training samples
// become available" claim.
std::vector<MissionOutcome> run_campaign(const CampaignOptions& options);

}  // namespace agenp::scenarios::resupply
