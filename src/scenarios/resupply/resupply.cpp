#include "scenarios/resupply/resupply.hpp"

#include "asp/parser.hpp"
#include "ml/metrics.hpp"

namespace agenp::scenarios::resupply {

const std::vector<std::string>& routes() {
    static const std::vector<std::string> kRoutes = {"valley", "ridge", "urban"};
    return kRoutes;
}

const std::vector<std::string>& slots() {
    static const std::vector<std::string> kSlots = {"day", "night"};
    return kSlots;
}

const std::vector<std::string>& weathers() {
    static const std::vector<std::string> kWeathers = {"clear", "rain", "storm"};
    return kWeathers;
}

bool ground_truth(const Plan& plan, const MissionContext& context) {
    if (context.threat > context.risk_appetite) return false;
    if (routes()[plan.route] == "ridge" &&
        weathers()[static_cast<std::size_t>(context.weather)] == "storm") {
        return false;
    }
    if (slots()[plan.slot] == "night" && plan.escort < 2) return false;
    // Planning-phase conservatism: speculative information means plans must
    // budget a full escort regardless of slot (the paper's planning vs
    // execution distinction).
    if (context.phase == Phase::Planning && plan.escort < 2) return false;
    return true;
}

Instance sample_instance(util::Rng& rng) {
    Instance x;
    x.plan.route = static_cast<std::size_t>(rng.uniform(0, 2));
    x.plan.slot = static_cast<std::size_t>(rng.uniform(0, 1));
    x.plan.escort = static_cast<int>(rng.uniform(1, 3));
    x.context.threat = static_cast<int>(rng.uniform(0, 4));
    x.context.risk_appetite = static_cast<int>(rng.uniform(0, 4));
    x.context.weather = static_cast<int>(rng.uniform(0, 2));
    x.context.phase = rng.bernoulli(0.5) ? Phase::Planning : Phase::Execution;
    x.acceptable = ground_truth(x.plan, x.context);
    return x;
}

std::vector<Instance> sample_instances(std::size_t n, util::Rng& rng) {
    std::vector<Instance> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_instance(rng));
    return out;
}

asg::AnswerSetGrammar initial_asg() {
    std::string text = "plan -> \"convoy\" route slot escort\n";
    for (const auto& r : routes()) text += "route -> \"" + r + "\" { route(" + r + "). }\n";
    for (const auto& s : slots()) text += "slot -> \"" + s + "\" { slot(" + s + "). }\n";
    for (int e = 1; e <= 3; ++e) {
        text += "escort -> \"escort=" + std::to_string(e) + "\" { escort(" + std::to_string(e) +
                "). }\n";
    }
    return asg::AnswerSetGrammar::parse(text);
}

ilp::HypothesisSpace hypothesis_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("route", {ilp::ArgSpec::constant("route")}, 2));
    bias.body.push_back(ilp::ModeAtom("slot", {ilp::ArgSpec::constant("slot")}, 3));
    bias.body.push_back(ilp::ModeAtom("escort", {ilp::ArgSpec::var("level")}, 4));
    bias.body.push_back(ilp::ModeAtom("threat", {ilp::ArgSpec::var("level")}));
    bias.body.push_back(ilp::ModeAtom("risk_appetite", {ilp::ArgSpec::var("level")}));
    bias.body.push_back(ilp::ModeAtom("weather", {ilp::ArgSpec::constant("weather")}));
    bias.body.push_back(ilp::ModeAtom("phase", {ilp::ArgSpec::constant("phase")}));
    bias.add_symbol_constants("phase", {"planning", "execution"});
    for (const auto& r : routes()) bias.add_constant("route", asp::Term::constant(r));
    for (const auto& s : slots()) bias.add_constant("slot", asp::Term::constant(s));
    for (const auto& w : weathers()) bias.add_constant("weather", asp::Term::constant(w));
    for (int v = 0; v <= 4; ++v) bias.add_constant("level", asp::Term::integer(v));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "level", {asp::Comparison::Op::Gt, asp::Comparison::Op::Lt},
        /*var_vs_const=*/true, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    bias.max_comparisons = 1;
    return ilp::generate_space(bias, {0});
}

cfg::TokenString plan_tokens(const Plan& plan) {
    return {util::Symbol("convoy"), util::Symbol(routes()[plan.route]),
            util::Symbol(slots()[plan.slot]), util::Symbol("escort=" + std::to_string(plan.escort))};
}

asp::Program context_program(const MissionContext& context) {
    return asp::parse_program(
        "threat(" + std::to_string(context.threat) + ").\n" +
        "risk_appetite(" + std::to_string(context.risk_appetite) + ").\n" +
        "weather(" + weathers()[static_cast<std::size_t>(context.weather)] + ").\n" +
        "phase(" + std::string(context.phase == Phase::Planning ? "planning" : "execution") +
        ").\n");
}

ilp::LabelledExample to_symbolic(const Instance& instance) {
    return {plan_tokens(instance.plan), context_program(instance.context), instance.acceptable};
}

ml::Dataset to_dataset(const std::vector<Instance>& instances) {
    ml::Dataset d({ml::FeatureSpec::categorical("route", routes()),
                   ml::FeatureSpec::categorical("slot", slots()),
                   ml::FeatureSpec::numeric_feature("escort"),
                   ml::FeatureSpec::numeric_feature("threat"),
                   ml::FeatureSpec::numeric_feature("risk_appetite"),
                   ml::FeatureSpec::categorical("weather", weathers())});
    for (const auto& x : instances) {
        d.add_row({static_cast<double>(x.plan.route), static_cast<double>(x.plan.slot),
                   static_cast<double>(x.plan.escort), static_cast<double>(x.context.threat),
                   static_cast<double>(x.context.risk_appetite),
                   static_cast<double>(x.context.weather)},
                  x.acceptable ? 1 : 0);
    }
    return d;
}

asg::AnswerSetGrammar reference_model() {
    return initial_asg().with_rules({
        {asp::parse_rule(":- threat(T), risk_appetite(R), T > R."), 0},
        {asp::parse_rule(":- route(ridge)@2, weather(storm)."), 0},
        {asp::parse_rule(":- slot(night)@3, escort(E)@4, E < 2."), 0},
        {asp::parse_rule(":- phase(planning), escort(E)@4, E < 2."), 0},
    });
}

std::vector<MissionOutcome> run_campaign(const CampaignOptions& options) {
    util::Rng rng(options.seed);
    std::vector<ilp::LabelledExample> experience;
    std::vector<MissionOutcome> outcomes;

    ilp::SymbolicPolicyClassifier model(initial_asg(), hypothesis_space());

    for (std::size_t m = 0; m < options.missions; ++m) {
        // Each mission fixes one context; risk appetite shifts mid-campaign.
        MissionContext ctx;
        ctx.threat = static_cast<int>(rng.uniform(0, 4));
        ctx.risk_appetite = m < options.risk_shift_at ? 1 : 3;
        ctx.weather = static_cast<int>(rng.uniform(0, 2));
        ctx.phase = Phase::Execution;

        // Decisions taken during the mission become labelled experience.
        for (std::size_t p = 0; p < options.plans_per_mission; ++p) {
            Instance x;
            x.plan.route = static_cast<std::size_t>(rng.uniform(0, 2));
            x.plan.slot = static_cast<std::size_t>(rng.uniform(0, 1));
            x.plan.escort = static_cast<int>(rng.uniform(1, 3));
            x.context = ctx;
            x.acceptable = ground_truth(x.plan, x.context);
            experience.push_back(to_symbolic(x));
        }

        MissionOutcome outcome;
        outcome.mission = m;
        outcome.training_examples = experience.size();
        outcome.model_found = model.fit(experience);

        // Evaluate generalization: unseen plans under *random* contexts,
        // not just the contexts already experienced.
        util::Rng eval_rng(options.seed * 1000 + m);
        std::size_t correct = 0;
        for (std::size_t e = 0; e < options.eval_per_mission; ++e) {
            Instance x = sample_instance(eval_rng);
            bool predicted = model.predict(plan_tokens(x.plan), context_program(x.context));
            if (x.acceptable == predicted) ++correct;
        }
        outcome.accuracy = static_cast<double>(correct) / static_cast<double>(options.eval_per_mission);
        outcomes.push_back(outcome);
    }
    return outcomes;
}

}  // namespace agenp::scenarios::resupply
