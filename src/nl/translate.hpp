// Controlled-natural-language policy authoring (Section III.B: "From
// natural language to grammar-based policies").
//
// End users state intents in a small controlled English; the translator
// compiles them into ASG constraints against a vocabulary that maps words
// to the grammar's annotated predicates:
//
//   deny when role is guest and resource is record
//   deny when hour below 2 and action is delete
//   deny when escort at most 1 and slot is night
//
// Clause forms: `<attr> is <value>`, `<attr> is not <value>`,
// `<attr> below <n>`, `<attr> above <n>`, `<attr> at most <n>`,
// `<attr> at least <n>`. Statements compose with `and`; one statement per
// line; `forbid` is a synonym for `deny when`.
#pragma once

#include <stdexcept>

#include "ilp/task.hpp"
#include "xacml/attributes.hpp"

namespace agenp::nl {

struct TranslationError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

// One word the controlled language understands.
struct NlAttribute {
    std::string word;     // surface form in sentences
    asp::Symbol predicate;  // ASG predicate it compiles to
    int annotation = asp::kUnannotated;  // production child ( kUnannotated = context atom )
    bool numeric = false;
};

struct Vocabulary {
    std::vector<NlAttribute> attributes;
    int target_production = 0;  // where the compiled constraints attach

    [[nodiscard]] const NlAttribute* find(std::string_view word) const;
};

// Vocabulary for a schema-derived XACML bridge grammar (attribute i is
// child i+1 of the root production).
Vocabulary vocabulary_from_schema(const xacml::Schema& schema);

struct Intent {
    asp::Rule rule;
    int production = 0;
    std::string source;  // the original sentence
};

// Translates one statement. Throws TranslationError on words outside the
// vocabulary or malformed clauses.
Intent translate_statement(const Vocabulary& vocabulary, std::string_view sentence);

// Translates a multi-line policy text (blank lines and '#' comments are
// skipped) into a hypothesis ready for AnswerSetGrammar::with_rules.
ilp::Hypothesis translate_policy(const Vocabulary& vocabulary, std::string_view text);

}  // namespace agenp::nl
