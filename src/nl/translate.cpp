#include "nl/translate.hpp"

#include "util/strings.hpp"

namespace agenp::nl {

const NlAttribute* Vocabulary::find(std::string_view word) const {
    for (const auto& a : attributes) {
        if (a.word == word) return &a;
    }
    return nullptr;
}

Vocabulary vocabulary_from_schema(const xacml::Schema& schema) {
    Vocabulary v;
    for (std::size_t i = 0; i < schema.attributes.size(); ++i) {
        const auto& def = schema.attributes[i];
        v.attributes.push_back(
            {def.name, asp::Symbol(def.name), static_cast<int>(i) + 1, def.numeric});
    }
    return v;
}

namespace {

// Consumes words of one clause starting at `pos`; appends to the rule.
// Returns the index after the clause.
std::size_t parse_clause(const Vocabulary& vocabulary, const std::vector<std::string>& words,
                         std::size_t pos, asp::Rule& rule, int& fresh_var) {
    if (pos >= words.size()) throw TranslationError("expected a clause");
    const NlAttribute* attr = vocabulary.find(words[pos]);
    if (!attr) throw TranslationError("unknown attribute '" + words[pos] + "'");
    ++pos;
    if (pos >= words.size()) throw TranslationError("clause for '" + attr->word + "' is incomplete");

    auto numeric_value = [&](const std::string& w) -> std::int64_t {
        if (!util::is_integer(w)) {
            throw TranslationError("expected a number after '" + attr->word + "', got '" + w + "'");
        }
        return std::stoll(w);
    };
    auto fresh = [&] {
        return asp::Term::variable(asp::Symbol("N" + std::to_string(++fresh_var)));
    };
    auto add_numeric = [&](asp::Comparison::Op op, std::int64_t n) {
        asp::Term var = fresh();
        rule.body.push_back(asp::Literal::pos(
            asp::Atom(attr->predicate, {var}, attr->annotation)));
        rule.builtins.emplace_back(op, var, asp::Term::integer(n));
    };

    const std::string& op_word = words[pos];
    if (op_word == "is") {
        ++pos;
        bool negated = pos < words.size() && words[pos] == "not";
        if (negated) ++pos;
        if (pos >= words.size()) throw TranslationError("expected a value after 'is'");
        const std::string& value = words[pos];
        asp::Term arg = util::is_integer(value) ? asp::Term::integer(std::stoll(value))
                                                : asp::Term::constant(value);
        rule.body.emplace_back(asp::Atom(attr->predicate, {arg}, attr->annotation), !negated);
        return pos + 1;
    }
    auto require_word = [&](std::size_t index) -> const std::string& {
        if (index >= words.size()) {
            throw TranslationError("clause for '" + attr->word + "' is incomplete");
        }
        return words[index];
    };
    if (op_word == "below") {
        add_numeric(asp::Comparison::Op::Lt, numeric_value(require_word(pos + 1)));
        return pos + 2;
    }
    if (op_word == "above") {
        add_numeric(asp::Comparison::Op::Gt, numeric_value(require_word(pos + 1)));
        return pos + 2;
    }
    if (op_word == "at" && pos + 1 < words.size()) {
        const std::string& bound = words[pos + 1];
        if (bound == "most") {
            add_numeric(asp::Comparison::Op::Le, numeric_value(require_word(pos + 2)));
            return pos + 3;
        }
        if (bound == "least") {
            add_numeric(asp::Comparison::Op::Ge, numeric_value(require_word(pos + 2)));
            return pos + 3;
        }
    }
    throw TranslationError("unknown clause operator '" + op_word + "' for '" + attr->word + "'");
}

}  // namespace

Intent translate_statement(const Vocabulary& vocabulary, std::string_view sentence) {
    auto words = util::split_ws(sentence);
    std::size_t pos = 0;
    if (words.size() >= 2 && words[0] == "deny" && words[1] == "when") {
        pos = 2;
    } else if (!words.empty() && words[0] == "forbid") {
        pos = 1;
    } else {
        throw TranslationError("statements must start with 'deny when' or 'forbid': " +
                               std::string(sentence));
    }

    Intent intent;
    intent.production = vocabulary.target_production;
    intent.source = std::string(util::trim(sentence));
    int fresh_var = 0;
    while (true) {
        pos = parse_clause(vocabulary, words, pos, intent.rule, fresh_var);
        if (pos >= words.size()) break;
        if (words[pos] != "and") {
            throw TranslationError("expected 'and' between clauses, got '" + words[pos] + "'");
        }
        ++pos;
    }
    if (pos > words.size()) throw TranslationError("truncated clause in: " + std::string(sentence));
    if (intent.rule.body.empty()) throw TranslationError("statement has no clauses");
    return intent;
}

ilp::Hypothesis translate_policy(const Vocabulary& vocabulary, std::string_view text) {
    ilp::Hypothesis out;
    for (const auto& raw : util::split(text, '\n')) {
        auto line = util::trim(raw);
        if (line.empty() || util::starts_with(line, "#")) continue;
        auto intent = translate_statement(vocabulary, line);
        out.emplace_back(std::move(intent.rule), intent.production);
    }
    return out;
}

}  // namespace agenp::nl
