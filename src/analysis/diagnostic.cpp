#include "analysis/diagnostic.hpp"

#include <cstdio>

namespace agenp::analysis {

const char* severity_name(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "unknown";
}

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string Location::to_string() const {
    std::string out;
    if (production >= 0) out += "production " + std::to_string(production);
    if (rule >= 0) {
        if (!out.empty()) out += ", ";
        out += "rule " + std::to_string(rule);
    }
    return out;
}

std::string Diagnostic::to_string() const {
    std::string out = std::string(severity_name(severity)) + "[" + code + "]";
    auto where = location.to_string();
    if (!where.empty()) out += " " + where;
    out += ": " + message;
    if (!location.context.empty()) out += " (in: " + location.context + ")";
    if (!hint.empty()) out += " hint: " + hint;
    return out;
}

std::string Diagnostic::to_json() const {
    std::string out = "{";
    out += "\"code\":\"" + json_escape(code) + "\"";
    out += ",\"severity\":\"" + std::string(severity_name(severity)) + "\"";
    out += ",\"message\":\"" + json_escape(message) + "\"";
    out += ",\"rule\":" + std::to_string(location.rule);
    out += ",\"production\":" + std::to_string(location.production);
    if (!location.context.empty()) out += ",\"context\":\"" + json_escape(location.context) + "\"";
    if (!hint.empty()) out += ",\"hint\":\"" + json_escape(hint) + "\"";
    out += "}";
    return out;
}

void DiagnosticSink::report(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
}

std::size_t DiagnosticSink::count(Severity severity) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics_) {
        if (d.severity == severity) ++n;
    }
    return n;
}

bool DiagnosticSink::fails(bool strict) const {
    for (const auto& d : diagnostics_) {
        if (d.severity == Severity::Error) return true;
        if (strict && d.severity == Severity::Warning) return true;
    }
    return false;
}

const Diagnostic* DiagnosticSink::find(const std::string& code) const {
    for (const auto& d : diagnostics_) {
        if (d.code == code) return &d;
    }
    return nullptr;
}

const Diagnostic* DiagnosticSink::find_severity(Severity severity) const {
    for (const auto& d : diagnostics_) {
        if (d.severity == severity) return &d;
    }
    return nullptr;
}

std::string DiagnosticSink::render_text() const {
    std::string out;
    for (const auto& d : diagnostics_) out += d.to_string() + "\n";
    out += std::to_string(count(Severity::Error)) + " error(s), " +
           std::to_string(count(Severity::Warning)) + " warning(s), " +
           std::to_string(count(Severity::Info)) + " info(s)\n";
    return out;
}

std::string DiagnosticSink::render_json() const {
    std::string out = "{";
    out += "\"errors\":" + std::to_string(count(Severity::Error));
    out += ",\"warnings\":" + std::to_string(count(Severity::Warning));
    out += ",\"infos\":" + std::to_string(count(Severity::Info));
    out += ",\"diagnostics\":[";
    bool first = true;
    for (const auto& d : diagnostics_) {
        if (!first) out += ",";
        out += d.to_json();
        first = false;
    }
    out += "]}";
    return out;
}

}  // namespace agenp::analysis
