// Structured diagnostics for the static policy analyzer (DESIGN.md §9).
//
// A Diagnostic is one finding of a lint pass: a stable code, a severity, a
// human-readable message, an optional fix hint, and a location (rule index,
// and for ASG passes the production index). The DiagnosticSink accumulates
// findings and renders them as text (one line per finding, compiler style)
// or JSON (for `agenp lint --json` and the CI gate).
//
// The code catalogue lives in the `codes` namespace below; every code is
// documented in DESIGN.md §9. Codes are stable identifiers: tests, the CI
// gate and the PAdaP adoption gate key off them, so never reuse one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace agenp::analysis {

enum class Severity { Info, Warning, Error };

[[nodiscard]] const char* severity_name(Severity severity);

// Stable diagnostic codes. ASPxxx codes fire on ASP programs (standalone or
// inside ASG annotations); ASGxxx codes fire on the grammar structure.
namespace codes {
inline constexpr const char* kUnsafeVariable = "ASP001";     // error
inline constexpr const char* kUndefinedPredicate = "ASP002"; // warning
inline constexpr const char* kUnusedPredicate = "ASP003";    // info
inline constexpr const char* kArityMismatch = "ASP004";      // error
inline constexpr const char* kNotStratified = "ASP005";      // warning
inline constexpr const char* kUnsatConstraint = "ASP006";    // error
inline constexpr const char* kGroundingBlowup = "ASP007";    // warning
inline constexpr const char* kVacuousRule = "ASP008";        // info
inline constexpr const char* kUnreachableProduction = "ASG001";  // warning
inline constexpr const char* kNonproductiveProduction = "ASG002";  // warning
inline constexpr const char* kEmptyLanguage = "ASG003";          // error
inline constexpr const char* kAnnotationOnTerminal = "ASG004";   // warning
}  // namespace codes

struct Location {
    int rule = -1;        // rule index within its program, -1 when unknown
    int production = -1;  // ASG production index, -1 for standalone programs
    // Pretty-printed source construct (the rule or production header) so a
    // finding is actionable without the original file offsets.
    std::string context;

    [[nodiscard]] std::string to_string() const;
};

struct Diagnostic {
    std::string code;  // one of analysis::codes
    Severity severity = Severity::Warning;
    std::string message;
    std::string hint;  // optional fix hint; empty when none applies
    Location location;

    // "error[ASP001] production 0, rule 2: message (in: ...) hint: ..."
    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] std::string to_json() const;
};

class DiagnosticSink {
public:
    void report(Diagnostic diagnostic);

    [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
    [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
    [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }
    [[nodiscard]] std::size_t count(Severity severity) const;
    [[nodiscard]] bool has_errors() const { return count(Severity::Error) > 0; }

    // True when any finding reaches the gating severity (Error, or Warning
    // when `strict`). The lint CLI's exit code and the PAdaP adoption gate
    // both go through this.
    [[nodiscard]] bool fails(bool strict = false) const;

    // First diagnostic with the given code, or nullptr.
    [[nodiscard]] const Diagnostic* find(const std::string& code) const;
    // First diagnostic at the given severity, or nullptr.
    [[nodiscard]] const Diagnostic* find_severity(Severity severity) const;

    // One line per diagnostic plus a trailing summary line.
    [[nodiscard]] std::string render_text() const;
    // {"errors":N,"warnings":N,"infos":N,"diagnostics":[...]}
    [[nodiscard]] std::string render_json() const;

private:
    std::vector<Diagnostic> diagnostics_;
};

// Escapes a string for embedding in a JSON string literal (shared by the
// renderers here and by callers that wrap diagnostics in larger documents).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace agenp::analysis
