#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "asp/stratify.hpp"
#include "obs/costtable.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::analysis {
namespace {

using asp::Atom;
using asp::Program;
using asp::Rule;
using util::Symbol;

// ---------------------------------------------------------------------------
// Definition/use table, namespace-aware.
//
// For a standalone program every atom lives in one anonymous namespace (the
// empty symbol). For an ASG, an unannotated atom lives in its production's
// left-hand-side namespace and `p@k` lives in the namespace of the k-th
// right-hand-side child; definitions and uses are unioned per nonterminal,
// which over-approximates the per-parse-tree scoping of asg/instantiate.

struct Occurrence {
    int production = -1;
    int rule = -1;
    std::string context;
};

struct PredInfo {
    std::set<int> arities;
    bool defined = false;
    bool used = false;
    bool used_positive = false;
    Occurrence first_def;
    Occurrence first_use;
    Occurrence first_arity_clash;  // where a second arity first appeared
};

class DefUseTable {
public:
    void record(Symbol ns, const Atom& atom, bool is_head, bool positive,
                const Occurrence& where) {
        PredInfo& info = table_[{ns, atom.predicate}];
        auto arity = static_cast<int>(atom.args.size());
        if (!info.arities.empty() && !info.arities.contains(arity) &&
            info.first_arity_clash.production == -1 && info.first_arity_clash.rule == -1) {
            info.first_arity_clash = where;
        }
        info.arities.insert(arity);
        if (is_head) {
            if (!info.defined) info.first_def = where;
            info.defined = true;
        } else {
            if (!info.used) info.first_use = where;
            info.used = true;
            info.used_positive = info.used_positive || positive;
        }
    }

    // Emits ASP002 (undefined), ASP003 (unused) and ASP004 (arity mismatch),
    // sorted by namespace and predicate name so output does not depend on
    // symbol-intern order.
    void emit(const LintOptions& options, DiagnosticSink& sink) const {
        std::set<Symbol> external(options.external_predicates.begin(),
                                  options.external_predicates.end());
        std::vector<const std::pair<const std::pair<Symbol, Symbol>, PredInfo>*> entries;
        entries.reserve(table_.size());
        for (const auto& entry : table_) entries.push_back(&entry);
        std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
            auto ka = std::make_pair(a->first.first.str(), a->first.second.str());
            auto kb = std::make_pair(b->first.first.str(), b->first.second.str());
            return ka < kb;
        });

        for (const auto* entry : entries) {
            const auto& [ns, pred] = entry->first;
            const PredInfo& info = entry->second;
            std::string where = ns.str().empty() ? "" : " in namespace '" + std::string(ns.str()) + "'";
            std::string name(pred.str());

            if (info.arities.size() > 1) {
                std::string arities;
                for (int a : info.arities) {
                    if (!arities.empty()) arities += ", ";
                    arities += std::to_string(a);
                }
                Diagnostic d;
                d.code = codes::kArityMismatch;
                d.severity = Severity::Error;
                d.message = "predicate " + name + " is used with " +
                            std::to_string(info.arities.size()) + " different arities (" + arities +
                            ")" + where;
                d.hint = "rename one of the predicates or fix the argument list";
                d.location.production = info.first_arity_clash.production;
                d.location.rule = info.first_arity_clash.rule;
                d.location.context = info.first_arity_clash.context;
                sink.report(std::move(d));
            }

            if (info.used && !info.defined && !external.contains(pred)) {
                Diagnostic d;
                d.code = codes::kUndefinedPredicate;
                d.severity = Severity::Warning;
                d.message = "predicate " + name + " is never defined" + where +
                            (info.used_positive ? "; rules depending on it can never fire"
                                                : "; its negation is always true");
                d.hint = "define " + name + " or declare it as a context-supplied predicate";
                d.location.production = info.first_use.production;
                d.location.rule = info.first_use.rule;
                d.location.context = info.first_use.context;
                sink.report(std::move(d));
            }

            if (options.check_unused && info.defined && !info.used && !external.contains(pred)) {
                Diagnostic d;
                d.code = codes::kUnusedPredicate;
                d.severity = Severity::Info;
                d.message = "predicate " + name + " is derived but never consumed" + where;
                d.location.production = info.first_def.production;
                d.location.rule = info.first_def.rule;
                d.location.context = info.first_def.context;
                sink.report(std::move(d));
            }
        }
    }

private:
    std::map<std::pair<Symbol, Symbol>, PredInfo> table_;
};

// ---------------------------------------------------------------------------
// Per-rule passes shared between standalone programs and annotations.

void check_rule_safety(const Rule& rule, const Occurrence& where, DiagnosticSink& sink) {
    for (Symbol v : rule.unsafe_variables()) {
        Diagnostic d;
        d.code = codes::kUnsafeVariable;
        d.severity = Severity::Error;
        d.message = "unsafe variable " + std::string(v.str()) +
                    " is not bound by any positive body literal";
        d.hint = "add a positive body literal (or a V = ground-expr binder) covering " +
                 std::string(v.str());
        d.location.production = where.production;
        d.location.rule = where.rule;
        d.location.context = where.context;
        sink.report(std::move(d));
    }
}

// ASP006 (constraint violated in every answer set) and ASP008 (rule that can
// never fire). `facts` holds the unit's ground unannotated facts.
void check_rule_triviality(const Rule& rule, const std::set<std::string>& facts,
                           const Occurrence& where, DiagnosticSink& sink) {
    // Complementary literals: `..., a, not a, ...` never holds.
    for (const auto& l : rule.body) {
        if (!l.positive) continue;
        for (const auto& m : rule.body) {
            if (!m.positive && m.atom == l.atom) {
                Diagnostic d;
                d.code = codes::kVacuousRule;
                d.severity = Severity::Info;
                d.message = "rule can never fire: body contains both " + l.atom.to_string() +
                            " and its negation";
                d.location.production = where.production;
                d.location.rule = where.rule;
                d.location.context = where.context;
                sink.report(std::move(d));
                return;
            }
        }
    }

    // Ground builtins decide at lint time.
    bool builtins_ground_true = true;
    for (const auto& c : rule.builtins) {
        if (!c.lhs.is_ground() || !c.rhs.is_ground()) {
            builtins_ground_true = false;
            continue;
        }
        auto value = c.evaluate();
        if (value && !*value) {
            Diagnostic d;
            d.code = codes::kVacuousRule;
            d.severity = Severity::Info;
            d.message = "rule can never fire: builtin " + c.to_string() + " is always false";
            d.location.production = where.production;
            d.location.rule = where.rule;
            d.location.context = where.context;
            sink.report(std::move(d));
            return;
        }
        if (!value) builtins_ground_true = false;
    }

    if (!rule.is_constraint() || !builtins_ground_true) return;
    // A constraint whose body provably holds in every answer set (all
    // positive literals are facts of the unit, no negation, builtins true)
    // wipes out every model.
    for (const auto& l : rule.body) {
        if (!l.positive || !l.atom.is_ground() || l.atom.annotation != asp::kUnannotated ||
            !facts.contains(l.atom.to_string())) {
            return;
        }
    }
    Diagnostic d;
    d.code = codes::kUnsatConstraint;
    d.severity = Severity::Error;
    d.message = rule.body.empty() && rule.builtins.empty()
                    ? "constraint with an empty body is always violated"
                    : "constraint is always violated: its body holds in every answer set";
    d.hint = "remove the constraint or weaken its body";
    d.location.production = where.production;
    d.location.rule = where.rule;
    d.location.context = where.context;
    sink.report(std::move(d));
}

// ASP007: |universe|^|vars| upper bound on a rule's ground instances.
void check_rule_grounding(const Rule& rule, std::size_t universe, const LintOptions& options,
                          const Occurrence& where, DiagnosticSink& sink) {
    std::vector<Symbol> vars;
    rule.collect_variables(vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    if (vars.empty() || universe < 2) return;
    double estimate =
        std::pow(static_cast<double>(universe), static_cast<double>(vars.size()));
    if (estimate <= static_cast<double>(options.grounding_estimate_limit)) return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g", estimate);
    Diagnostic d;
    d.code = codes::kGroundingBlowup;
    d.severity = Severity::Warning;
    d.message = "rule may ground into ~" + std::string(buf) + " instances (" +
                std::to_string(vars.size()) + " variables over a universe of " +
                std::to_string(universe) + " ground terms; limit " +
                std::to_string(options.grounding_estimate_limit) + ")";
    d.hint = "narrow the rule body; the grounder aborts past GroundingLimits.max_atoms";
    d.location.production = where.production;
    d.location.rule = where.rule;
    d.location.context = where.context;
    sink.report(std::move(d));
}

// Ground terms appearing as atom arguments: the static stand-in for the
// Herbrand universe in the ASP007 estimate.
void collect_universe(const Program& program, std::set<std::string>& universe) {
    auto absorb = [&](const Atom& atom) {
        for (const auto& t : atom.args) {
            if (t.is_ground()) universe.insert(t.to_string());
        }
    };
    for (const auto& rule : program.rules()) {
        if (rule.head) absorb(*rule.head);
        for (const auto& l : rule.body) absorb(l.atom);
    }
}

std::set<std::string> collect_facts(const Program& program) {
    std::set<std::string> facts;
    for (const auto& rule : program.rules()) {
        if (rule.is_fact() && rule.head->is_ground() &&
            rule.head->annotation == asp::kUnannotated) {
            facts.insert(rule.head->to_string());
        }
    }
    return facts;
}

void check_stratification(const Program& program, const Occurrence& where, DiagnosticSink& sink) {
    auto info = asp::analyze_stratification(program);
    if (info.stratified) return;
    std::string preds;
    for (Symbol s : info.negative_cycle) {
        if (!preds.empty()) preds += ", ";
        preds += s.str();
    }
    Diagnostic d;
    d.code = codes::kNotStratified;
    d.severity = Severity::Warning;
    d.message = "program is not stratified: negation cycle through {" + preds + "}";
    d.hint = "break the cycle; non-stratified programs may have zero or many answer sets and "
             "disable the learner's deterministic fast path";
    d.location.production = where.production;
    d.location.context = where.context;
    sink.report(std::move(d));
}

void publish(const char* what, const DiagnosticSink& sink) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    m.counter(std::string("analysis.lint.") + what).add(1);
    static obs::Counter& findings = m.counter("analysis.lint.diagnostics");
    findings.add(sink.size());
}

}  // namespace

DiagnosticSink lint_program(const Program& program, const LintOptions& options) {
    obs::ScopedSpan span("analysis.lint_program", "analysis");
    static obs::Histogram& time_hist = obs::metrics().histogram("analysis.lint.time_us");
    obs::ScopedTimer timer(time_hist);
    static obs::CostCell& lint_cost = obs::costs().cell("lint.program");
    obs::ScopedCost cost(lint_cost);

    DiagnosticSink sink;
    std::set<std::string> universe;
    collect_universe(program, universe);
    auto facts = collect_facts(program);

    DefUseTable table;
    Symbol anonymous;  // the empty namespace
    for (std::size_t i = 0; i < program.rules().size(); ++i) {
        const Rule& rule = program.rules()[i];
        Occurrence where{-1, static_cast<int>(i), rule.to_string()};
        check_rule_safety(rule, where, sink);
        check_rule_triviality(rule, facts, where, sink);
        if (options.check_grounding) check_rule_grounding(rule, universe.size(), options, where, sink);
        if (rule.head) table.record(anonymous, *rule.head, /*is_head=*/true, true, where);
        for (const auto& l : rule.body) {
            table.record(anonymous, l.atom, /*is_head=*/false, l.positive, where);
        }
    }
    table.emit(options, sink);
    check_stratification(program, Occurrence{}, sink);
    publish("programs", sink);
    return sink;
}

namespace {

// Namespace of `atom` inside production `p` of `grammar`: the production's
// own lhs when unannotated, the k-th child nonterminal for `@k`. Returns
// false (and reports ASG004) when the annotation addresses a terminal.
bool resolve_namespace(const asg::AnswerSetGrammar& grammar, int production, const Atom& atom,
                       const Occurrence& where, DiagnosticSink* sink, Symbol& out) {
    const cfg::Production& prod = grammar.grammar().production(production);
    if (atom.annotation == asp::kUnannotated) {
        out = prod.lhs;
        return true;
    }
    auto k = static_cast<std::size_t>(atom.annotation);
    if (k == 0 || k > prod.rhs.size()) {
        out = prod.lhs;  // parse/check_annotation rejects this; be defensive
        return true;
    }
    const cfg::GSym& child = prod.rhs[k - 1];
    if (child.terminal) {
        if (sink != nullptr) {
            Diagnostic d;
            d.code = codes::kAnnotationOnTerminal;
            d.severity = Severity::Warning;
            d.message = "annotation @" + std::to_string(atom.annotation) + " on " +
                        atom.to_string() + " addresses the terminal \"" +
                        std::string(child.name.str()) + "\"; the atom can never be derived there";
            d.hint = "point the annotation at a nonterminal child";
            d.location = Location{where.rule, where.production, where.context};
            sink->report(std::move(d));
        }
        out = Symbol(std::string("$terminal$") + std::string(child.name.str()));
        return false;
    }
    out = child.name;
    return true;
}

// Flattens every annotation into one program whose predicates are prefixed
// with their namespace, so asp/stratify sees cross-production negation
// cycles. This conflates tree levels of recursive nonterminals — a sound
// over-approximation for a lint warning.
Program flatten_for_stratification(const asg::AnswerSetGrammar& grammar) {
    Program flat;
    auto rename = [&](int production, const Atom& atom) {
        Symbol ns;
        Occurrence nowhere;
        resolve_namespace(grammar, production, atom, nowhere, nullptr, ns);
        Atom out;
        out.predicate = Symbol(std::string(ns.str()) + "::" + std::string(atom.predicate.str()));
        out.args = atom.args;
        return out;
    };
    for (std::size_t p = 0; p < grammar.production_count(); ++p) {
        for (const auto& rule : grammar.annotation(static_cast<int>(p)).rules()) {
            Rule renamed;
            if (rule.head) renamed.head = rename(static_cast<int>(p), *rule.head);
            for (const auto& l : rule.body) {
                renamed.body.emplace_back(rename(static_cast<int>(p), l.atom), l.positive);
            }
            renamed.builtins = rule.builtins;
            flat.add(std::move(renamed));
        }
    }
    return flat;
}

// ASG001/ASG002/ASG003: reachability from the start symbol and
// productivity (can a production ever complete a derivation?).
void check_grammar_shape(const asg::AnswerSetGrammar& grammar, DiagnosticSink& sink) {
    const cfg::Grammar& g = grammar.grammar();
    const auto& productions = g.productions();

    std::set<Symbol> reachable{g.start()};
    std::vector<Symbol> frontier{g.start()};
    while (!frontier.empty()) {
        Symbol nt = frontier.back();
        frontier.pop_back();
        for (int pi : g.productions_for(nt)) {
            for (const auto& sym : g.production(pi).rhs) {
                if (!sym.terminal && reachable.insert(sym.name).second) {
                    frontier.push_back(sym.name);
                }
            }
        }
    }

    std::set<Symbol> productive;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& p : productions) {
            if (productive.contains(p.lhs)) continue;
            bool all = std::all_of(p.rhs.begin(), p.rhs.end(), [&](const cfg::GSym& s) {
                return s.terminal || productive.contains(s.name);
            });
            if (all) {
                productive.insert(p.lhs);
                changed = true;
            }
        }
    }

    for (std::size_t i = 0; i < productions.size(); ++i) {
        const cfg::Production& p = productions[i];
        Occurrence where{static_cast<int>(i), -1, p.to_string()};
        if (!reachable.contains(p.lhs)) {
            Diagnostic d;
            d.code = codes::kUnreachableProduction;
            d.severity = Severity::Warning;
            d.message = "production for '" + std::string(p.lhs.str()) +
                        "' is unreachable from the start symbol '" +
                        std::string(g.start().str()) + "'";
            d.hint = "remove the production or reference its nonterminal";
            d.location = Location{where.rule, where.production, where.context};
            sink.report(std::move(d));
        }
        bool completable = std::all_of(p.rhs.begin(), p.rhs.end(), [&](const cfg::GSym& s) {
            return s.terminal || productive.contains(s.name);
        });
        if (!completable) {
            Diagnostic d;
            d.code = codes::kNonproductiveProduction;
            d.severity = Severity::Warning;
            d.message = "production for '" + std::string(p.lhs.str()) +
                        "' can never complete a derivation (a right-hand-side nonterminal "
                        "derives no terminal string)";
            d.hint = "add a base-case production for the offending nonterminal";
            d.location = Location{where.rule, where.production, where.context};
            sink.report(std::move(d));
        }
    }

    if (!productive.contains(g.start())) {
        Diagnostic d;
        d.code = codes::kEmptyLanguage;
        d.severity = Severity::Error;
        d.message = "the start symbol '" + std::string(g.start().str()) +
                    "' derives no terminal string: the policy language is empty";
        d.hint = "every nonterminal needs a production bottoming out in terminals";
        sink.report(std::move(d));
    }
}

}  // namespace

DiagnosticSink lint_asg(const asg::AnswerSetGrammar& grammar, const LintOptions& options) {
    obs::ScopedSpan span("analysis.lint_asg", "analysis");
    static obs::Histogram& time_hist = obs::metrics().histogram("analysis.lint.time_us");
    obs::ScopedTimer timer(time_hist);
    static obs::CostCell& lint_cost = obs::costs().cell("lint.asg");
    obs::ScopedCost cost(lint_cost);

    DiagnosticSink sink;
    check_grammar_shape(grammar, sink);

    // Universe for the grounding estimate: ground terms across every
    // annotation (contexts add more at solve time; this is the static part).
    std::set<std::string> universe;
    for (std::size_t p = 0; p < grammar.production_count(); ++p) {
        collect_universe(grammar.annotation(static_cast<int>(p)), universe);
    }

    DefUseTable table;
    for (std::size_t p = 0; p < grammar.production_count(); ++p) {
        auto pi = static_cast<int>(p);
        const Program& annotation = grammar.annotation(pi);
        auto facts = collect_facts(annotation);
        std::string header = grammar.grammar().production(pi).to_string();
        for (std::size_t r = 0; r < annotation.rules().size(); ++r) {
            const Rule& rule = annotation.rules()[r];
            Occurrence where{pi, static_cast<int>(r), header + " { " + rule.to_string() + " }"};
            check_rule_safety(rule, where, sink);
            check_rule_triviality(rule, facts, where, sink);
            if (options.check_grounding) {
                check_rule_grounding(rule, universe.size(), options, where, sink);
            }
            auto record = [&](const Atom& atom, bool is_head, bool positive) {
                Symbol ns;
                if (resolve_namespace(grammar, pi, atom, where, &sink, ns)) {
                    table.record(ns, atom, is_head, positive, where);
                }
            };
            if (rule.head) record(*rule.head, /*is_head=*/true, true);
            for (const auto& l : rule.body) record(l.atom, /*is_head=*/false, l.positive);
        }
    }
    table.emit(options, sink);
    check_stratification(flatten_for_stratification(grammar),
                         Occurrence{-1, -1, "annotations (namespace-flattened)"}, sink);
    publish("asgs", sink);
    return sink;
}

}  // namespace agenp::analysis
