// Static lint passes over ASP programs and Answer Set Grammars
// (DESIGN.md §9). Law et al.'s annotated-grammar formulation makes most
// ill-formedness statically decidable from the program/grammar text alone;
// these passes catch the defect classes a learned hypothesis (PAdaP) or an
// externally shared model can introduce silently, before the dynamic
// checks (enumerate, solve, compare) ever run.
//
// Program passes (also applied per annotation for ASGs):
//   ASP001 error    unsafe variable (reported per variable, with the rule)
//   ASP002 warning  undefined predicate (body predicate with no definition)
//   ASP003 info     unused predicate (derived but never consumed)
//   ASP004 error    arity mismatch (one predicate, several arities)
//   ASP005 warning  non-stratified negation cycle (asp/stratify)
//   ASP006 error    trivially unsatisfiable constraint
//   ASP007 warning  grounding-size estimate exceeds the configured limit
//   ASP008 info     vacuous rule (can never fire)
//
// Grammar passes:
//   ASG001 warning  production unreachable from the start symbol
//   ASG002 warning  nonproductive production (can never finish a derivation)
//   ASG003 error    the start symbol derives no string (empty language)
//   ASG004 warning  annotation `p@k` addresses a terminal child
//
// ASG annotation scoping: an unannotated atom lives in its production's
// namespace; `p@k` lives in the namespace of the k-th right-hand-side
// child. Definitions and uses are resolved per nonterminal namespace
// (union over its productions plus parent contributions via `@k`), which
// over-approximates the per-parse-tree instantiation semantics of
// asg/instantiate.
#pragma once

#include "analysis/diagnostic.hpp"
#include "asg/asg.hpp"
#include "asp/program.hpp"

namespace agenp::analysis {

struct LintOptions {
    // Predicates supplied externally at solve time (e.g. by the operating
    // context the PIP injects): suppresses ASP002/ASP003 for them. Matched
    // by name; arity consistency (ASP004) still applies.
    std::vector<util::Symbol> external_predicates;
    // ASP007 fires when the static per-rule instantiation estimate
    // |universe|^|vars| exceeds this bound.
    std::size_t grounding_estimate_limit = 1000000;
    bool check_unused = true;     // ASP003
    bool check_grounding = true;  // ASP007
};

// Lints a standalone ASP program.
[[nodiscard]] DiagnosticSink lint_program(const asp::Program& program,
                                          const LintOptions& options = {});

// Lints an Answer Set Grammar: grammar-structure passes plus the program
// passes over every production annotation (namespace-aware).
[[nodiscard]] DiagnosticSink lint_asg(const asg::AnswerSetGrammar& grammar,
                                      const LintOptions& options = {});

}  // namespace agenp::analysis
