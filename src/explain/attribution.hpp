// Rule attribution (Section V.B, policy-enforcement level): which learned
// rules were responsible for a decision.
//
// Attribution is counterfactual ("but-for"): a hypothesis rule is decisive
// for a rejection when removing just that rule flips the string back into
// the language. Rules are also reported as "contributing" when they fire on
// the example even if another rule would still reject it.
#pragma once

#include "ilp/learner.hpp"

namespace agenp::explain {

struct Attribution {
    // Indices into the hypothesis.
    std::vector<std::size_t> decisive;      // removal alone flips the decision
    std::vector<std::size_t> contributing;  // part of some minimal rejecting set

    [[nodiscard]] bool rejected() const { return !contributing.empty(); }
};

// For a string rejected by initial:H under `context`, identifies the
// responsible hypothesis rules. For an accepted string both lists are empty.
Attribution attribute_rejection(const asg::AnswerSetGrammar& initial,
                                const ilp::Hypothesis& hypothesis,
                                const cfg::TokenString& request, const asp::Program& context,
                                const asg::MembershipOptions& options = {});

// Renders "rejected by rule(s): ..." / "accepted" text.
std::string render_attribution(const Attribution& attribution, const ilp::Hypothesis& hypothesis);

}  // namespace agenp::explain
