// Counterfactual explanations (Section V.B): "you were denied because
// hour=1; if hour had been 2, you would have been permitted" — the
// Wachter-style explanation the paper borrows from the GDPR discussion.
//
// The search enumerates attribute perturbations of the denied request in
// increasing Hamming distance and reports the minimal flips that change the
// decision. Works over any predicate on xacml::Request, so it explains both
// native XACML policies and learned ASG models.
#pragma once

#include <functional>

#include "xacml/attributes.hpp"

namespace agenp::explain {

struct Counterfactual {
    // (attribute index, new value) changes that flip the decision.
    std::vector<std::pair<std::size_t, xacml::AttributeValue>> changes;

    [[nodiscard]] std::size_t distance() const { return changes.size(); }
};

struct CounterfactualOptions {
    std::size_t max_distance = 2;  // Hamming radius searched
    std::size_t max_results = 3;   // closest counterfactuals reported
};

// Minimal-change counterfactuals for `request` under `decide` (true =
// permit). Results are at the smallest distance where any flip exists;
// empty when nothing within max_distance flips the decision.
std::vector<Counterfactual> find_counterfactuals(
    const xacml::Schema& schema, const xacml::Request& request,
    const std::function<bool(const xacml::Request&)>& decide,
    const CounterfactualOptions& options = {});

// "You were denied because ...; if hour had been 2, you would have been
// permitted."
std::string render_counterfactual(const xacml::Schema& schema, const xacml::Request& request,
                                  const Counterfactual& counterfactual, bool original_permitted);

}  // namespace agenp::explain
