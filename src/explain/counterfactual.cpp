#include "explain/counterfactual.hpp"

namespace agenp::explain {
namespace {

using xacml::AttributeValue;

std::vector<AttributeValue> domain_values(const xacml::AttributeDef& def) {
    std::vector<AttributeValue> out;
    if (def.numeric) {
        for (std::int64_t x = def.min; x <= def.max; ++x) out.push_back(AttributeValue::of(x));
    } else {
        for (const auto& v : def.values) out.push_back(AttributeValue::of(v));
    }
    return out;
}

// Enumerates all perturbations touching exactly the attributes in
// `attrs[from..]`, recursing over candidate values.
void enumerate_changes(const xacml::Schema& schema, const xacml::Request& original,
                       const std::vector<std::size_t>& attrs, std::size_t from,
                       xacml::Request& current, Counterfactual& changes,
                       const std::function<bool(const xacml::Request&)>& decide, bool want,
                       std::vector<Counterfactual>& out, std::size_t max_results) {
    if (out.size() >= max_results) return;
    if (from == attrs.size()) {
        if (decide(current) == want) out.push_back(changes);
        return;
    }
    std::size_t a = attrs[from];
    for (const auto& v : domain_values(schema.attributes[a])) {
        if (v == original.values[a]) continue;  // must actually change
        current.values[a] = v;
        changes.changes.emplace_back(a, v);
        enumerate_changes(schema, original, attrs, from + 1, current, changes, decide, want, out,
                          max_results);
        changes.changes.pop_back();
        current.values[a] = original.values[a];
        if (out.size() >= max_results) return;
    }
}

// All size-k attribute subsets.
void subsets(std::size_t n, std::size_t k, std::size_t from, std::vector<std::size_t>& current,
             std::vector<std::vector<std::size_t>>& out) {
    if (current.size() == k) {
        out.push_back(current);
        return;
    }
    for (std::size_t i = from; i < n; ++i) {
        current.push_back(i);
        subsets(n, k, i + 1, current, out);
        current.pop_back();
    }
}

}  // namespace

std::vector<Counterfactual> find_counterfactuals(
    const xacml::Schema& schema, const xacml::Request& request,
    const std::function<bool(const xacml::Request&)>& decide,
    const CounterfactualOptions& options) {
    bool original = decide(request);
    bool want = !original;
    for (std::size_t distance = 1; distance <= options.max_distance; ++distance) {
        std::vector<std::vector<std::size_t>> attr_sets;
        std::vector<std::size_t> scratch;
        subsets(schema.size(), distance, 0, scratch, attr_sets);
        std::vector<Counterfactual> found;
        for (const auto& attrs : attr_sets) {
            xacml::Request current = request;
            Counterfactual changes;
            enumerate_changes(schema, request, attrs, 0, current, changes, decide, want, found,
                              options.max_results);
            if (found.size() >= options.max_results) break;
        }
        if (!found.empty()) return found;  // minimal distance: stop here
    }
    return {};
}

std::string render_counterfactual(const xacml::Schema& schema, const xacml::Request& request,
                                  const Counterfactual& counterfactual, bool original_permitted) {
    std::string verb = original_permitted ? "permitted" : "denied";
    std::string flipped = original_permitted ? "denied" : "permitted";
    std::string out = "The request was " + verb + ". If ";
    for (std::size_t i = 0; i < counterfactual.changes.size(); ++i) {
        if (i > 0) out += " and ";
        auto [attr, value] = counterfactual.changes[i];
        out += schema.attributes[attr].name + " had been " + value.to_string() + " (instead of " +
               request.values[attr].to_string() + ")";
    }
    out += ", it would have been " + flipped + ".";
    return out;
}

}  // namespace agenp::explain
