#include "explain/attribution.hpp"

#include <algorithm>

namespace agenp::explain {

Attribution attribute_rejection(const asg::AnswerSetGrammar& initial,
                                const ilp::Hypothesis& hypothesis,
                                const cfg::TokenString& request, const asp::Program& context,
                                const asg::MembershipOptions& options) {
    Attribution out;
    auto full = initial.with_rules(hypothesis);
    if (asg::in_language(full, request, context, options)) return out;  // accepted: nothing to attribute

    for (std::size_t i = 0; i < hypothesis.size(); ++i) {
        // Leave-one-out grammar.
        ilp::Hypothesis without;
        for (std::size_t j = 0; j < hypothesis.size(); ++j) {
            if (j != i) without.push_back(hypothesis[j]);
        }
        bool accepted_without = asg::in_language(initial.with_rules(without), request, context, options);
        if (accepted_without) out.decisive.push_back(i);

        // Contributing: the rule alone rejects the string.
        bool alone_rejects =
            !asg::in_language(initial.with_rules({hypothesis[i]}), request, context, options);
        if (alone_rejects) out.contributing.push_back(i);
    }
    // A rejection with no single contributing rule (a conspiracy of rules)
    // still needs a non-empty contributing set: fall back to all rules.
    if (out.contributing.empty()) {
        for (std::size_t i = 0; i < hypothesis.size(); ++i) out.contributing.push_back(i);
    }
    return out;
}

std::string render_attribution(const Attribution& attribution, const ilp::Hypothesis& hypothesis) {
    if (!attribution.rejected()) return "accepted: no policy rule rejects this request\n";
    std::string out = "rejected\n";
    for (auto i : attribution.contributing) {
        out += "  fired: " + hypothesis[i].first.to_string();
        bool decisive = std::find(attribution.decisive.begin(), attribution.decisive.end(), i) !=
                        attribution.decisive.end();
        if (decisive) out += "   [decisive: removing this rule alone would permit]";
        out += "\n";
    }
    return out;
}

}  // namespace agenp::explain
