#include "agenp/ams.hpp"

#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"

namespace agenp::framework {

AutonomousManagedSystem::AutonomousManagedSystem(std::string name, asg::AnswerSetGrammar initial,
                                                 ilp::HypothesisSpace space, AmsOptions options)
    : name_(std::move(name)),
      options_(std::move(options)),
      prep_(options_.prep),
      pdp_(options_.strategy, options_.membership),
      monitor_(options_.monitor_capacity),
      padap_(std::move(initial), std::move(space), options_.adaptation) {}

const asg::AnswerSetGrammar& AutonomousManagedSystem::model() const {
    return representations_.empty() ? padap_.initial_model() : representations_.latest();
}

std::pair<bool, std::size_t> AutonomousManagedSystem::handle_request(const cfg::TokenString& request) {
    obs::ScopedSpan span("agenp.ams.handle_request", "agenp");
    obs::TracePhase request_phase(obs::current_trace(), "agenp.ams.handle_request");
    static obs::Histogram& time_hist = obs::metrics().histogram("agenp.ams.request_time_us");
    obs::ScopedTimer timer(time_hist);
    if (obs::metrics_enabled()) {
        static obs::Counter& requests = obs::metrics().counter("agenp.ams.requests");
        requests.add(1);
    }

    asp::Program context = pip_.gather();
    bool permitted = pdp_.decide(request, context, model(), policy_repo_);
    pep_.enforce(request, permitted);
    DecisionRecord record;
    record.request = request;
    record.context = std::move(context);
    record.permitted = permitted;
    record.model_version = model_version();
    std::size_t index = monitor_.record(std::move(record));
    return {permitted, index};
}

AdaptationOutcome AutonomousManagedSystem::learn_model(const std::vector<ilp::Example>& positive,
                                                       const std::vector<ilp::Example>& negative,
                                                       const std::string& note) {
    auto outcome = padap_.adapt_from_examples(positive, negative, representations_, note);
    if (outcome.adapted) after_model_change();
    return outcome;
}

AdaptationOutcome AutonomousManagedSystem::adapt() {
    auto outcome = padap_.maybe_adapt(monitor_, representations_);
    if (outcome.adapted) after_model_change();
    return outcome;
}

PrepReport AutonomousManagedSystem::refresh_policies() {
    return prep_.refresh(model(), pip_.gather(), policy_repo_, model_version());
}

void AutonomousManagedSystem::after_model_change() {
    if (options_.auto_refresh_policies && options_.strategy == DecisionStrategy::Repository) {
        refresh_policies();
    }
}

SharedModel AutonomousManagedSystem::export_model() const {
    return {name_, model(), model_version()};
}

bool AutonomousManagedSystem::import_model(const SharedModel& shared) {
    auto violations = PolicyCheckingPoint::detect_violations(
        shared.model, options_.adaptation.forbidden, options_.membership);
    if (!violations.valid()) return false;
    representations_.store(shared.model, "shared:" + shared.origin);
    after_model_change();
    return true;
}

}  // namespace agenp::framework
