#include "agenp/prep.hpp"

namespace agenp::framework {

PrepReport PolicyRefinementPoint::refresh(const asg::AnswerSetGrammar& model,
                                          const asp::Program& context, PolicyRepository& repo,
                                          std::uint64_t version) {
    auto result = asg::language(model, context, options_.language);
    PrepReport report;
    report.generated = result.strings.size();
    report.truncated = result.truncated;
    repo.replace(std::move(result.strings), "prep", version);
    return report;
}

}  // namespace agenp::framework
