#include "agenp/prep.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::framework {

PrepReport PolicyRefinementPoint::refresh(const asg::AnswerSetGrammar& model,
                                          const asp::Program& context, PolicyRepository& repo,
                                          std::uint64_t version) {
    obs::ScopedSpan span("agenp.prep.refresh", "agenp");
    static obs::Histogram& time_hist = obs::metrics().histogram("agenp.prep.time_us");
    obs::ScopedTimer timer(time_hist);

    auto result = asg::language(model, context, options_.language);
    PrepReport report;
    report.generated = result.strings.size();
    report.truncated = result.truncated;
    repo.replace(std::move(result.strings), "prep", version);
    repo.set_truncated(result.truncated);

    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& refreshes = m.counter("agenp.prep.refreshes");
        static obs::Counter& generated = m.counter("agenp.prep.policies_generated");
        static obs::Counter& truncated = m.counter("agenp.prep.truncated");
        refreshes.add(1);
        generated.add(report.generated);
        if (report.truncated) truncated.add(1);
    }
    return report;
}

}  // namespace agenp::framework
