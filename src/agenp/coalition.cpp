#include "agenp/coalition.hpp"

namespace agenp::framework {

std::size_t Coalition::distribute_latest() {
    if (wiki_.models().empty()) return 0;
    const SharedModel& latest = wiki_.models().back();
    std::size_t adopted = 0;
    for (auto* member : members_) {
        if (member->name() == latest.origin) continue;
        if (member->import_model(latest)) ++adopted;
    }
    return adopted;
}

}  // namespace agenp::framework
