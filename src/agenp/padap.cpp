#include "agenp/padap.hpp"

#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::framework {

namespace {

// maybe_adapt delegates to adapt_from_examples, so each counter is bumped
// at exactly one site: monitor checks and triggers here, learn attempts
// and their outcomes in adapt_from_examples.
void publish_outcome(const AdaptationOutcome& outcome) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    static obs::Counter& attempts = m.counter("agenp.padap.attempts");
    static obs::Counter& adapted = m.counter("agenp.padap.adapted");
    static obs::Counter& reused = m.counter("agenp.padap.reused");
    static obs::Counter& rejected = m.counter("agenp.padap.rejected");
    attempts.add(1);
    if (outcome.adapted) adapted.add(1);
    if (outcome.reused) reused.add(1);
    if (!outcome.adapted) rejected.add(1);
}

}  // namespace

AdaptationOutcome PolicyAdaptationPoint::maybe_adapt(const DecisionMonitor& monitor,
                                                     RepresentationsRepository& representations) {
    obs::ScopedSpan span("agenp.padap.maybe_adapt", "agenp");
    static obs::Counter& checks = obs::metrics().counter("agenp.padap.monitor_checks");
    if (obs::metrics_enabled()) checks.add(1);

    AdaptationOutcome outcome;
    auto records = monitor.feedback_records();
    if (records.size() < options_.min_feedback) {
        outcome.reason = "insufficient feedback (" + std::to_string(records.size()) + ")";
        return outcome;
    }
    auto accuracy = monitor.observed_accuracy();
    if (accuracy && *accuracy >= options_.accuracy_threshold) {
        outcome.reason = "observed accuracy acceptable";
        return outcome;
    }
    outcome.triggered = true;
    static obs::Counter& triggered = obs::metrics().counter("agenp.padap.triggered");
    if (obs::metrics_enabled()) triggered.add(1);

    std::vector<ilp::Example> positive, negative;
    for (const auto* r : records) {
        auto& bucket = *r->should_permit ? positive : negative;
        bucket.emplace_back(r->request, r->context);
    }
    auto result = adapt_from_examples(positive, negative, representations, "relearn-from-feedback");
    result.triggered = true;
    return result;
}

namespace {

// Cache signature for a batch of examples: the deduplicated union of their
// contexts.
asp::Program context_signature(const std::vector<ilp::Example>& positive,
                               const std::vector<ilp::Example>& negative) {
    asp::Program signature;
    std::set<std::string> seen;
    auto absorb = [&](const std::vector<ilp::Example>& examples) {
        for (const auto& ex : examples) {
            for (const auto& rule : ex.context.rules()) {
                if (seen.insert(rule.to_string()).second) signature.add(rule);
            }
        }
    };
    absorb(positive);
    absorb(negative);
    return signature;
}

}  // namespace

AdaptationOutcome PolicyAdaptationPoint::adapt_from_examples(
    const std::vector<ilp::Example>& positive, const std::vector<ilp::Example>& negative,
    RepresentationsRepository& representations, const std::string& note) {
    obs::ScopedSpan span("agenp.padap.adapt", "agenp");
    static obs::Histogram& time_hist = obs::metrics().histogram("agenp.padap.time_us");
    obs::ScopedTimer timer(time_hist);

    AdaptationOutcome outcome;
    ilp::LearningTask task;
    task.initial = initial_;
    task.space = space_;
    task.positive = positive;
    task.negative = negative;

    ilp::Hypothesis hypothesis;
    if (options_.use_similarity_cache) {
        auto cached = cache_.adapt(task, context_signature(positive, negative), options_.learn);
        outcome.reused = cached.reused;
        if (!cached.reused) {
            outcome.learn_result = cached.result;
            if (!outcome.learn_result.found) {
                outcome.reason = "learning failed: " + outcome.learn_result.failure_reason;
                publish_outcome(outcome);
                return outcome;
            }
        }
        hypothesis = std::move(cached.hypothesis);
    } else {
        outcome.learn_result = ilp::learn(task, options_.learn);
        if (!outcome.learn_result.found) {
            outcome.reason = "learning failed: " + outcome.learn_result.failure_reason;
            publish_outcome(outcome);
            return outcome;
        }
        hypothesis = outcome.learn_result.hypothesis;
    }
    auto candidate = initial_.with_rules(hypothesis);

    // Static lint gate: cheap structural rejection before membership checks.
    if (options_.static_lint) {
        auto lint_options = options_.lint;
        for (const auto* bucket : {&positive, &negative}) {
            for (const auto& ex : *bucket) {
                for (const auto& rule : ex.context.rules()) {
                    if (rule.head) lint_options.external_predicates.push_back(rule.head->predicate);
                }
            }
        }
        auto lint = PolicyCheckingPoint::lint_model(candidate, lint_options);
        if (lint.has_errors()) {
            static obs::Counter& lint_rejected =
                obs::metrics().counter("agenp.padap.lint_rejected");
            if (obs::metrics_enabled()) lint_rejected.add(1);
            const auto* first = lint.find_severity(analysis::Severity::Error);
            outcome.reason = "candidate model failed static lint (" +
                             std::to_string(lint.count(analysis::Severity::Error)) +
                             " error(s)): " + (first ? first->to_string() : "");
            publish_outcome(outcome);
            return outcome;
        }
    }

    // ASG Solver / PCP validation before adoption.
    auto violations = PolicyCheckingPoint::detect_violations(candidate, options_.forbidden,
                                                             options_.learn.membership);
    if (!violations.valid()) {
        outcome.reason = "candidate model accepts " + std::to_string(violations.violated.size()) +
                         " forbidden string(s); rejected";
        publish_outcome(outcome);
        return outcome;
    }
    outcome.adapted = true;
    outcome.new_version = representations.store(std::move(candidate), note);
    outcome.reason = "adopted";
    publish_outcome(outcome);
    return outcome;
}

}  // namespace agenp::framework
