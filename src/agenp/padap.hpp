// PAdaP (Policy Adaptation Point, Section III.A.1): watches the decision
// history and, when the current GPM underperforms or the context shifts,
// re-learns the ASG from accumulated examples (the ASG Learner) and
// validates it (the ASG Solver / PCP hook) before storing it as the latest
// representation.
#pragma once

#include "agenp/pcp.hpp"
#include "agenp/pdp.hpp"
#include "agenp/repository.hpp"
#include "agenp/similarity.hpp"
#include "analysis/lint.hpp"
#include "ilp/learner.hpp"

namespace agenp::framework {

struct AdaptationOptions {
    // Re-learn when observed accuracy over feedback falls below this.
    double accuracy_threshold = 0.999;
    std::size_t min_feedback = 4;  // need this many labelled records first
    ilp::LearnOptions learn;
    // Must-never-accept strings checked before adopting a new model.
    std::vector<ilp::Example> forbidden;
    // Similarity-based adaptation (Section I): try hypotheses learned under
    // similar contexts before running the inductive search.
    bool use_similarity_cache = false;
    double min_similarity = 0.25;
    // Static lint gate (DESIGN.md §9): reject candidate models carrying
    // Error-severity diagnostics (unsafe rules, arity clashes, trivially
    // unsatisfiable constraints, an empty policy language) before the more
    // expensive violation detector runs. Head predicates of the examples'
    // contexts are treated as externally supplied automatically; extra
    // externals can be listed in lint.external_predicates.
    bool static_lint = true;
    analysis::LintOptions lint;
};

struct AdaptationOutcome {
    bool triggered = false;   // the monitor justified a re-learn
    bool adapted = false;     // a new model was stored
    bool reused = false;      // a similar context's hypothesis was reused
    std::uint64_t new_version = 0;
    ilp::LearnResult learn_result;
    std::string reason;
};

class PolicyAdaptationPoint {
public:
    PolicyAdaptationPoint(asg::AnswerSetGrammar initial, ilp::HypothesisSpace space,
                          AdaptationOptions options = {})
        : initial_(std::move(initial)), space_(std::move(space)), options_(std::move(options)) {}

    // Inspects the monitor; if adaptation is warranted, learns from the
    // feedback records and stores the result in `representations`.
    AdaptationOutcome maybe_adapt(const DecisionMonitor& monitor,
                                  RepresentationsRepository& representations);

    // Unconditional re-learn from explicit examples (used at bootstrap and
    // on explicit context change).
    AdaptationOutcome adapt_from_examples(const std::vector<ilp::Example>& positive,
                                          const std::vector<ilp::Example>& negative,
                                          RepresentationsRepository& representations,
                                          const std::string& note);

    [[nodiscard]] const asg::AnswerSetGrammar& initial_model() const { return initial_; }
    [[nodiscard]] const AdaptationCache* cache() const {
        return options_.use_similarity_cache ? &cache_ : nullptr;
    }

private:
    asg::AnswerSetGrammar initial_;
    ilp::HypothesisSpace space_;
    AdaptationOptions options_;
    AdaptationCache cache_{0.25};
};

}  // namespace agenp::framework
