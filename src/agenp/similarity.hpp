// Similarity-based policy adaptation (Section I: "because policies are
// expressed according to a symbolic formalism, it is easy to support
// similarity-based policy adaptation").
//
// Contexts and learned models are symbolic objects, so similarity is
// syntactic and cheap: Jaccard over ground context facts, and Jaccard over
// annotation rules for GPMs. The AdaptationCache exploits this: when a
// party faces a new context, it first tries the hypothesis learned under
// the most similar previous context — if that hypothesis is already
// consistent with the new examples, the (expensive) inductive search is
// skipped entirely.
#pragma once

#include "ilp/learner.hpp"

namespace agenp::framework {

// Jaccard similarity of the fact/rule sets of two context programs (1.0 for
// identical, 0.0 for disjoint; two empty contexts count as identical).
double context_similarity(const asp::Program& a, const asp::Program& b);

// Jaccard similarity over the annotation rules of two ASGs (productions are
// matched by index; differing production counts lower the score).
double model_similarity(const asg::AnswerSetGrammar& a, const asg::AnswerSetGrammar& b);

// Checks an existing hypothesis against a task's examples (Definition 3
// conditions) without searching.
bool hypothesis_consistent(const ilp::LearningTask& task, const ilp::Hypothesis& hypothesis,
                           const asg::MembershipOptions& options = {});

class AdaptationCache {
public:
    struct Entry {
        asp::Program context;  // the context signature the hypothesis was learned under
        ilp::Hypothesis hypothesis;
    };

    struct Outcome {
        bool reused = false;            // a cached hypothesis was consistent
        double best_similarity = 0.0;   // similarity of the closest cached context
        ilp::LearnResult result;        // filled by learning when !reused
        ilp::Hypothesis hypothesis;     // the hypothesis in force either way
    };

    explicit AdaptationCache(double min_similarity = 0.25) : min_similarity_(min_similarity) {}

    // Adapts to `task` under `signature`: tries cached hypotheses from
    // similar contexts (most similar first), falls back to ilp::learn, and
    // caches the result.
    Outcome adapt(const ilp::LearningTask& task, const asp::Program& signature,
                  const ilp::LearnOptions& options = {});

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t reuse_hits() const { return reuse_hits_; }
    [[nodiscard]] std::size_t learn_calls() const { return learn_calls_; }

private:
    double min_similarity_;
    std::vector<Entry> entries_;
    std::size_t reuse_hits_ = 0;
    std::size_t learn_calls_ = 0;
};

}  // namespace agenp::framework
