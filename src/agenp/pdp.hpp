// PDP + PEP + decision monitoring (Fig 2, bottom).
//
// A "request" at this level is a candidate policy-governed action rendered
// as a token string of the GPM's policy language; the PDP permits it iff it
// is (a) present in the Policy Repository (repository strategy, mirroring a
// conventional PBMS whose PDP consults stored policies), or (b) in the
// GPM's language under the current context (membership strategy, for
// request spaces too large to materialize). The PEP carries the decision
// out and the monitor records history for the PAdaP.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "agenp/repository.hpp"
#include "asg/membership.hpp"

namespace agenp::framework {

struct DecisionRecord {
    cfg::TokenString request;
    asp::Program context;
    bool permitted = false;
    std::uint64_t model_version = 0;
    // Ground truth feedback, when later observed (drives adaptation).
    std::optional<bool> should_permit;
};

// History of PDP decisions and PEP actions ("the operations of the PDP and
// PEP are monitored to produce a history").
//
// Bounded: the monitor keeps at most `capacity` records as a ring buffer,
// evicting the oldest, so a long-running serving loop cannot grow it
// without bound. Indices returned by record() are monotonically increasing
// sequence numbers that stay valid across evictions; attach_feedback on an
// evicted (or never-issued) index reports failure instead of touching
// memory it doesn't own.
class DecisionMonitor {
public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    explicit DecisionMonitor(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    std::size_t record(DecisionRecord record) {
        if (history_.size() == capacity_) {
            history_.pop_front();
            ++first_;
        }
        history_.push_back(std::move(record));
        return first_ + history_.size() - 1;
    }

    // False when `index` was evicted or never issued.
    [[nodiscard]] bool attach_feedback(std::size_t index, bool should_permit) {
        if (index < first_ || index - first_ >= history_.size()) return false;
        history_[index - first_].should_permit = should_permit;
        return true;
    }

    [[nodiscard]] const std::deque<DecisionRecord>& history() const { return history_; }
    // Sequence number of history().front(); equals total_recorded() minus
    // the retained count.
    [[nodiscard]] std::size_t first_index() const { return first_; }
    [[nodiscard]] std::size_t total_recorded() const { return first_ + history_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    // Accuracy over records with feedback; nullopt when none.
    [[nodiscard]] std::optional<double> observed_accuracy() const;

    // Records with feedback, for re-learning.
    [[nodiscard]] std::vector<const DecisionRecord*> feedback_records() const;

    // Human-readable audit trail (Section V.A's logging requirement): the
    // last `last_n` decisions (0 = all) plus summary counts — total,
    // permitted, feedback coverage, observed accuracy, and decisions taken
    // by superseded model versions.
    [[nodiscard]] std::string render_audit(std::size_t last_n = 0) const;

    // Drops retained records; sequence numbers keep advancing so indices
    // handed out before the clear stay invalid rather than aliasing.
    void clear() {
        first_ += history_.size();
        history_.clear();
    }

private:
    std::size_t capacity_;
    std::size_t first_ = 0;  // sequence number of history_.front()
    std::deque<DecisionRecord> history_;
};

enum class DecisionStrategy {
    Repository,  // permitted iff the request is a stored generated policy
    Membership,  // permitted iff the request is in L(model(context))
};

// Stable lowercase name, as reported in audit-log entries and stats.
constexpr const char* strategy_name(DecisionStrategy s) {
    return s == DecisionStrategy::Repository ? "repository" : "membership";
}

class PolicyDecisionPoint {
public:
    PolicyDecisionPoint(DecisionStrategy strategy, asg::MembershipOptions options = {})
        : strategy_(strategy), options_(std::move(options)) {}

    [[nodiscard]] bool decide(const cfg::TokenString& request, const asp::Program& context,
                              const asg::AnswerSetGrammar& model, const PolicyRepository& repo) const;

    [[nodiscard]] DecisionStrategy strategy() const { return strategy_; }

    // Installs (or removes, with nullptr) a grounding memo used by the
    // membership strategy; the owner (DecisionService) keeps it alive and
    // epoch-stamps it on model updates. See asg/memo.hpp.
    void set_grounding_memo(asg::GroundingMemo* memo) { memo_ = memo; }
    [[nodiscard]] asg::GroundingMemo* grounding_memo() const { return memo_; }

private:
    DecisionStrategy strategy_;
    asg::MembershipOptions options_;
    asg::GroundingMemo* memo_ = nullptr;
};

// The PEP applies decisions to the managed resources; here the managed
// side-effect is pluggable.
class PolicyEnforcementPoint {
public:
    using Effector = std::function<void(const cfg::TokenString&, bool permitted)>;

    void set_effector(Effector e) { effector_ = std::move(e); }

    void enforce(const cfg::TokenString& request, bool permitted) const {
        if (effector_) effector_(request, permitted);
    }

private:
    Effector effector_;
};

}  // namespace agenp::framework
