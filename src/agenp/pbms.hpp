// The Policy-Based Management System (Fig 2, left): the managing party that
// characterizes the policy space — CFG, fixed constraints, learnable
// hypothesis space, and hard boundaries — and hands AMSs their operating
// envelope. "The AMS is only free to generate policies that are captured in
// the language of the CFG and comply with the high level constraints."
#pragma once

#include "agenp/ams.hpp"

namespace agenp::framework {

struct PolicyCharacterization {
    // ASG text: the policy-language CFG plus any non-negotiable semantic
    // conditions baked into the productions.
    std::string grammar_text;
    // Additional managing-party constraints attached to the start
    // production of every instantiated AMS (e.g. global safety rules).
    asp::Program root_constraints;
    // Hard boundaries: strings no AMS model may ever accept, enforced by
    // the PCP at every adaptation.
    std::vector<ilp::Example> forbidden;
    // The rules the AMS is allowed to learn.
    ilp::HypothesisSpace space;
};

class PolicyBasedManagementSystem {
public:
    void define(std::string name, PolicyCharacterization characterization);

    [[nodiscard]] const PolicyCharacterization* find(const std::string& name) const;
    [[nodiscard]] std::size_t characterization_count() const { return characterizations_.size(); }

    // Instantiates an AMS operating inside the named characterization:
    // initial ASG = grammar + root constraints; forbidden strings are wired
    // into the adaptation options. Throws std::out_of_range for unknown
    // names.
    [[nodiscard]] AutonomousManagedSystem instantiate(const std::string& ams_name,
                                                      const std::string& characterization,
                                                      AmsOptions options = {}) const;

private:
    std::map<std::string, PolicyCharacterization> characterizations_;
};

}  // namespace agenp::framework
