// Context handling: the PIP (Policy Information Point) and the Context
// Repository of Fig 2.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "asp/program.hpp"

namespace agenp::framework {

// Acquires information about external conditions affecting the AMS
// (Section III.A.3). Sources are pluggable producers of context facts; the
// PIP concatenates whatever they currently report.
class PolicyInformationPoint {
public:
    using Source = std::function<asp::Program()>;

    void add_source(std::string name, Source source) {
        sources_[std::move(name)] = std::move(source);
    }
    void remove_source(const std::string& name) { sources_.erase(name); }

    // Snapshot of all external conditions, as one context program.
    [[nodiscard]] asp::Program gather() const {
        asp::Program out;
        for (const auto& [name, source] : sources_) {
            (void)name;
            out.append(source());
        }
        return out;
    }

    [[nodiscard]] std::size_t source_count() const { return sources_.size(); }

private:
    std::map<std::string, Source> sources_;
};

// Named context snapshots (operating theatres, mission phases, ...).
class ContextRepository {
public:
    void store(std::string name, asp::Program context) {
        contexts_[std::move(name)] = std::move(context);
    }

    [[nodiscard]] const asp::Program* find(const std::string& name) const {
        auto it = contexts_.find(name);
        return it == contexts_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::size_t size() const { return contexts_.size(); }

private:
    std::map<std::string, asp::Program> contexts_;
};

}  // namespace agenp::framework
