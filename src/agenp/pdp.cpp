#include "agenp/pdp.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/costtable.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"

namespace agenp::framework {

std::optional<double> DecisionMonitor::observed_accuracy() const {
    std::size_t with_feedback = 0;
    std::size_t correct = 0;
    for (const auto& r : history_) {
        if (!r.should_permit) continue;
        ++with_feedback;
        if (*r.should_permit == r.permitted) ++correct;
    }
    if (with_feedback == 0) return std::nullopt;
    return static_cast<double>(correct) / static_cast<double>(with_feedback);
}

std::vector<const DecisionRecord*> DecisionMonitor::feedback_records() const {
    std::vector<const DecisionRecord*> out;
    for (const auto& r : history_) {
        if (r.should_permit) out.push_back(&r);
    }
    return out;
}

std::string DecisionMonitor::render_audit(std::size_t last_n) const {
    std::string out;
    std::size_t permitted = 0, with_feedback = 0, correct = 0;
    std::uint64_t latest_version = 0;
    for (const auto& r : history_) {
        permitted += r.permitted;
        latest_version = std::max(latest_version, r.model_version);
        if (r.should_permit) {
            ++with_feedback;
            correct += *r.should_permit == r.permitted;
        }
    }
    std::size_t stale = 0;
    for (const auto& r : history_) stale += r.model_version != latest_version;

    std::size_t start = last_n == 0 || last_n >= history_.size() ? 0 : history_.size() - last_n;
    for (std::size_t i = start; i < history_.size(); ++i) {
        const auto& r = history_[i];
        out += "  #" + std::to_string(first_ + i) + " " + cfg::detokenize(r.request) + " -> " +
               (r.permitted ? "Permit" : "Deny") + " (model v" +
               std::to_string(r.model_version) + ")";
        if (r.should_permit) {
            out += *r.should_permit == r.permitted ? " [confirmed]" : " [WRONG]";
        }
        out += "\n";
    }
    out += "decisions: " + std::to_string(history_.size()) + ", permitted: " +
           std::to_string(permitted) + ", feedback: " + std::to_string(with_feedback);
    if (with_feedback > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(correct) / static_cast<double>(with_feedback));
        out += ", observed accuracy: " + std::string(buf);
    }
    out += ", pre-v" + std::to_string(latest_version) + " decisions: " + std::to_string(stale) + "\n";
    return out;
}

bool PolicyDecisionPoint::decide(const cfg::TokenString& request, const asp::Program& context,
                                 const asg::AnswerSetGrammar& model,
                                 const PolicyRepository& repo) const {
    obs::ScopedSpan span("agenp.pdp.decide", "agenp");
    obs::TracePhase request_phase(obs::current_trace(), "agenp.pdp.decide");
    static obs::Histogram& time_hist = obs::metrics().histogram("agenp.pdp.time_us");
    obs::ScopedTimer timer(time_hist);

    // The memo pointer rides on a per-call copy so `decide` stays const
    // (MembershipOptions is a small value; the copy is a handful of words).
    asg::MembershipOptions options = options_;
    options.memo = memo_;

    bool permitted = false;
    switch (strategy_) {
        case DecisionStrategy::Repository: {
            static obs::CostCell& repo_cost = obs::costs().cell("pdp.repository");
            obs::ScopedCost cost(repo_cost);
            permitted = repo.contains(request);
            // When the PReP could not materialize the full request space,
            // absence from the repository is inconclusive: fall back to the
            // authoritative membership check instead of silently denying.
            if (!permitted && repo.truncated()) {
                permitted = asg::in_language(model, request, context, options);
                if (obs::metrics_enabled()) {
                    static obs::Counter& fallbacks =
                        obs::metrics().counter("srv.repository_fallbacks");
                    fallbacks.add(1);
                }
            }
            break;
        }
        case DecisionStrategy::Membership: {
            static obs::CostCell& membership_cost = obs::costs().cell("pdp.membership");
            obs::ScopedCost cost(membership_cost);
            permitted = asg::in_language(model, request, context, options);
            break;
        }
    }
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& decisions = m.counter("agenp.pdp.decisions");
        static obs::Counter& permits = m.counter("agenp.pdp.permitted");
        decisions.add(1);
        if (permitted) permits.add(1);
    }
    return permitted;
}

}  // namespace agenp::framework
