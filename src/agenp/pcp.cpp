#include "agenp/pcp.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::framework {

std::string QualityReport::to_string() const {
    std::string out;
    out += "consistency: " + std::string(consistent() ? "ok" : std::to_string(conflicts.size()) + " conflict(s)") + "\n";
    out += "relevance:   " + std::string(relevant() ? "ok" : std::to_string(irrelevant_rules.size()) + " irrelevant rule(s)") + "\n";
    out += "minimality:  " + std::string(minimal() ? "ok" : std::to_string(redundant_rules.size()) + " redundant rule(s)") + "\n";
    out += "completeness: " + std::string(complete() ? "ok" : std::to_string(uncovered_requests) + " uncovered request(s)") + "\n";
    return out;
}

QualityReport PolicyCheckingPoint::assess(const xacml::XacmlPolicy& policy,
                                          const std::vector<xacml::Request>& universe) {
    QualityReport report;
    const auto& rules = policy.rules;

    // Precompute per-rule applicability over the universe.
    std::vector<std::vector<bool>> applies(rules.size(), std::vector<bool>(universe.size(), false));
    for (std::size_t i = 0; i < rules.size(); ++i) {
        for (std::size_t r = 0; r < universe.size(); ++r) {
            applies[i][r] = policy.target.applies(universe[r]) && rules[i].target.applies(universe[r]);
        }
    }

    // Consistency: overlapping applicability with different effects. (The
    // combining algorithm resolves such conflicts at run time, but [14]
    // counts them as specification-quality defects.) Catch-all rules with
    // empty targets are deliberate defaults, not conflicting intent, and
    // are excluded.
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (rules[i].target.all_of.empty()) continue;
        for (std::size_t j = i + 1; j < rules.size(); ++j) {
            if (rules[j].target.all_of.empty()) continue;
            if (rules[i].effect == rules[j].effect) continue;
            for (std::size_t r = 0; r < universe.size(); ++r) {
                if (applies[i][r] && applies[j][r]) {
                    report.conflicts.emplace_back(i, j);
                    break;
                }
            }
        }
    }

    // Relevance.
    for (std::size_t i = 0; i < rules.size(); ++i) {
        bool any = false;
        for (std::size_t r = 0; r < universe.size() && !any; ++r) any = applies[i][r];
        if (!any) report.irrelevant_rules.push_back(i);
    }

    // Minimality: rule i is redundant when removing it leaves every
    // decision unchanged.
    std::vector<xacml::Decision> baseline(universe.size());
    for (std::size_t r = 0; r < universe.size(); ++r) baseline[r] = xacml::evaluate(policy, universe[r]);
    for (std::size_t i = 0; i < rules.size(); ++i) {
        xacml::XacmlPolicy without = policy;
        without.rules.erase(without.rules.begin() + static_cast<std::ptrdiff_t>(i));
        bool same = true;
        for (std::size_t r = 0; r < universe.size() && same; ++r) {
            same = xacml::evaluate(without, universe[r]) == baseline[r];
        }
        if (same) report.redundant_rules.push_back(i);
    }

    // Completeness.
    for (std::size_t r = 0; r < universe.size(); ++r) {
        if (baseline[r] != xacml::Decision::Permit && baseline[r] != xacml::Decision::Deny) {
            ++report.uncovered_requests;
        }
    }
    return report;
}

EnforceabilityReport PolicyCheckingPoint::assess_enforceability(
    const xacml::XacmlPolicy& policy, const std::vector<std::size_t>& observable_attributes) {
    EnforceabilityReport report;
    auto observable = [&](std::size_t attr) {
        return std::find(observable_attributes.begin(), observable_attributes.end(), attr) !=
               observable_attributes.end();
    };
    for (std::size_t i = 0; i < policy.rules.size(); ++i) {
        for (const auto& m : policy.rules[i].target.all_of) {
            if (!observable(m.attribute)) {
                report.unenforceable_rules.push_back(i);
                break;
            }
        }
    }
    return report;
}

PolicyCheckingPoint::RiskReport PolicyCheckingPoint::assess_risk(
    const xacml::XacmlPolicy& policy, const std::vector<xacml::Request>& universe,
    const RiskModel& model) {
    RiskReport report;
    for (const auto& r : universe) {
        double exposure = model.exposure(r);
        double burden = model.denial_cost(r);
        report.max_exposure += exposure;
        report.max_burden += burden;
        if (xacml::evaluate(policy, r) == xacml::Decision::Permit) {
            report.permit_exposure += exposure;
        } else {
            report.denial_burden += burden;
        }
    }
    return report;
}

PolicyCheckingPoint::GpmQualityReport PolicyCheckingPoint::assess_gpm(
    const asg::AnswerSetGrammar& initial, const ilp::Hypothesis& hypothesis,
    const std::vector<asp::Program>& contexts, const asg::LanguageOptions& options) {
    GpmQualityReport report;
    auto model = initial.with_rules(hypothesis);

    // Accepted strings per context for the full hypothesis.
    auto language_of = [&](const asg::AnswerSetGrammar& g) {
        std::vector<std::set<std::string>> out;
        for (const auto& ctx : contexts) {
            auto lang = asg::language(g, ctx, options);
            if (lang.truncated) report.truncated = true;
            std::set<std::string> strings;
            for (const auto& s : lang.strings) strings.insert(cfg::detokenize(s));
            out.push_back(std::move(strings));
        }
        return out;
    };
    auto baseline = language_of(model);
    for (const auto& s : baseline) report.language_size += s.size();

    // Minimality: leave-one-out language comparison.
    for (std::size_t i = 0; i < hypothesis.size(); ++i) {
        ilp::Hypothesis without;
        for (std::size_t j = 0; j < hypothesis.size(); ++j) {
            if (j != i) without.push_back(hypothesis[j]);
        }
        if (language_of(initial.with_rules(without)) == baseline) {
            report.redundant_rules.push_back(i);
        }
    }

    // Relevance: productions used by at least one accepted string.
    std::set<int> used;
    for (std::size_t c = 0; c < contexts.size(); ++c) {
        for (const auto& text : baseline[c]) {
            auto trees = cfg::parse_trees(model.grammar(), cfg::tokenize(text),
                                          options.membership.parse);
            for (const auto& tree : trees) {
                for (const auto& [trace, production] : asg::production_nodes(tree)) {
                    (void)trace;
                    used.insert(production);
                }
            }
        }
    }
    for (std::size_t p = 0; p < model.production_count(); ++p) {
        if (!used.contains(static_cast<int>(p))) report.dead_productions.push_back(static_cast<int>(p));
    }
    return report;
}

analysis::DiagnosticSink PolicyCheckingPoint::lint_model(const asg::AnswerSetGrammar& model,
                                                         const analysis::LintOptions& options) {
    obs::ScopedSpan span("agenp.pcp.lint_model", "agenp");
    auto sink = analysis::lint_asg(model, options);
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& checks = m.counter("agenp.pcp.lint_checks");
        static obs::Counter& errors = m.counter("agenp.pcp.lint_errors");
        checks.add(1);
        errors.add(sink.count(analysis::Severity::Error));
    }
    return sink;
}

PolicyCheckingPoint::ViolationReport PolicyCheckingPoint::detect_violations(
    const asg::AnswerSetGrammar& model, const std::vector<ilp::Example>& forbidden,
    const asg::MembershipOptions& options) {
    obs::ScopedSpan span("agenp.pcp.detect_violations", "agenp");
    static obs::Histogram& time_hist = obs::metrics().histogram("agenp.pcp.time_us");
    obs::ScopedTimer timer(time_hist);

    ViolationReport report;
    for (std::size_t i = 0; i < forbidden.size(); ++i) {
        if (asg::in_language(model, forbidden[i].string, forbidden[i].context, options)) {
            report.violated.push_back(i);
        }
    }
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& checks = m.counter("agenp.pcp.violation_checks");
        static obs::Counter& violations = m.counter("agenp.pcp.violations_found");
        checks.add(forbidden.size());
        violations.add(report.violated.size());
    }
    return report;
}

}  // namespace agenp::framework
