// PCP (Policy Checking Point): quality assessment and violation detection
// (Sections III.A.2 and V.A).
//
// Quality metrics over rule-structured policies, following [14]:
//  - consistency: no two applicable rules give conflicting effects;
//  - relevance:   every rule applies to some request of the universe;
//  - minimality:  no rule can be removed without changing any decision;
//  - completeness: every request gets a Permit/Deny decision.
// Plus the coalition-specific "enforceability" indicator (a rule is
// enforceable when every attribute it conditions on is observable).
//
// The Violation Detector checks a generative model (or an externally shared
// one) against must-not-accept strings before it is adopted.
#pragma once

#include <functional>

#include "analysis/lint.hpp"
#include "asg/generate.hpp"
#include "asg/membership.hpp"
#include "ilp/task.hpp"
#include "xacml/evaluator.hpp"

namespace agenp::framework {

struct QualityReport {
    // Pairs of rule indices that both apply to some request with different
    // effects (under an order-insensitive reading).
    std::vector<std::pair<std::size_t, std::size_t>> conflicts;
    std::vector<std::size_t> irrelevant_rules;
    std::vector<std::size_t> redundant_rules;
    std::size_t uncovered_requests = 0;  // completeness gap

    [[nodiscard]] bool consistent() const { return conflicts.empty(); }
    [[nodiscard]] bool relevant() const { return irrelevant_rules.empty(); }
    [[nodiscard]] bool minimal() const { return redundant_rules.empty(); }
    [[nodiscard]] bool complete() const { return uncovered_requests == 0; }

    [[nodiscard]] std::string to_string() const;
};

struct EnforceabilityReport {
    // Rules conditioning on attributes outside the observable set.
    std::vector<std::size_t> unenforceable_rules;

    [[nodiscard]] bool enforceable() const { return unenforceable_rules.empty(); }
};

class PolicyCheckingPoint {
public:
    // Quality metrics of `policy` against a request universe (typically
    // xacml::enumerate_requests or a sample of the operating context).
    [[nodiscard]] static QualityReport assess(const xacml::XacmlPolicy& policy,
                                              const std::vector<xacml::Request>& universe);

    // Enforceability w.r.t. the attributes the AMS can actually observe.
    [[nodiscard]] static EnforceabilityReport assess_enforceability(
        const xacml::XacmlPolicy& policy, const std::vector<std::size_t>& observable_attributes);

    // --- risk (Section V.A's coalition-specific requirement) ---------------
    // Two-sided risk: permitting exposes assets; denying withholds utility
    // ("a restrictive access control policy may prevent the delivery of
    // relevant information needed by a party"). Costs are supplied per
    // request by a pluggable model.
    struct RiskModel {
        // Cost of this request being permitted (asset exposure).
        std::function<double(const xacml::Request&)> exposure = [](const auto&) { return 1.0; };
        // Cost of this request being denied or left undecided (missed
        // utility).
        std::function<double(const xacml::Request&)> denial_cost = [](const auto&) { return 1.0; };
    };

    struct RiskReport {
        double permit_exposure = 0;  // Σ exposure over permitted requests
        double denial_burden = 0;    // Σ denial_cost over denied/uncovered requests
        double max_exposure = 0;     // Σ exposure over the whole universe
        double max_burden = 0;       // Σ denial_cost over the whole universe

        // Normalized scores in [0, 1].
        [[nodiscard]] double exposure_ratio() const {
            return max_exposure == 0 ? 0 : permit_exposure / max_exposure;
        }
        [[nodiscard]] double burden_ratio() const {
            return max_burden == 0 ? 0 : denial_burden / max_burden;
        }
    };

    [[nodiscard]] static RiskReport assess_risk(const xacml::XacmlPolicy& policy,
                                                const std::vector<xacml::Request>& universe,
                                                const RiskModel& model);
    // Unit-cost model on both sides.
    [[nodiscard]] static RiskReport assess_risk(const xacml::XacmlPolicy& policy,
                                                const std::vector<xacml::Request>& universe) {
        return assess_risk(policy, universe, RiskModel{});
    }

    // --- static pre-adoption check (DESIGN.md §9) --------------------------
    // Lints the generative model itself: unsafe rules, undefined/unused
    // predicates, arity clashes, non-stratified negation, trivially
    // unsatisfiable constraints, unreachable/nonproductive productions.
    // Unlike detect_violations this needs no forbidden strings and runs in
    // milliseconds, so it is the cheap first gate before adoption;
    // Error-severity findings should block the model.
    [[nodiscard]] static analysis::DiagnosticSink lint_model(
        const asg::AnswerSetGrammar& model, const analysis::LintOptions& options = {});

    // Violation detector: forbidden strings the model must NOT accept.
    struct ViolationReport {
        std::vector<std::size_t> violated;  // indices into `forbidden`

        [[nodiscard]] bool valid() const { return violated.empty(); }
    };

    [[nodiscard]] static ViolationReport detect_violations(
        const asg::AnswerSetGrammar& model, const std::vector<ilp::Example>& forbidden,
        const asg::MembershipOptions& options = {});

    // --- native-GPM quality ------------------------------------------------
    // Minimality and relevance lifted to the generative model itself:
    //  - a hypothesis rule is redundant when removing it leaves L(G(C))
    //    unchanged for every supplied context;
    //  - a production is dead when no accepted string of any context uses
    //    it (grammar-level relevance).
    struct GpmQualityReport {
        std::vector<std::size_t> redundant_rules;  // indices into the hypothesis
        std::vector<int> dead_productions;
        std::size_t language_size = 0;  // accepted strings across all contexts
        bool truncated = false;         // an enumeration budget was hit

        [[nodiscard]] bool minimal() const { return redundant_rules.empty(); }
        [[nodiscard]] bool relevant() const { return dead_productions.empty(); }
    };

    [[nodiscard]] static GpmQualityReport assess_gpm(const asg::AnswerSetGrammar& initial,
                                                     const ilp::Hypothesis& hypothesis,
                                                     const std::vector<asp::Program>& contexts,
                                                     const asg::LanguageOptions& options = {});
};

}  // namespace agenp::framework
