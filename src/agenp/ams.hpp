// The Autonomous Managed System: assembles PIP, PReP, PDP/PEP, monitor,
// PAdaP, PCP and the repositories into the closed loop of Fig 2.
#pragma once

#include "agenp/context.hpp"
#include "agenp/padap.hpp"
#include "agenp/prep.hpp"

namespace agenp::framework {

struct AmsOptions {
    DecisionStrategy strategy = DecisionStrategy::Membership;
    PrepOptions prep;
    AdaptationOptions adaptation;
    asg::MembershipOptions membership;
    // Refresh the Policy Repository automatically whenever a new model is
    // adopted (needed by the Repository decision strategy).
    bool auto_refresh_policies = true;
    // Ring-buffer bound on the decision history (see DecisionMonitor).
    std::size_t monitor_capacity = DecisionMonitor::kDefaultCapacity;
};

// A model shared into the coalition (CASWiki-style, Section III.A.3).
struct SharedModel {
    std::string origin;
    asg::AnswerSetGrammar model;
    std::uint64_t version = 0;
};

class AutonomousManagedSystem {
public:
    AutonomousManagedSystem(std::string name, asg::AnswerSetGrammar initial,
                            ilp::HypothesisSpace space, AmsOptions options = {});

    [[nodiscard]] const std::string& name() const { return name_; }

    // --- context ---
    PolicyInformationPoint& pip() { return pip_; }
    ContextRepository& contexts() { return context_repo_; }
    [[nodiscard]] asp::Program current_context() const { return pip_.gather(); }

    // --- model ---
    // The GPM in force: latest learned representation, or the initial one.
    [[nodiscard]] const asg::AnswerSetGrammar& model() const;
    [[nodiscard]] std::uint64_t model_version() const { return representations_.latest_version(); }
    RepresentationsRepository& representations() { return representations_; }

    // --- decide / enforce ---
    // Decides `request` under the current context; records it; runs the
    // PEP. Returns (permitted, monitor index for later feedback).
    std::pair<bool, std::size_t> handle_request(const cfg::TokenString& request);

    // Pure decision under an explicit context snapshot: no PEP side effect,
    // no monitor record. The serving layer (src/srv) uses this so it can
    // cache the result and record history under its own locks.
    [[nodiscard]] bool decide(const cfg::TokenString& request, const asp::Program& context) const {
        return pdp_.decide(request, context, model(), policy_repo_);
    }

    // False when the index was evicted from (or never issued by) the
    // bounded monitor.
    [[nodiscard]] bool give_feedback(std::size_t decision_index, bool should_permit) {
        return monitor_.attach_feedback(decision_index, should_permit);
    }

    // The PDP strategy this AMS decides with (fixed at construction).
    [[nodiscard]] DecisionStrategy strategy() const { return pdp_.strategy(); }

    // Installs a grounding memo on the PDP's membership path (nullptr
    // removes it). The caller owns the memo and must keep its epoch in
    // step with model_version(); DecisionService does both.
    void set_grounding_memo(asg::GroundingMemo* memo) { pdp_.set_grounding_memo(memo); }

    PolicyEnforcementPoint& pep() { return pep_; }
    [[nodiscard]] const DecisionMonitor& monitor() const { return monitor_; }
    DecisionMonitor& monitor() { return monitor_; }
    PolicyRepository& policies() { return policy_repo_; }

    // --- learn / adapt ---
    // Learns a GPM from explicit examples (bootstrap or context change).
    AdaptationOutcome learn_model(const std::vector<ilp::Example>& positive,
                                  const std::vector<ilp::Example>& negative,
                                  const std::string& note = "bootstrap");

    // Monitor-driven adaptation (the PAdaP loop).
    AdaptationOutcome adapt();

    // Regenerates the Policy Repository from the current model + context.
    PrepReport refresh_policies();

    // --- coalition sharing ---
    [[nodiscard]] SharedModel export_model() const;
    // PCP-validates a partner's model against local forbidden strings
    // before adopting it.
    bool import_model(const SharedModel& shared);

private:
    void after_model_change();

    std::string name_;
    AmsOptions options_;
    PolicyInformationPoint pip_;
    ContextRepository context_repo_;
    RepresentationsRepository representations_;
    PolicyRepository policy_repo_;
    PolicyRefinementPoint prep_;
    PolicyDecisionPoint pdp_;
    PolicyEnforcementPoint pep_;
    DecisionMonitor monitor_;
    PolicyAdaptationPoint padap_;
};

}  // namespace agenp::framework
