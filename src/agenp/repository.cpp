#include "agenp/repository.hpp"

#include <stdexcept>

namespace agenp::framework {

void PolicyRepository::replace(std::vector<cfg::TokenString> policies, const std::string& source,
                               std::uint64_t version) {
    policies_.clear();
    index_.clear();
    version_ = version;
    truncated_ = false;
    for (auto& p : policies) add(std::move(p), source, version);
}

void PolicyRepository::add(cfg::TokenString policy, const std::string& source,
                           std::uint64_t version) {
    auto key = cfg::detokenize(policy);
    if (!index_.insert(key).second) return;  // already present
    policies_.push_back({std::move(policy), source, version});
}

bool PolicyRepository::contains(const cfg::TokenString& policy) const {
    return index_.contains(cfg::detokenize(policy));
}

void PolicyRepository::restore(std::vector<StoredPolicy> policies, std::uint64_t version,
                               bool truncated) {
    policies_.clear();
    index_.clear();
    for (auto& p : policies) {
        if (!index_.insert(cfg::detokenize(p.policy)).second) continue;
        policies_.push_back(std::move(p));
    }
    version_ = version;
    truncated_ = truncated;
}

std::uint64_t RepresentationsRepository::store(asg::AnswerSetGrammar model, std::string note) {
    history_.push_back({std::move(model), std::move(note)});
    return latest_version();
}

void RepresentationsRepository::restore(asg::AnswerSetGrammar model, std::uint64_t version,
                                        std::string note) {
    if (version == 0) throw std::logic_error("cannot restore a model at version 0");
    history_.clear();
    history_.push_back({std::move(model), std::move(note)});
    base_version_ = version - 1;
}

const asg::AnswerSetGrammar& RepresentationsRepository::latest() const {
    if (history_.empty()) throw std::logic_error("representations repository is empty");
    return history_.back().model;
}

const asg::AnswerSetGrammar* RepresentationsRepository::at_version(std::uint64_t version) const {
    if (version <= base_version_ || version > latest_version()) return nullptr;
    return &history_[version - base_version_ - 1].model;
}

const std::string& RepresentationsRepository::note_for(std::uint64_t version) const {
    static const std::string kEmpty;
    if (version <= base_version_ || version > latest_version()) return kEmpty;
    return history_[version - base_version_ - 1].note;
}

}  // namespace agenp::framework
