#include "agenp/similarity.hpp"

#include <algorithm>
#include <set>

namespace agenp::framework {
namespace {

std::set<std::string> rule_set(const asp::Program& p) {
    std::set<std::string> out;
    for (const auto& r : p.rules()) out.insert(r.to_string());
    return out;
}

double jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
    if (a.empty() && b.empty()) return 1.0;
    std::size_t inter = 0;
    for (const auto& x : a) inter += b.contains(x);
    std::size_t uni = a.size() + b.size() - inter;
    return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double context_similarity(const asp::Program& a, const asp::Program& b) {
    return jaccard(rule_set(a), rule_set(b));
}

double model_similarity(const asg::AnswerSetGrammar& a, const asg::AnswerSetGrammar& b) {
    std::set<std::string> ra, rb;
    for (std::size_t i = 0; i < a.production_count(); ++i) {
        for (const auto& r : a.annotation(static_cast<int>(i)).rules()) {
            ra.insert(std::to_string(i) + "|" + r.to_string());
        }
    }
    for (std::size_t i = 0; i < b.production_count(); ++i) {
        for (const auto& r : b.annotation(static_cast<int>(i)).rules()) {
            rb.insert(std::to_string(i) + "|" + r.to_string());
        }
    }
    double annotation_score = jaccard(ra, rb);
    // Production-structure mismatch scales the score down.
    double structure =
        a.production_count() == 0 && b.production_count() == 0
            ? 1.0
            : static_cast<double>(std::min(a.production_count(), b.production_count())) /
                  static_cast<double>(std::max<std::size_t>(
                      1, std::max(a.production_count(), b.production_count())));
    return annotation_score * structure;
}

bool hypothesis_consistent(const ilp::LearningTask& task, const ilp::Hypothesis& hypothesis,
                           const asg::MembershipOptions& options) {
    asg::AnswerSetGrammar candidate;
    try {
        candidate = task.initial.with_rules(hypothesis);
    } catch (const asg::AsgError&) {
        return false;  // hypothesis targets productions this grammar lacks
    }
    for (const auto& ex : task.positive) {
        if (!asg::in_language(candidate, ex.string, ex.context, options)) return false;
    }
    for (const auto& ex : task.negative) {
        if (asg::in_language(candidate, ex.string, ex.context, options)) return false;
    }
    return true;
}

AdaptationCache::Outcome AdaptationCache::adapt(const ilp::LearningTask& task,
                                                const asp::Program& signature,
                                                const ilp::LearnOptions& options) {
    Outcome outcome;

    // Rank cached entries by context similarity, most similar first.
    std::vector<std::pair<double, const Entry*>> ranked;
    for (const auto& e : entries_) {
        ranked.emplace_back(context_similarity(signature, e.context), &e);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    if (!ranked.empty()) outcome.best_similarity = ranked.front().first;

    for (const auto& [similarity, entry] : ranked) {
        if (similarity < min_similarity_) break;
        if (hypothesis_consistent(task, entry->hypothesis, options.membership)) {
            ++reuse_hits_;
            outcome.reused = true;
            outcome.hypothesis = entry->hypothesis;
            return outcome;
        }
    }

    ++learn_calls_;
    outcome.result = ilp::learn(task, options);
    if (outcome.result.found) {
        outcome.hypothesis = outcome.result.hypothesis;
        entries_.push_back({signature, outcome.result.hypothesis});
    }
    return outcome;
}

}  // namespace agenp::framework
