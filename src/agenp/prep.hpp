// PReP (Policy Refinement Point, Section III.A): turns the PBMS-supplied
// characterization (CFG + constraints = the ASG) plus the current context
// into concrete policies in the Policy Repository.
#pragma once

#include "agenp/repository.hpp"
#include "asg/generate.hpp"

namespace agenp::framework {

struct PrepOptions {
    asg::LanguageOptions language;
};

struct PrepReport {
    std::size_t generated = 0;
    bool truncated = false;  // the candidate enumeration hit its budget
};

class PolicyRefinementPoint {
public:
    explicit PolicyRefinementPoint(PrepOptions options = {}) : options_(std::move(options)) {}

    // Materializes L(model(context)) into `repo`, tagged with `version`.
    PrepReport refresh(const asg::AnswerSetGrammar& model, const asp::Program& context,
                       PolicyRepository& repo, std::uint64_t version);

private:
    PrepOptions options_;
};

}  // namespace agenp::framework
