// Coalition of AMSs with CASWiki-style policy sharing (Sections III.A.3 and
// IV): members publish learned GPMs to a shared knowledge base; other
// members PCP-validate and adopt them instead of learning from scratch.
#pragma once

#include <memory>

#include "agenp/ams.hpp"

namespace agenp::framework {

// The shared knowledge base of contributed models (CASWiki [16]).
class SharedPolicyRepository {
public:
    void publish(SharedModel model) { models_.push_back(std::move(model)); }

    [[nodiscard]] const std::vector<SharedModel>& models() const { return models_; }
    [[nodiscard]] std::size_t size() const { return models_.size(); }

private:
    std::vector<SharedModel> models_;
};

class Coalition {
public:
    // The coalition borrows members; callers own AMS lifetimes.
    void add_member(AutonomousManagedSystem* ams) { members_.push_back(ams); }

    [[nodiscard]] const std::vector<AutonomousManagedSystem*>& members() const { return members_; }
    SharedPolicyRepository& wiki() { return wiki_; }

    // Publishes `who`'s current model to the wiki.
    void publish(const AutonomousManagedSystem& who) { wiki_.publish(who.export_model()); }

    // Every member tries to adopt the newest wiki model not of its own
    // making; returns the number of successful adoptions.
    std::size_t distribute_latest();

private:
    std::vector<AutonomousManagedSystem*> members_;
    SharedPolicyRepository wiki_;
};

}  // namespace agenp::framework
