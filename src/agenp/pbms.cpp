#include "agenp/pbms.hpp"

#include <stdexcept>

namespace agenp::framework {

void PolicyBasedManagementSystem::define(std::string name,
                                         PolicyCharacterization characterization) {
    characterizations_[std::move(name)] = std::move(characterization);
}

const PolicyCharacterization* PolicyBasedManagementSystem::find(const std::string& name) const {
    auto it = characterizations_.find(name);
    return it == characterizations_.end() ? nullptr : &it->second;
}

AutonomousManagedSystem PolicyBasedManagementSystem::instantiate(
    const std::string& ams_name, const std::string& characterization, AmsOptions options) const {
    const PolicyCharacterization* c = find(characterization);
    if (!c) throw std::out_of_range("unknown characterization '" + characterization + "'");

    auto initial = asg::AnswerSetGrammar::parse(c->grammar_text);
    if (!c->root_constraints.empty()) {
        ilp::Hypothesis fixed;
        for (const auto& rule : c->root_constraints.rules()) fixed.emplace_back(rule, 0);
        initial = initial.with_rules(fixed);
    }
    // The managing party's boundaries override whatever the caller set.
    options.adaptation.forbidden = c->forbidden;
    return AutonomousManagedSystem(ams_name, std::move(initial), c->space, std::move(options));
}

}  // namespace agenp::framework
