// The Policy Repository and Representations Repository of Fig 2.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "asg/asg.hpp"

namespace agenp::framework {

// A concrete generated policy: one string of the GPM's language, plus
// provenance.
struct StoredPolicy {
    cfg::TokenString policy;
    std::string source;        // "prep", "shared:<ams>", ...
    std::uint64_t version = 0;  // GPM version that generated it
};

// Holds the policies currently in force for the AMS. The PDP consults it;
// the PReP refreshes it whenever the GPM or context changes.
class PolicyRepository {
public:
    // Replaces the whole set (a PReP refresh).
    void replace(std::vector<cfg::TokenString> policies, const std::string& source,
                 std::uint64_t version);

    // Adds one policy (e.g. imported from a coalition partner).
    void add(cfg::TokenString policy, const std::string& source, std::uint64_t version);

    [[nodiscard]] bool contains(const cfg::TokenString& policy) const;
    [[nodiscard]] const std::vector<StoredPolicy>& all() const { return policies_; }
    [[nodiscard]] std::size_t size() const { return policies_.size(); }
    [[nodiscard]] std::uint64_t version() const { return version_; }

    // True when the last refresh hit its enumeration budget, i.e. the
    // stored set undercovers the request space and `!contains(r)` is not a
    // reliable Deny. Cleared by replace(); the PReP re-stamps it.
    [[nodiscard]] bool truncated() const { return truncated_; }
    void set_truncated(bool truncated) { truncated_ = truncated; }

    // Reloads a persisted set verbatim (src/store warm restart): policies
    // keep their original per-policy provenance and version stamps, and
    // the repository-level version/truncated flags are restored as
    // recorded rather than re-stamped.
    void restore(std::vector<StoredPolicy> policies, std::uint64_t version, bool truncated);

private:
    std::vector<StoredPolicy> policies_;
    std::set<std::string> index_;  // detokenized strings for O(log n) lookup
    std::uint64_t version_ = 0;
    bool truncated_ = false;
};

// Versioned store of learned GPMs ("the PAdaP can access the latest
// representation of the ASG-based generative policy model").
class RepresentationsRepository {
public:
    // Returns the new version number.
    std::uint64_t store(asg::AnswerSetGrammar model, std::string note);

    // Re-seeds the repository from a persisted snapshot (src/store warm
    // restart): the history restarts at exactly `version` (>= 1) holding
    // only the given model, so latest_version() reports the persisted
    // number without replaying the intermediate learning steps — versions
    // below it were not persisted and resolve to nullptr.
    void restore(asg::AnswerSetGrammar model, std::uint64_t version, std::string note);

    [[nodiscard]] const asg::AnswerSetGrammar& latest() const;
    [[nodiscard]] std::uint64_t latest_version() const { return base_version_ + history_.size(); }
    [[nodiscard]] const asg::AnswerSetGrammar* at_version(std::uint64_t version) const;
    [[nodiscard]] const std::string& note_for(std::uint64_t version) const;
    [[nodiscard]] bool empty() const { return history_.empty(); }

private:
    struct Entry {
        asg::AnswerSetGrammar model;
        std::string note;
    };
    std::vector<Entry> history_;
    std::uint64_t base_version_ = 0;  // versions 1..base_ predate a restore
};

}  // namespace agenp::framework
