// The Policy Repository and Representations Repository of Fig 2.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "asg/asg.hpp"

namespace agenp::framework {

// A concrete generated policy: one string of the GPM's language, plus
// provenance.
struct StoredPolicy {
    cfg::TokenString policy;
    std::string source;        // "prep", "shared:<ams>", ...
    std::uint64_t version = 0;  // GPM version that generated it
};

// Holds the policies currently in force for the AMS. The PDP consults it;
// the PReP refreshes it whenever the GPM or context changes.
class PolicyRepository {
public:
    // Replaces the whole set (a PReP refresh).
    void replace(std::vector<cfg::TokenString> policies, const std::string& source,
                 std::uint64_t version);

    // Adds one policy (e.g. imported from a coalition partner).
    void add(cfg::TokenString policy, const std::string& source, std::uint64_t version);

    [[nodiscard]] bool contains(const cfg::TokenString& policy) const;
    [[nodiscard]] const std::vector<StoredPolicy>& all() const { return policies_; }
    [[nodiscard]] std::size_t size() const { return policies_.size(); }
    [[nodiscard]] std::uint64_t version() const { return version_; }

    // True when the last refresh hit its enumeration budget, i.e. the
    // stored set undercovers the request space and `!contains(r)` is not a
    // reliable Deny. Cleared by replace(); the PReP re-stamps it.
    [[nodiscard]] bool truncated() const { return truncated_; }
    void set_truncated(bool truncated) { truncated_ = truncated; }

private:
    std::vector<StoredPolicy> policies_;
    std::set<std::string> index_;  // detokenized strings for O(log n) lookup
    std::uint64_t version_ = 0;
    bool truncated_ = false;
};

// Versioned store of learned GPMs ("the PAdaP can access the latest
// representation of the ASG-based generative policy model").
class RepresentationsRepository {
public:
    // Returns the new version number.
    std::uint64_t store(asg::AnswerSetGrammar model, std::string note);

    [[nodiscard]] const asg::AnswerSetGrammar& latest() const;
    [[nodiscard]] std::uint64_t latest_version() const { return history_.size(); }
    [[nodiscard]] const asg::AnswerSetGrammar* at_version(std::uint64_t version) const;
    [[nodiscard]] const std::string& note_for(std::uint64_t version) const;
    [[nodiscard]] bool empty() const { return history_.empty(); }

private:
    struct Entry {
        asg::AnswerSetGrammar model;
        std::string note;
    };
    std::vector<Entry> history_;
};

}  // namespace agenp::framework
