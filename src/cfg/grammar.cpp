#include "cfg/grammar.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace agenp::cfg {

std::string Production::to_string() const {
    std::string out(lhs.str());
    out += " ->";
    for (const auto& s : rhs) {
        out += ' ';
        if (s.terminal) {
            out += '"';
            out += s.name.str();
            out += '"';
        } else {
            out += s.name.str();
        }
    }
    return out;
}

TokenString tokenize(std::string_view text) {
    TokenString tokens;
    for (const auto& w : util::split_ws(text)) tokens.emplace_back(w);
    return tokens;
}

std::string detokenize(const TokenString& tokens) {
    std::string out;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0) out += ' ';
        out += tokens[i].str();
    }
    return out;
}

namespace {

// Splits one right-hand-side alternative into grammar symbols. Quoted pieces
// are terminals; `epsilon` (or nothing) is the empty production.
std::vector<GSym> parse_alternative(std::string_view text, int line_no) {
    std::vector<GSym> rhs;
    std::size_t i = 0;
    while (i < text.size()) {
        if (std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
            continue;
        }
        if (text[i] == '"') {
            std::size_t end = text.find('"', i + 1);
            if (end == std::string_view::npos) {
                throw GrammarError("unterminated terminal at line " + std::to_string(line_no));
            }
            rhs.push_back(GSym::term(text.substr(i + 1, end - i - 1)));
            i = end + 1;
            continue;
        }
        std::size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) && text[i] != '"') ++i;
        auto word = text.substr(start, i - start);
        if (word == "epsilon") continue;  // explicit empty marker
        rhs.push_back(GSym::nonterm(word));
    }
    return rhs;
}

}  // namespace

Grammar Grammar::parse(std::string_view text) {
    Grammar g;
    int line_no = 0;
    bool have_start = false;
    for (const auto& raw_line : util::split(text, '\n')) {
        ++line_no;
        auto line = util::trim(raw_line);
        if (line.empty() || util::starts_with(line, "#")) continue;
        auto arrow = line.find("->");
        if (arrow == std::string_view::npos) {
            throw GrammarError("missing '->' at line " + std::to_string(line_no));
        }
        auto lhs_text = util::trim(line.substr(0, arrow));
        if (lhs_text.empty() || lhs_text.find(' ') != std::string_view::npos) {
            throw GrammarError("bad left-hand side at line " + std::to_string(line_no));
        }
        Symbol lhs(lhs_text);
        if (!have_start) {
            g.set_start(lhs);
            have_start = true;
        }
        auto rhs_text = line.substr(arrow + 2);
        // Split on '|' (terminals may not contain '|').
        std::size_t start = 0;
        while (start <= rhs_text.size()) {
            std::size_t bar = rhs_text.find('|', start);
            if (bar == std::string_view::npos) bar = rhs_text.size();
            g.add_production({lhs, parse_alternative(rhs_text.substr(start, bar - start), line_no)});
            start = bar + 1;
        }
    }
    if (!have_start) throw GrammarError("empty grammar");
    // Every bare identifier must be defined as a nonterminal somewhere.
    for (const auto& p : g.productions_) {
        for (const auto& s : p.rhs) {
            if (!s.terminal && !g.is_nonterminal(s.name)) {
                throw GrammarError("undefined nonterminal '" + std::string(s.name.str()) +
                                   "' (terminals must be quoted)");
            }
        }
    }
    return g;
}

int Grammar::add_production(Production p) {
    productions_.push_back(std::move(p));
    index_dirty_ = true;
    return static_cast<int>(productions_.size()) - 1;
}

void Grammar::rebuild_index() const {
    by_lhs_.clear();
    for (std::size_t i = 0; i < productions_.size(); ++i) {
        Symbol lhs = productions_[i].lhs;
        auto it = std::find_if(by_lhs_.begin(), by_lhs_.end(),
                               [&](const auto& e) { return e.first == lhs; });
        if (it == by_lhs_.end()) {
            by_lhs_.emplace_back(lhs, std::vector<int>{static_cast<int>(i)});
        } else {
            it->second.push_back(static_cast<int>(i));
        }
    }
    index_dirty_ = false;
}

const std::vector<int>& Grammar::productions_for(Symbol nt) const {
    if (index_dirty_) rebuild_index();
    static const std::vector<int> kEmpty;
    auto it = std::find_if(by_lhs_.begin(), by_lhs_.end(),
                           [&](const auto& e) { return e.first == nt; });
    return it == by_lhs_.end() ? kEmpty : it->second;
}

bool Grammar::is_nonterminal(Symbol s) const { return !productions_for(s).empty(); }

std::vector<Symbol> Grammar::nullable_nonterminals() const {
    std::set<Symbol> nullable;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& p : productions_) {
            if (nullable.contains(p.lhs)) continue;
            bool all_nullable = std::all_of(p.rhs.begin(), p.rhs.end(), [&](const GSym& s) {
                return !s.terminal && nullable.contains(s.name);
            });
            if (all_nullable) {
                nullable.insert(p.lhs);
                changed = true;
            }
        }
    }
    return {nullable.begin(), nullable.end()};
}

std::string Grammar::to_string() const {
    std::string out;
    for (const auto& p : productions_) {
        out += p.to_string();
        out += '\n';
    }
    return out;
}

}  // namespace agenp::cfg
