#include "cfg/generate.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace agenp::cfg {

GenerateResult generate_strings(const Grammar& grammar, const GenerateOptions& options) {
    GenerateResult result;
    // BFS over sentential forms, expanding the leftmost nonterminal. BFS
    // (rather than DFS) yields shorter sentences first and remains fair in
    // the presence of recursion.
    std::deque<std::vector<GSym>> queue;
    std::set<std::string> seen_sentences;
    std::set<std::string> seen_forms;
    queue.push_back({GSym::nonterm(grammar.start())});

    auto form_key = [](const std::vector<GSym>& form) {
        std::string key;
        for (const auto& s : form) {
            key += s.terminal ? 't' : 'n';
            key += s.name.str();
            key += '\x1f';
        }
        return key;
    };

    std::size_t expansions = 0;
    while (!queue.empty()) {
        if (result.strings.size() >= options.max_strings || expansions >= options.max_expansions) {
            result.truncated = true;
            break;
        }
        auto form = std::move(queue.front());
        queue.pop_front();
        ++expansions;

        auto nt_it = std::find_if(form.begin(), form.end(), [](const GSym& s) { return !s.terminal; });
        if (nt_it == form.end()) {
            TokenString sentence;
            for (const auto& s : form) sentence.push_back(s.name);
            if (seen_sentences.insert(detokenize(sentence)).second) {
                result.strings.push_back(std::move(sentence));
            }
            continue;
        }

        auto nt_index = static_cast<std::size_t>(nt_it - form.begin());
        for (int p : grammar.productions_for(nt_it->name)) {
            const auto& prod = grammar.production(p);
            std::vector<GSym> next;
            next.reserve(form.size() - 1 + prod.rhs.size());
            next.insert(next.end(), form.begin(), form.begin() + static_cast<std::ptrdiff_t>(nt_index));
            next.insert(next.end(), prod.rhs.begin(), prod.rhs.end());
            next.insert(next.end(), form.begin() + static_cast<std::ptrdiff_t>(nt_index) + 1, form.end());
            if (next.size() > options.max_length) continue;
            if (seen_forms.insert(form_key(next)).second) queue.push_back(std::move(next));
        }
    }
    return result;
}

}  // namespace agenp::cfg
