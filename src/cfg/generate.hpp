// Bounded enumeration of the strings of a CFG.
//
// PReP uses this to materialize the candidate policy space before filtering
// it through the ASG's semantic conditions (DESIGN.md "Generation").
#pragma once

#include "cfg/grammar.hpp"

namespace agenp::cfg {

struct GenerateOptions {
    std::size_t max_strings = 10000;   // stop after this many sentences
    std::size_t max_length = 32;       // drop sentential forms longer than this
    std::size_t max_expansions = 1000000;  // overall work budget
};

// Enumerates distinct sentences of `grammar` (shortest-first by expansion
// order). Truncation is silent by design: callers that care inspect
// GenerateResult::truncated.
struct GenerateResult {
    std::vector<TokenString> strings;
    bool truncated = false;
};

GenerateResult generate_strings(const Grammar& grammar, const GenerateOptions& options = {});

}  // namespace agenp::cfg
