#include "cfg/earley.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::cfg {

TokenString ParseNode::yield() const {
    if (is_leaf()) return {sym.name};
    TokenString out;
    for (const auto& c : children) {
        auto sub = c.yield();
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

std::string ParseNode::to_string() const {
    if (is_leaf()) return std::string(sym.name.str());
    std::string out = "(" + std::string(sym.name.str());
    for (const auto& c : children) out += " " + c.to_string();
    out += ")";
    return out;
}

namespace {

struct State {
    int prod;
    int dot;
    int origin;

    friend auto operator<=>(const State&, const State&) = default;
};

// The Earley chart plus the completed-span table used for tree extraction.
struct Chart {
    // completed[(lhs production, start)] -> ends
    std::map<std::pair<int, int>, std::set<int>> completed;
    bool accepted = false;
};

Chart run_earley(const Grammar& g, const TokenString& tokens) {
    obs::ScopedSpan span("cfg.parse", "cfg");
    auto nullable_list = g.nullable_nonterminals();
    std::set<Symbol> nullable(nullable_list.begin(), nullable_list.end());

    int n = static_cast<int>(tokens.size());
    std::vector<std::vector<State>> chart(static_cast<std::size_t>(n) + 1);
    std::vector<std::set<State>> seen(static_cast<std::size_t>(n) + 1);

    std::size_t chart_items = 0;
    std::size_t completions = 0;
    auto add = [&](int position, State s) {
        if (seen[static_cast<std::size_t>(position)].insert(s).second) {
            chart[static_cast<std::size_t>(position)].push_back(s);
            ++chart_items;
        }
    };

    for (int p : g.productions_for(g.start())) add(0, {p, 0, 0});

    Chart result;
    for (int i = 0; i <= n; ++i) {
        // Worklist over chart[i]; completion and prediction may append.
        for (std::size_t k = 0; k < chart[static_cast<std::size_t>(i)].size(); ++k) {
            State s = chart[static_cast<std::size_t>(i)][k];
            const auto& prod = g.production(s.prod);
            if (s.dot < static_cast<int>(prod.rhs.size())) {
                const GSym& next = prod.rhs[static_cast<std::size_t>(s.dot)];
                if (next.terminal) {
                    // Scan.
                    if (i < n && tokens[static_cast<std::size_t>(i)] == next.name) {
                        add(i + 1, {s.prod, s.dot + 1, s.origin});
                    }
                } else {
                    // Predict (+ nullable fix: advance over nullable nonterminals).
                    for (int p : g.productions_for(next.name)) add(i, {p, 0, i});
                    if (nullable.contains(next.name)) add(i, {s.prod, s.dot + 1, s.origin});
                }
            } else {
                // Complete.
                ++completions;
                result.completed[{s.prod, s.origin}].insert(i);
                for (const State& t : chart[static_cast<std::size_t>(s.origin)]) {
                    const auto& tp = g.production(t.prod);
                    if (t.dot < static_cast<int>(tp.rhs.size()) &&
                        !tp.rhs[static_cast<std::size_t>(t.dot)].terminal &&
                        tp.rhs[static_cast<std::size_t>(t.dot)].name == prod.lhs) {
                        add(i, {t.prod, t.dot + 1, t.origin});
                    }
                }
            }
        }
    }

    for (int p : g.productions_for(g.start())) {
        auto it = result.completed.find({p, 0});
        if (it != result.completed.end() && it->second.contains(n)) {
            result.accepted = true;
            break;
        }
    }

    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        static obs::Counter& parses = m.counter("cfg.earley.parses");
        static obs::Counter& items = m.counter("cfg.earley.chart_items");
        static obs::Counter& completed = m.counter("cfg.earley.completions");
        static obs::Counter& accepted = m.counter("cfg.earley.accepted");
        parses.add(1);
        items.add(chart_items);
        completed.add(completions);
        if (result.accepted) accepted.add(1);
    }
    return result;
}

// Enumerates parse trees from the completed-span table.
class TreeBuilder {
public:
    TreeBuilder(const Grammar& g, const TokenString& tokens, const Chart& chart, std::size_t max_trees)
        : g_(g), tokens_(tokens), chart_(chart), budget_(max_trees) {}

    std::vector<ParseNode> build_start() {
        return build_nonterminal(g_.start(), 0, static_cast<int>(tokens_.size()));
    }

private:
    // Trees for nonterminal `nt` spanning [i, j). Memoized per span; spans
    // whose computation was clipped by the cycle guard are not cached (their
    // result depends on the recursion context).
    std::vector<ParseNode> build_nonterminal(Symbol nt, int i, int j) {
        auto key = std::make_tuple(nt, i, j);
        if (auto it = memo_.find(key); it != memo_.end()) return it->second;
        std::vector<ParseNode> out;
        if (active_.contains(key)) {  // cut cyclic unit derivations
            ++guard_cuts_;
            return out;
        }
        active_.insert(key);
        int cuts_before = guard_cuts_;
        for (int p : g_.productions_for(nt)) {
            auto it = chart_.completed.find({p, i});
            if (it == chart_.completed.end() || !it->second.contains(j)) continue;
            std::vector<ParseNode> prefix_children;
            expand(p, 0, i, j, prefix_children, out);
            if (out.size() >= budget_) break;
        }
        active_.erase(key);
        if (guard_cuts_ == cuts_before) memo_.emplace(key, out);
        return out;
    }

    // Extends partial child list `children` covering [start of prod, at) with
    // the symbols of production `p` from position `pos`, targeting end `j`.
    void expand(int p, std::size_t pos, int at, int j, std::vector<ParseNode>& children,
                std::vector<ParseNode>& out) {
        if (out.size() >= budget_) return;
        const auto& prod = g_.production(p);
        if (pos == prod.rhs.size()) {
            if (at == j) {
                ParseNode node;
                node.sym = GSym::nonterm(prod.lhs);
                node.production = p;
                node.children = children;
                out.push_back(std::move(node));
            }
            return;
        }
        const GSym& sym = prod.rhs[pos];
        if (sym.terminal) {
            if (at < j && tokens_[static_cast<std::size_t>(at)] == sym.name) {
                children.push_back(ParseNode{sym, -1, {}});
                expand(p, pos + 1, at + 1, j, children, out);
                children.pop_back();
            }
            return;
        }
        // Nonterminal: try every recorded end for any of its productions.
        std::set<int> ends;
        for (int q : g_.productions_for(sym.name)) {
            auto it = chart_.completed.find({q, at});
            if (it != chart_.completed.end()) {
                for (int e : it->second) {
                    if (e <= j) ends.insert(e);
                }
            }
        }
        for (int e : ends) {
            auto subtrees = build_nonterminal(sym.name, at, e);
            for (auto& sub : subtrees) {
                children.push_back(std::move(sub));
                expand(p, pos + 1, e, j, children, out);
                children.pop_back();
                if (out.size() >= budget_) return;
            }
        }
    }

    const Grammar& g_;
    const TokenString& tokens_;
    const Chart& chart_;
    std::size_t budget_;
    std::set<std::tuple<Symbol, int, int>> active_;
    std::map<std::tuple<Symbol, int, int>, std::vector<ParseNode>> memo_;
    int guard_cuts_ = 0;
};

}  // namespace

bool recognizes(const Grammar& grammar, const TokenString& tokens) {
    return run_earley(grammar, tokens).accepted;
}

std::vector<ParseNode> parse_trees(const Grammar& grammar, const TokenString& tokens,
                                   const ParseOptions& options) {
    Chart chart = run_earley(grammar, tokens);
    if (!chart.accepted) return {};
    obs::ScopedSpan span("cfg.extract_trees", "cfg");
    auto trees = TreeBuilder(grammar, tokens, chart, options.max_trees).build_start();
    if (obs::metrics_enabled()) {
        static obs::Counter& extracted = obs::metrics().counter("cfg.earley.trees_extracted");
        extracted.add(trees.size());
    }
    return trees;
}

std::uint64_t subtree_hash(const ParseNode& node) {
    // FNV-style fold over (production, child hashes); leaves get a fixed
    // salt so arity differences always change the parent hash.
    if (node.is_leaf()) return 0x9e3779b97f4a7c15ull;
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(node.production) + 1);
    mix(node.children.size());
    for (const auto& child : node.children) mix(subtree_hash(child));
    return h;
}

void subtree_shape(const ParseNode& node, std::vector<int>& out) {
    if (node.is_leaf()) {
        out.push_back(-1);
        return;
    }
    out.push_back(node.production);
    out.push_back(static_cast<int>(node.children.size()));
    for (const auto& child : node.children) subtree_shape(child, out);
}

}  // namespace agenp::cfg
