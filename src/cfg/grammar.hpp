// Context-free grammars (Section II.A of the paper).
//
// Terminals and nonterminals are interned Symbols; a policy string is a
// sequence of terminal tokens. The text format, one production per line:
//
//   rule    -> "permit" subject | "deny" subject
//   subject -> "admin" | "user"
//
// Quoted tokens are terminals, bare identifiers are nonterminals; the first
// left-hand side is the start symbol; `|` separates alternatives. An empty
// alternative (nothing between `|`s, or `epsilon`) produces the empty string.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/symbol.hpp"

namespace agenp::cfg {

using util::Symbol;

struct GrammarError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

// One occurrence of a grammar symbol on a right-hand side.
struct GSym {
    Symbol name;
    bool terminal = false;

    static GSym term(Symbol s) { return {s, true}; }
    static GSym term(std::string_view s) { return {Symbol(s), true}; }
    static GSym nonterm(Symbol s) { return {s, false}; }
    static GSym nonterm(std::string_view s) { return {Symbol(s), false}; }

    friend bool operator==(const GSym& a, const GSym& b) {
        return a.name == b.name && a.terminal == b.terminal;
    }
};

struct Production {
    Symbol lhs;
    std::vector<GSym> rhs;

    [[nodiscard]] std::string to_string() const;
};

// A token string (sentence) over the terminal alphabet.
using TokenString = std::vector<Symbol>;

// Splits a whitespace-separated sentence into tokens.
TokenString tokenize(std::string_view text);
std::string detokenize(const TokenString& tokens);

class Grammar {
public:
    Grammar() = default;

    // Builds from the text format above. Throws GrammarError on syntax
    // errors or bare identifiers that never appear as a left-hand side.
    static Grammar parse(std::string_view text);

    // Index of the added production.
    int add_production(Production p);

    void set_start(Symbol s) { start_ = s; }

    [[nodiscard]] Symbol start() const { return start_; }
    [[nodiscard]] const std::vector<Production>& productions() const { return productions_; }
    [[nodiscard]] const Production& production(int index) const {
        return productions_[static_cast<std::size_t>(index)];
    }

    // Productions whose lhs is `nt` (indices into productions()).
    [[nodiscard]] const std::vector<int>& productions_for(Symbol nt) const;

    [[nodiscard]] bool is_nonterminal(Symbol s) const;

    // Nonterminals that can derive the empty string.
    [[nodiscard]] std::vector<Symbol> nullable_nonterminals() const;

    [[nodiscard]] std::string to_string() const;

private:
    Symbol start_;
    std::vector<Production> productions_;
    mutable std::vector<std::pair<Symbol, std::vector<int>>> by_lhs_;  // lazily rebuilt index
    mutable bool index_dirty_ = true;

    void rebuild_index() const;
};

}  // namespace agenp::cfg
