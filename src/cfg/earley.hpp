// Earley parser with parse-tree extraction.
//
// Handles arbitrary CFGs including ambiguity, empty productions (via the
// Aycock-Horspool nullable-prediction fix) and recursion. Tree extraction
// enumerates distinct parse trees up to a caller-supplied cap; cyclic unit
// derivations (which would yield infinitely many trees) are cut.
#pragma once

#include "cfg/grammar.hpp"

namespace agenp::cfg {

struct ParseNode {
    GSym sym;
    int production = -1;  // index into Grammar::productions() for nonterminal nodes
    std::vector<ParseNode> children;

    [[nodiscard]] bool is_leaf() const { return sym.terminal; }

    // The terminal yield of this subtree.
    [[nodiscard]] TokenString yield() const;

    // Bracketed rendering, e.g. (rule permit (subject admin)).
    [[nodiscard]] std::string to_string() const;
};

struct ParseOptions {
    std::size_t max_trees = 16;
};

// True iff `tokens` is in the language of the bare CFG.
bool recognizes(const Grammar& grammar, const TokenString& tokens);

// All parse trees for `tokens` (up to max_trees). Empty when the string is
// not in the CFG's language.
std::vector<ParseNode> parse_trees(const Grammar& grammar, const TokenString& tokens,
                                   const ParseOptions& options = {});

}  // namespace agenp::cfg
