// Earley parser with parse-tree extraction.
//
// Handles arbitrary CFGs including ambiguity, empty productions (via the
// Aycock-Horspool nullable-prediction fix) and recursion. Tree extraction
// enumerates distinct parse trees up to a caller-supplied cap; cyclic unit
// derivations (which would yield infinitely many trees) are cut.
#pragma once

#include <cstdint>

#include "cfg/grammar.hpp"

namespace agenp::cfg {

struct ParseNode {
    GSym sym;
    int production = -1;  // index into Grammar::productions() for nonterminal nodes
    std::vector<ParseNode> children;

    [[nodiscard]] bool is_leaf() const { return sym.terminal; }

    // The terminal yield of this subtree.
    [[nodiscard]] TokenString yield() const;

    // Bracketed rendering, e.g. (rule permit (subject admin)).
    [[nodiscard]] std::string to_string() const;
};

struct ParseOptions {
    std::size_t max_trees = 16;
};

// True iff `tokens` is in the language of the bare CFG.
bool recognizes(const Grammar& grammar, const TokenString& tokens);

// All parse trees for `tokens` (up to max_trees). Empty when the string is
// not in the CFG's language.
std::vector<ParseNode> parse_trees(const Grammar& grammar, const TokenString& tokens,
                                   const ParseOptions& options = {});

// Structural hash of a parse subtree: H(production id ⧺ child hashes),
// with a fixed salt for terminal leaves. Two subtrees hash equal iff they
// apply the same productions in the same shape — exactly the inputs that
// determine the instantiated G[PT] fragment (leaf spellings only reach the
// annotation through the production choice). Position-independent, so the
// grounding memo can share fragments across parse positions and requests.
std::uint64_t subtree_hash(const ParseNode& node);

// The exact preorder production shape behind `subtree_hash` (leaves
// contribute -1, nonterminals their production id followed by the child
// count). Memo entries store this to rule out 64-bit hash collisions.
void subtree_shape(const ParseNode& node, std::vector<int>& out);

}  // namespace agenp::cfg
