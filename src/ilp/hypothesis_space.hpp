// Hypothesis-space generation: materializes S_M from a mode bias.
//
// Each candidate pairs a rule with the production whose annotation it may be
// added to ("each rule in S_M also contains a set of identifiers specifying
// which production rules it can be added to", Section II.B).
#pragma once

#include "asg/asg.hpp"
#include "ilp/mode.hpp"

namespace agenp::ilp {

struct Candidate {
    asp::Rule rule;
    int production = 0;  // target production index in the initial ASG
    int cost = 0;        // literal count; the learner minimizes total cost

    [[nodiscard]] std::string to_string() const {
        return rule.to_string() + " @prod" + std::to_string(production);
    }
};

struct HypothesisSpace {
    std::vector<Candidate> candidates;

    [[nodiscard]] bool constraints_only() const {
        for (const auto& c : candidates) {
            if (!c.rule.is_constraint()) return false;
        }
        return true;
    }
};

struct SpaceLimits {
    std::size_t max_candidates = 200000;
};

// Enumerates all safe, canonical rules within `bias`, replicated over
// `target_productions`. Throws std::runtime_error if the space exceeds
// `limits.max_candidates` (a mis-set bias, not a recoverable condition).
HypothesisSpace generate_space(const ModeBias& bias, const std::vector<int>& target_productions,
                               const SpaceLimits& limits = {});

}  // namespace agenp::ilp
