#include "ilp/hypothesis_space.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>

#include "asp/substitution.hpp"

namespace agenp::ilp {
namespace {

// A typed hypothesis variable before canonical renaming.
struct TypedVar {
    Symbol type;
    int index;

    friend auto operator<=>(const TypedVar&, const TypedVar&) = default;
};

Symbol typed_var_name(const TypedVar& v) {
    return Symbol("V_" + std::string(v.type.str()) + "_" + std::to_string(v.index));
}

struct SkeletonLiteral {
    std::size_t mode_index;
    bool negated;
};

class SpaceGenerator {
public:
    SpaceGenerator(const ModeBias& bias, const std::vector<int>& targets, const SpaceLimits& limits)
        : bias_(bias), targets_(targets), limits_(limits) {}

    HypothesisSpace run() {
        std::vector<std::optional<std::size_t>> head_options;
        if (bias_.allow_constraints) head_options.push_back(std::nullopt);
        for (std::size_t i = 0; i < bias_.head.size(); ++i) head_options.push_back(i);

        for (const auto& head : head_options) {
            for (int k = bias_.min_body_atoms; k <= bias_.max_body_atoms; ++k) {
                std::vector<SkeletonLiteral> skeleton;
                enumerate_skeletons(head, 0, k, skeleton);
            }
        }
        return std::move(space_);
    }

private:
    // Chooses body literals as a non-decreasing sequence of mode indices
    // (combination with repetition) with sign options.
    void enumerate_skeletons(const std::optional<std::size_t>& head, std::size_t from, int remaining,
                             std::vector<SkeletonLiteral>& skeleton) {
        if (remaining == 0) {
            fill_arguments(head, skeleton);
            return;
        }
        for (std::size_t m = from; m < bias_.body.size(); ++m) {
            skeleton.push_back({m, false});
            enumerate_skeletons(head, m, remaining - 1, skeleton);
            skeleton.pop_back();
            if (bias_.body[m].allow_negated) {
                skeleton.push_back({m, true});
                enumerate_skeletons(head, m, remaining - 1, skeleton);
                skeleton.pop_back();
            }
        }
    }

    // Enumerates argument fillings for every slot of the skeleton.
    void fill_arguments(const std::optional<std::size_t>& head,
                        const std::vector<SkeletonLiteral>& skeleton) {
        // Collect slots: head first, then body literals in order.
        slots_.clear();
        if (head) {
            for (const auto& a : bias_.head[*head].args) slots_.push_back(a);
        }
        for (const auto& lit : skeleton) {
            for (const auto& a : bias_.body[lit.mode_index].args) slots_.push_back(a);
        }
        filling_.assign(slots_.size(), asp::Term());
        fill_slot(head, skeleton, 0);
    }

    void fill_slot(const std::optional<std::size_t>& head, const std::vector<SkeletonLiteral>& skeleton,
                   std::size_t slot) {
        if (slot == slots_.size()) {
            assemble(head, skeleton);
            return;
        }
        const ArgSpec& spec = slots_[slot];
        switch (spec.kind) {
            case ArgSpec::Kind::Fixed:
                filling_[slot] = spec.fixed;
                fill_slot(head, skeleton, slot + 1);
                break;
            case ArgSpec::Kind::Const: {
                auto it = bias_.constants.find(spec.type);
                if (it == bias_.constants.end()) return;  // empty pool: no filling
                for (const auto& term : it->second) {
                    filling_[slot] = term;
                    fill_slot(head, skeleton, slot + 1);
                }
                break;
            }
            case ArgSpec::Kind::Var:
                for (int v = 0; v < bias_.max_vars; ++v) {
                    filling_[slot] = asp::Term::variable(typed_var_name({spec.type, v}));
                    fill_slot(head, skeleton, slot + 1);
                }
                break;
        }
    }

    // Builds the rule from the filled skeleton, then layers comparisons.
    void assemble(const std::optional<std::size_t>& head, const std::vector<SkeletonLiteral>& skeleton) {
        asp::Rule rule;
        std::size_t slot = 0;
        auto make_atom = [&](const ModeAtom& mode) {
            asp::Atom atom;
            atom.predicate = mode.predicate;
            atom.annotation = mode.annotation;
            for (std::size_t i = 0; i < mode.args.size(); ++i) atom.args.push_back(filling_[slot++]);
            return atom;
        };
        if (head) rule.head = make_atom(bias_.head[*head]);
        for (const auto& lit : skeleton) {
            rule.body.emplace_back(make_atom(bias_.body[lit.mode_index]), !lit.negated);
        }

        // Distinct-variable budget.
        std::vector<Symbol> vars;
        rule.collect_variables(vars);
        std::sort(vars.begin(), vars.end());
        vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
        if (static_cast<int>(vars.size()) > bias_.max_vars) return;

        emit(rule);
        add_comparisons(rule, vars, 0);
    }

    // Recursively layers up to max_comparisons builtins onto `rule`.
    void add_comparisons(const asp::Rule& rule, const std::vector<Symbol>& vars, int depth) {
        if (depth >= bias_.max_comparisons) return;
        for (const auto& cm : bias_.comparisons) {
            // Variables of the comparison's type present in the rule.
            std::vector<Symbol> typed;
            std::string prefix = "V_" + std::string(cm.type.str()) + "_";
            for (auto v : vars) {
                if (v.str().starts_with(prefix)) typed.push_back(v);
            }
            for (auto op : cm.ops) {
                if (cm.var_vs_const) {
                    auto pool = bias_.constants.find(cm.type);
                    if (pool != bias_.constants.end()) {
                        for (auto v : typed) {
                            for (const auto& c : pool->second) {
                                asp::Rule extended = rule;
                                extended.builtins.emplace_back(op, asp::Term::variable(v), c);
                                emit(extended);
                                add_comparisons(extended, vars, depth + 1);
                            }
                        }
                    }
                }
                if (cm.var_vs_var) {
                    for (std::size_t i = 0; i < typed.size(); ++i) {
                        for (std::size_t j = 0; j < typed.size(); ++j) {
                            if (i == j) continue;
                            asp::Rule extended = rule;
                            extended.builtins.emplace_back(op, asp::Term::variable(typed[i]),
                                                           asp::Term::variable(typed[j]));
                            emit(extended);
                            add_comparisons(extended, vars, depth + 1);
                        }
                    }
                }
            }
        }
    }

    // Canonicalizes, safety-checks, dedupes and records `rule` for every
    // target production.
    void emit(const asp::Rule& rule) {
        if (!rule.is_safe()) return;
        asp::Rule canonical = canonical_rename(rule);
        std::string key = canonical.to_string();
        if (!seen_.insert(key).second) return;
        for (int production : targets_) {
            space_.candidates.push_back({canonical, production, canonical.size()});
        }
        if (space_.candidates.size() > limits_.max_candidates) {
            throw std::runtime_error("hypothesis space exceeds max_candidates; tighten the mode bias");
        }
    }

    // Renames variables to V1..Vn in first-occurrence order (textual order:
    // head, body, builtins), which collapses permutation-equivalent rules.
    static asp::Rule canonical_rename(const asp::Rule& rule) {
        std::vector<Symbol> order;
        rule.collect_variables(order);
        std::vector<Symbol> firsts;
        for (auto v : order) {
            if (std::find(firsts.begin(), firsts.end(), v) == firsts.end()) firsts.push_back(v);
        }
        asp::Subst subst;
        for (std::size_t i = 0; i < firsts.size(); ++i) {
            subst.bind(firsts[i], asp::Term::variable(Symbol("V" + std::to_string(i + 1))));
        }
        asp::Rule out;
        if (rule.head) out.head = asp::apply_subst(*rule.head, subst);
        for (const auto& l : rule.body) out.body.emplace_back(asp::apply_subst(l.atom, subst), l.positive);
        for (const auto& c : rule.builtins) {
            out.builtins.emplace_back(c.op, asp::apply_subst(c.lhs, subst), asp::apply_subst(c.rhs, subst));
        }
        return out;
    }

    const ModeBias& bias_;
    const std::vector<int>& targets_;
    const SpaceLimits& limits_;
    std::vector<ArgSpec> slots_;
    std::vector<asp::Term> filling_;
    std::set<std::string> seen_;
    HypothesisSpace space_;
};

}  // namespace

HypothesisSpace generate_space(const ModeBias& bias, const std::vector<int>& target_productions,
                               const SpaceLimits& limits) {
    return SpaceGenerator(bias, target_productions, limits).run();
}

}  // namespace agenp::ilp
