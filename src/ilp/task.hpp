// Context-dependent ASG learning tasks (Definition 3).
#pragma once

#include "asg/asg.hpp"
#include "ilp/hypothesis_space.hpp"

namespace agenp::ilp {

// ⟨s, C⟩: a policy string paired with the ASP context under which it is (or
// is not) a valid policy.
struct Example {
    cfg::TokenString string;
    asp::Program context;
    std::string id;  // for reporting; empty is fine

    Example() = default;
    Example(cfg::TokenString s, asp::Program c, std::string name = "")
        : string(std::move(s)), context(std::move(c)), id(std::move(name)) {}
};

// T = ⟨G, S_M, E+, E−⟩.
struct LearningTask {
    asg::AnswerSetGrammar initial;
    HypothesisSpace space;
    std::vector<Example> positive;
    std::vector<Example> negative;
};

// A hypothesis H ⊆ S_M: rules paired with their target productions, ready
// for AnswerSetGrammar::with_rules.
using Hypothesis = std::vector<std::pair<asp::Rule, int>>;

}  // namespace agenp::ilp
