// Mode bias: the declarative description of the hypothesis space S_M
// (Definition 3). Mirrors ILASP's mode declarations, restricted to the
// normal-rule + constraint fragment the paper uses.
#pragma once

#include <map>
#include <vector>

#include "asp/rule.hpp"

namespace agenp::ilp {

using asp::Symbol;

// One argument slot of a mode atom.
struct ArgSpec {
    enum class Kind {
        Var,    // a typed variable placeholder
        Const,  // filled from the constant pool of `type`
        Fixed,  // a literal term
    };

    Kind kind = Kind::Var;
    Symbol type;      // variable type (Var) or pool name (Const)
    asp::Term fixed;  // Fixed only

    static ArgSpec var(std::string_view type) { return {Kind::Var, Symbol(type), {}}; }
    static ArgSpec constant(std::string_view pool) { return {Kind::Const, Symbol(pool), {}}; }
    static ArgSpec fixed_term(asp::Term t) { return {Kind::Fixed, Symbol(), std::move(t)}; }
};

// A schema for atoms allowed in hypothesis rules. `annotation` carries the
// ASG child index the atom refers to (kUnannotated = the node itself).
struct ModeAtom {
    Symbol predicate;
    int annotation = asp::kUnannotated;
    std::vector<ArgSpec> args;
    bool allow_negated = false;  // body only: may also appear under "not"

    ModeAtom() = default;
    ModeAtom(std::string_view pred, std::vector<ArgSpec> a, int ann = asp::kUnannotated,
             bool neg = false)
        : predicate(pred), annotation(ann), args(std::move(a)), allow_negated(neg) {}
};

// Comparisons allowed between hypothesis variables of `type` and/or pool
// constants of the same type.
struct ComparisonMode {
    Symbol type;
    std::vector<asp::Comparison::Op> ops;
    bool var_vs_const = true;
    bool var_vs_var = false;

    ComparisonMode() = default;
    ComparisonMode(std::string_view t, std::vector<asp::Comparison::Op> o, bool vc = true,
                   bool vv = false)
        : type(t), ops(std::move(o)), var_vs_const(vc), var_vs_var(vv) {}
};

struct ModeBias {
    // Head schemas for normal rules; empty + allow_constraints=true yields a
    // constraint-only space (the common case for ASG semantic conditions).
    std::vector<ModeAtom> head;
    bool allow_constraints = true;

    std::vector<ModeAtom> body;
    std::vector<ComparisonMode> comparisons;
    std::map<Symbol, std::vector<asp::Term>> constants;  // pool name -> terms

    int max_body_atoms = 2;    // body literals, excluding comparisons
    int min_body_atoms = 1;    // at least this many (bare ":-." is never useful)
    int max_comparisons = 1;
    int max_vars = 2;  // distinct variables per rule (across all types)

    void add_constant(std::string_view pool, asp::Term t) {
        constants[Symbol(pool)].push_back(std::move(t));
    }
    void add_int_constants(std::string_view pool, std::initializer_list<std::int64_t> values) {
        for (auto v : values) add_constant(pool, asp::Term::integer(v));
    }
    void add_symbol_constants(std::string_view pool, std::initializer_list<std::string_view> values) {
        for (auto v : values) add_constant(pool, asp::Term::constant(v));
    }
};

}  // namespace agenp::ilp
