#include "ilp/guidance.hpp"

#include <algorithm>
#include <set>

namespace agenp::ilp {

std::vector<ml::FeatureSpec> SearchGuidance::feature_schema() {
    return {
        ml::FeatureSpec::numeric_feature("cost"),
        ml::FeatureSpec::numeric_feature("body_literals"),
        ml::FeatureSpec::numeric_feature("negative_literals"),
        ml::FeatureSpec::numeric_feature("comparisons"),
        ml::FeatureSpec::numeric_feature("distinct_vars"),
        ml::FeatureSpec::numeric_feature("constant_args"),
        ml::FeatureSpec::numeric_feature("annotated_atoms"),
        ml::FeatureSpec::numeric_feature("max_annotation"),
    };
}

std::vector<double> SearchGuidance::features(const Candidate& candidate) {
    const asp::Rule& rule = candidate.rule;
    double negatives = 0, annotated = 0, constant_args = 0, max_annotation = 0;
    for (const auto& l : rule.body) {
        negatives += l.positive ? 0 : 1;
        if (l.atom.annotation != asp::kUnannotated) {
            annotated += 1;
            max_annotation = std::max(max_annotation, static_cast<double>(l.atom.annotation));
        }
        for (const auto& arg : l.atom.args) constant_args += arg.is_ground() ? 1 : 0;
    }
    std::vector<asp::Symbol> vars;
    rule.collect_variables(vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return {static_cast<double>(candidate.cost),
            static_cast<double>(rule.body.size()),
            negatives,
            static_cast<double>(rule.builtins.size()),
            static_cast<double>(vars.size()),
            constant_args,
            annotated,
            max_annotation};
}

SearchGuidance::SearchGuidance() : data_(feature_schema()) {}

void SearchGuidance::record(const LearningTask& task, const LearnResult& result) {
    if (!result.found) return;
    std::set<std::string> chosen;
    for (const auto& [rule, production] : result.hypothesis) {
        chosen.insert(rule.to_string() + "#" + std::to_string(production));
    }
    for (const auto& c : task.space.candidates) {
        bool used = chosen.contains(c.rule.to_string() + "#" + std::to_string(c.production));
        data_.add_row(features(c), used ? 1 : 0);
    }
}

bool SearchGuidance::train() {
    if (data_.size() == 0) return false;
    model_.fit(data_);
    trained_ = true;
    return true;
}

double SearchGuidance::score(const Candidate& candidate) const {
    if (!trained_) return 0.5;
    return model_.predict_proba(features(candidate));
}

std::vector<std::size_t> SearchGuidance::ranking(const std::vector<Candidate>& candidates) const {
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (!trained_) return order;
    std::vector<double> scores(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) scores[i] = score(candidates[i]);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
    return order;
}

}  // namespace agenp::ilp
